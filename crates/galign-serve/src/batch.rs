//! The coalescing batch scheduler: concurrent top-k requests queue for a
//! bounded window (or until a batch-size cap), then execute as one
//! gathered panel sweep through `galign_matrix::simblock`, and the
//! results are demultiplexed back to their connections.
//!
//! ## Why coalesce
//!
//! One top-k query streams the full target panel through memory to score
//! a single source row. Ten queries arriving within a few hundred
//! microseconds can share that panel traversal: a gathered query block ×
//! node panel GEMM scores all of them in one pass, amortizing the memory
//! traffic that dominates serving cost. The scheduler trades a bounded
//! latency penalty ([`crate::server::ServerConfig::batch_window`], ~200µs
//! by default) for that throughput multiple; a full batch
//! ([`crate::server::ServerConfig::batch_cap`]) flushes immediately.
//!
//! ## Bit-identity
//!
//! Batched execution is *observably identical* to sequential execution:
//! [`crate::topk::TopkIndex::topk_gathered_with_opts`] accumulates each
//! gathered row in the exact floating-point order of the sequential
//! kernel, ANN candidate searches stay per-query, and `select_topk`'s tie
//! contract is shared — so a `/v2` batch renders byte-for-byte what N
//! sequential `/v1` requests would. The property tests in
//! `tests/batch_api.rs` hold this line.
//!
//! ## Failure isolation
//!
//! Jobs fail independently: one request past its deadline 503s without
//! poisoning its flush-mates, a malformed `/v2` query errors in its own
//! result slot, and a full queue sheds *new* arrivals with `503 +
//! Retry-After` while queued jobs proceed.

use crate::api::{self, BatchRequest, NodeResult, RequestDefaults, TopkRequest, TopkResponse};
use crate::cache::QueryKey;
use crate::server::{error_body, Generation, Inner, Reply};
use crate::topk::{EngineMode, EngineUsed, QuantMode, RowQuery};
use galign_matrix::simblock::Hit;
use galign_telemetry::context::{self, PropagationHandle};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued top-k request: everything a worker needs to answer it away
/// from its connection. The event loop keeps the connection-side state
/// (trace context, HTTP bookkeeping) keyed by `token`.
pub(crate) struct Job {
    /// Connection token the completion is demultiplexed back to.
    pub token: u64,
    /// Raw request body (parsed on the worker, off the event loop).
    pub body: Vec<u8>,
    /// `true` for `/v2/align/topk` (batch envelope), `false` for `/v1`.
    pub v2: bool,
    /// The request's trace context, captured at dispatch; worker-side
    /// stages record against it across the thread hop.
    pub handle: PropagationHandle,
    /// Generation pinned when the request was read — a hot swap landing
    /// mid-queue must not change what this request computes against.
    pub generation: Arc<Generation>,
    /// When the request was read (deadline anchor).
    pub started: Instant,
    /// This request's deadline budget from `started`: the server config
    /// deadline, clamped down to the remaining budget the caller
    /// advertised via the `x-galign-deadline-ms` header.
    pub deadline: Duration,
    /// When the job entered the queue (batch-window anchor; stamped by
    /// [`Coalescer::enqueue`]).
    enqueued: Instant,
}

impl Job {
    pub(crate) fn new(
        token: u64,
        body: Vec<u8>,
        v2: bool,
        handle: PropagationHandle,
        generation: Arc<Generation>,
        started: Instant,
        deadline: Duration,
    ) -> Job {
        Job {
            token,
            body,
            v2,
            handle,
            generation,
            started,
            deadline,
            enqueued: started,
        }
    }
}

/// A finished job: the reply, addressed back to its connection.
pub(crate) struct Completion {
    pub token: u64,
    pub reply: Reply,
}

struct CoState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded batching queue between the event loop and the worker
/// pool. Jobs wait at most `window` from the moment the *oldest* queued
/// job arrived; a flush drains up to `cap` jobs; arrivals beyond `depth`
/// are refused so the caller can shed them.
pub(crate) struct Coalescer {
    state: Mutex<CoState>,
    cond: Condvar,
    window: Duration,
    cap: usize,
    depth: usize,
}

impl Coalescer {
    pub(crate) fn new(window: Duration, cap: usize, depth: usize) -> Coalescer {
        Coalescer {
            state: Mutex::new(CoState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            window,
            cap: cap.max(1),
            depth: depth.max(1),
        }
    }

    /// Queues a job, or hands it back (boxed — the refusal path is cold)
    /// when the queue is full and the caller must shed it with
    /// `503 + Retry-After`, or the scheduler is closed.
    pub(crate) fn enqueue(&self, mut job: Job) -> Result<(), Box<Job>> {
        let mut state = self.state.lock().expect("coalescer lock");
        if state.closed || state.jobs.len() >= self.depth {
            return Err(Box::new(job));
        }
        job.enqueued = Instant::now();
        state.jobs.push_back(job);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks until a batch is ready — the oldest queued job has waited
    /// the full window, the queue holds a cap's worth, or the scheduler
    /// is closing — and drains up to `cap` jobs. `None` means closed and
    /// drained: the worker exits.
    pub(crate) fn take_batch(&self) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("coalescer lock");
        loop {
            if state.jobs.is_empty() {
                if state.closed {
                    return None;
                }
                state = self.cond.wait(state).expect("coalescer lock");
                continue;
            }
            let age = state
                .jobs
                .front()
                .expect("non-empty queue")
                .enqueued
                .elapsed();
            if state.closed || state.jobs.len() >= self.cap || age >= self.window {
                let take = state.jobs.len().min(self.cap);
                return Some(state.jobs.drain(..take).collect());
            }
            let (next, _) = self
                .cond
                .wait_timeout(state, self.window - age)
                .expect("coalescer lock");
            state = next;
        }
    }

    /// Queued job count (test observability).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("coalescer lock").jobs.len()
    }

    /// Begins shutdown: queued jobs still flush, workers exit once the
    /// queue is drained.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("coalescer lock");
        state.closed = true;
        self.cond.notify_all();
    }
}

/// One parsed-and-planned query: cache hits already resolved, misses
/// awaiting the gathered compute.
struct Planned {
    request: TopkRequest,
    ann_routed: bool,
    /// The scan precision the index will actually use — the request's
    /// `quant` after the degrade-to-f64 check, so caching and grouping
    /// key on what gets computed, not what was asked for.
    quant: QuantMode,
    /// Per queried node: `Some` = cache hit, `None` = computed this flush.
    slots: Vec<Option<Arc<Vec<Hit>>>>,
    /// Positions into `request.nodes` that missed the cache.
    misses: Vec<usize>,
}

/// One job after the planning pass.
struct JobPlan {
    job: Job,
    /// Whole-request failure (parse error, envelope error, deadline).
    fail: Option<Reply>,
    /// Per-query outcome, in request order (one entry for `/v1`).
    queries: Vec<Result<Planned, String>>,
}

/// Grouping key for gathered execution: queries are computable together
/// only when they agree on artifact generation, θ, routing decision, and
/// effective scan precision.
type GroupKey = (u64, bool, u8, Option<Vec<u64>>);

struct Group {
    generation: Arc<Generation>,
    theta: Option<Vec<f64>>,
    ann_routed: bool,
    quant: QuantMode,
    /// Deduplicated (node, k) work items.
    queries: Vec<RowQuery>,
    /// (node, k) → index into `queries` / `results`.
    index_of: HashMap<(usize, usize), usize>,
    /// Filled by the compute pass, aligned with `queries`.
    results: Vec<Arc<Vec<Hit>>>,
}

fn theta_key(theta: Option<&[f64]>) -> Option<Vec<u64>> {
    theta.map(|t| t.iter().map(|w| w.to_bits()).collect())
}

/// Executes one flush: parse + cache-lookup per job, one gathered compute
/// per (generation, θ, engine) group, then per-job serialization. Every
/// job gets exactly one [`Completion`].
pub(crate) fn process_jobs(inner: &Inner, jobs: Vec<Job>) -> Vec<Completion> {
    // Failpoint `serve.topk.stall`: a `delay(ms)` action sleeps here,
    // stalling the whole flush — the per-job deadline checks below must
    // then catch it, exactly as the per-request server stalled.
    galign_telemetry::failpoint::eval("serve.topk.stall");
    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("serve.batch.flushes", 1);
        galign_telemetry::histogram_record("serve.batch.jobs", jobs.len() as f64);
    }
    let single = jobs.len() == 1;
    let plans: Vec<JobPlan> = jobs.into_iter().map(|job| plan_job(inner, job)).collect();

    // Group cache misses across every job in the flush. Deduplication is
    // per (node, k): two requests for the same node compute once and both
    // read the shared result.
    let mut groups: BTreeMap<GroupKey, Group> = BTreeMap::new();
    for plan in &plans {
        for planned in plan.queries.iter().flatten() {
            if planned.misses.is_empty() {
                continue;
            }
            let theta = planned.request.theta.as_deref();
            let key = (
                plan.job.generation.number,
                planned.ann_routed,
                planned.quant.tag(),
                theta_key(theta),
            );
            let group = groups.entry(key).or_insert_with(|| Group {
                generation: Arc::clone(&plan.job.generation),
                theta: planned.request.theta.clone(),
                ann_routed: planned.ann_routed,
                quant: planned.quant,
                queries: Vec::new(),
                index_of: HashMap::new(),
                results: Vec::new(),
            });
            for &pos in &planned.misses {
                let item = (planned.request.nodes[pos], planned.request.k);
                if !group.index_of.contains_key(&item) {
                    group.index_of.insert(item, group.queries.len());
                    group.queries.push(RowQuery {
                        node: item.0,
                        k: item.1,
                    });
                }
            }
        }
    }

    // The gathered compute. A single-job flush runs under that job's
    // trace context so kernel stages (`exact_scan`, `ann_search`,
    // `exact_rerank`) land in its trace, exactly like the sequential
    // server; a multi-job flush computes shared work that belongs to no
    // one request, so those spans are per-flush, not per-trace.
    let run_groups = |groups: &mut BTreeMap<GroupKey, Group>| {
        for group in groups.values_mut() {
            let mode = if group.ann_routed {
                EngineMode::Ann
            } else {
                EngineMode::Exact
            };
            let computed = group
                .generation
                .index
                .topk_gathered_with_opts(&group.queries, group.theta.as_deref(), mode, group.quant)
                .expect("queries validated before grouping");
            group.results = computed
                .into_iter()
                .map(|(hits, _engine): (Vec<Hit>, EngineUsed)| Arc::new(hits))
                .collect();
        }
    };
    if single {
        let handle = plans[0].job.handle.clone();
        handle.scope(|| run_groups(&mut groups));
    } else {
        run_groups(&mut groups);
    }

    // Demultiplex: fill each query's miss slots from its group, insert
    // into the cache, serialize, count.
    plans
        .into_iter()
        .map(|plan| finish_job(inner, plan, &groups))
        .collect()
}

/// Deadline check + parse + engine selection + cache lookup for one job,
/// under its trace context.
fn plan_job(inner: &Inner, job: Job) -> JobPlan {
    let deadline_reply = |job: Job| {
        galign_telemetry::counter_add("serve.topk.deadline_exceeded", 1);
        JobPlan {
            job,
            fail: Some(Reply::json(
                503,
                error_body("deadline exceeded, retry later"),
            )),
            queries: Vec::new(),
        }
    };
    if job.started.elapsed() >= job.deadline {
        return deadline_reply(job);
    }
    let handle = job.handle.clone();
    handle.scope(|| {
        let defaults = RequestDefaults {
            default_k: inner.cfg.default_k,
            max_k: inner.cfg.max_k,
            default_mode: inner.cfg.default_mode,
            default_quant: inner.cfg.quant,
        };
        let st = context::stage("parse");
        let parsed: Vec<Result<TopkRequest, String>> = if job.v2 {
            match BatchRequest::from_body(&job.body, &defaults) {
                Ok(batch) => batch.queries,
                Err(msg) => {
                    return JobPlan {
                        job,
                        fail: Some(Reply::json(400, error_body(&msg))),
                        queries: Vec::new(),
                    }
                }
            }
        } else {
            match TopkRequest::from_body(&job.body, &defaults) {
                Ok(q) => vec![Ok(q)],
                Err(msg) => {
                    return JobPlan {
                        job,
                        fail: Some(Reply::json(400, error_body(&msg))),
                        queries: Vec::new(),
                    }
                }
            }
        };
        let total_nodes: usize = parsed.iter().flatten().map(|q| q.nodes.len()).sum();
        let mut fields = vec![("nodes", total_nodes.to_string())];
        if job.v2 {
            fields.push(("queries", parsed.len().to_string()));
        }
        st.finish_with(fields);

        let index = &job.generation.index;
        let mut any_miss = false;
        let queries: Vec<Result<Planned, String>> = parsed
            .into_iter()
            .map(|parse_outcome| {
                let request = parse_outcome?;
                // Validate up front (same errors, same wording as the
                // sequential path) so grouped compute can never fail.
                index
                    .validate(&request.nodes, request.k, request.theta.as_deref())
                    .map_err(|e| e.to_string())?;
                // The routing decision is deterministic per query (mode +
                // index presence + auto threshold) and keys the cache:
                // ANN and exact results must never alias each other.
                let st = context::stage("engine_select");
                let ann_routed = index.would_use_ann(request.mode);
                let quant = index.effective_quant_mode(request.quant);
                let engine = if ann_routed { "ann" } else { "exact" };
                st.finish_with(vec![
                    ("engine", engine.to_string()),
                    ("quant", quant.name().to_string()),
                ]);
                let st = context::stage("cache_lookup");
                let mut slots = vec![None; request.nodes.len()];
                let mut misses = Vec::new();
                for (i, &node) in request.nodes.iter().enumerate() {
                    let key = QueryKey::with_quant(
                        node,
                        request.k,
                        request.theta.as_deref(),
                        ann_routed,
                        job.generation.number,
                        quant,
                    );
                    match inner.cache.get(&key) {
                        Some(hits) => slots[i] = Some(hits),
                        None => misses.push(i),
                    }
                }
                let miss_count = misses.len() as u64;
                let hit_count = request.nodes.len() as u64 - miss_count;
                st.finish_with(vec![
                    ("hits", hit_count.to_string()),
                    ("misses", miss_count.to_string()),
                ]);
                context::annotate("cache_hits", hit_count);
                context::annotate("cache_misses", miss_count);
                any_miss |= !misses.is_empty();
                Ok(Planned {
                    request,
                    ann_routed,
                    quant,
                    slots,
                    misses,
                })
            })
            .collect();
        // The gathered compute is the expensive part — re-check the
        // deadline on the way in rather than burning kernel time on a
        // request whose client was already promised an answer it can't
        // get in time.
        if any_miss && job.started.elapsed() >= job.deadline {
            return deadline_reply(job);
        }
        JobPlan {
            job,
            fail: None,
            queries,
        }
    })
}

/// Fills one job's miss slots from the computed groups, populates the
/// cache, serializes the reply and bumps the per-query counters.
fn finish_job(inner: &Inner, plan: JobPlan, groups: &BTreeMap<GroupKey, Group>) -> Completion {
    let JobPlan { job, fail, queries } = plan;
    if let Some(mut reply) = fail {
        if reply.generation == 0 {
            reply.generation = job.generation.number;
        }
        return Completion {
            token: job.token,
            reply,
        };
    }
    let handle = job.handle.clone();
    let reply = handle.scope(|| {
        let metrics = galign_telemetry::metrics_enabled();
        let mut outcomes: Vec<api::QueryOutcome> = Vec::with_capacity(queries.len());
        let mut engines_seen: (bool, bool) = (false, false); // (ann, exact)
        for outcome in queries {
            let planned = match outcome {
                Ok(p) => p,
                Err(msg) => {
                    outcomes.push(Err(msg));
                    continue;
                }
            };
            let Planned {
                request,
                ann_routed,
                quant,
                mut slots,
                misses,
            } = planned;
            let theta = request.theta.as_deref();
            if !misses.is_empty() {
                let key = (
                    job.generation.number,
                    ann_routed,
                    quant.tag(),
                    theta_key(theta),
                );
                let group = groups.get(&key).expect("miss-bearing query has a group");
                for pos in misses.iter().copied() {
                    let node = request.nodes[pos];
                    let slot = group.index_of[&(node, request.k)];
                    let hits = Arc::clone(&group.results[slot]);
                    inner.cache.insert(
                        QueryKey::with_quant(
                            node,
                            request.k,
                            theta,
                            ann_routed,
                            job.generation.number,
                            quant,
                        ),
                        Arc::clone(&hits),
                    );
                    slots[pos] = Some(hits);
                }
            }
            let engine = if ann_routed { "ann" } else { "exact" };
            if ann_routed {
                engines_seen.0 = true;
            } else {
                engines_seen.1 = true;
            }
            if metrics {
                galign_telemetry::counter_add("serve.topk.requests", 1);
                galign_telemetry::counter_add("serve.topk.nodes", request.nodes.len() as u64);
                galign_telemetry::counter_add("serve.topk.cache_misses", misses.len() as u64);
                galign_telemetry::counter_add(
                    "serve.topk.cache_hits",
                    (request.nodes.len() - misses.len()) as u64,
                );
                galign_telemetry::counter_add(
                    if ann_routed {
                        "serve.topk.engine.ann"
                    } else {
                        "serve.topk.engine.exact"
                    },
                    1,
                );
            }
            let results: Vec<NodeResult> = request
                .nodes
                .iter()
                .zip(slots)
                .map(|(&node, hits)| NodeResult {
                    node,
                    matches: hits.expect("every slot filled"),
                })
                .collect();
            outcomes.push(Ok(TopkResponse {
                k: request.k,
                engine: engine.to_string(),
                partial: false,
                results,
            }));
        }
        let engine: &'static str = match engines_seen {
            (true, false) => "ann",
            (false, true) => "exact",
            (true, true) => "mixed",
            (false, false) => "",
        };
        let reply = if job.v2 {
            let st = context::stage("serialize");
            let body = api::render_batch(&outcomes);
            st.finish_with(vec![("bytes", body.len().to_string())]);
            Reply {
                status: 200,
                content_type: "application/json",
                body,
                engine,
                generation: job.generation.number,
            }
        } else {
            match outcomes.into_iter().next().expect("v1 job has one query") {
                Ok(response) => {
                    let st = context::stage("serialize");
                    let body = response.render();
                    st.finish_with(vec![("bytes", body.len().to_string())]);
                    Reply {
                        status: 200,
                        content_type: "application/json",
                        body,
                        engine,
                        generation: job.generation.number,
                    }
                }
                Err(msg) => {
                    let mut reply = Reply::json(400, error_body(&msg));
                    reply.generation = job.generation.number;
                    reply
                }
            }
        };
        if metrics && reply.status == 200 {
            galign_telemetry::gauge_set("serve.cache.entries", inner.cache.len() as f64);
            galign_telemetry::histogram_record(
                "serve.topk.ms",
                job.started.elapsed().as_secs_f64() * 1e3,
            );
        }
        reply
    });
    Completion {
        token: job.token,
        reply,
    }
}

/// The synchronous single-request path: `/v1` and `/v2` bodies routed by
/// the server share one code path with the coalesced worker flush, so a
/// request behaves identically whether it was batched or not. Captures
/// the caller's trace context, so stages record as usual.
pub(crate) fn run_single(
    inner: &Inner,
    generation: &Arc<Generation>,
    body: &[u8],
    started: Instant,
    v2: bool,
) -> Reply {
    let job = Job::new(
        0,
        body.to_vec(),
        v2,
        PropagationHandle::capture(),
        Arc::clone(generation),
        started,
        inner.cfg.deadline,
    );
    process_jobs(inner, vec![job])
        .pop()
        .expect("one job in, one completion out")
        .reply
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::server::{test_inner_with, ServerConfig};

    fn job(inner: &Inner, body: &[u8], v2: bool) -> Job {
        Job::new(
            0,
            body.to_vec(),
            v2,
            PropagationHandle::capture(),
            inner.generation(),
            Instant::now(),
            inner.cfg.deadline,
        )
    }

    #[test]
    fn coalescer_sheds_beyond_depth_and_drains_on_close() {
        let inner = test_inner_with(ServerConfig::default());
        let co = Coalescer::new(Duration::from_secs(10), 8, 2);
        assert!(co.enqueue(job(&inner, b"{}", false)).is_ok());
        assert!(co.enqueue(job(&inner, b"{}", false)).is_ok());
        // Depth reached: the third arrival is handed back for shedding.
        assert!(co.enqueue(job(&inner, b"{}", false)).is_err());
        assert_eq!(co.len(), 2);
        // Close flushes immediately (no window wait) and drains the queue.
        co.close();
        let batch = co.take_batch().expect("queued jobs flush on close");
        assert_eq!(batch.len(), 2);
        assert!(
            co.take_batch().is_none(),
            "closed and drained: worker exits"
        );
        assert!(co.enqueue(job(&inner, b"{}", false)).is_err());
    }

    #[test]
    fn coalescer_cap_flushes_without_waiting_for_the_window() {
        let inner = test_inner_with(ServerConfig::default());
        let co = Coalescer::new(Duration::from_secs(3600), 2, 64);
        let start = Instant::now();
        assert!(co.enqueue(job(&inner, b"{}", false)).is_ok());
        assert!(co.enqueue(job(&inner, b"{}", false)).is_ok());
        let batch = co.take_batch().expect("cap-full queue flushes");
        assert_eq!(batch.len(), 2);
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "a full batch must not wait out the window"
        );
    }

    #[test]
    fn coalescer_window_flushes_a_lone_job() {
        let inner = test_inner_with(ServerConfig::default());
        let co = Coalescer::new(Duration::from_millis(5), 64, 64);
        assert!(co.enqueue(job(&inner, b"{}", false)).is_ok());
        let batch = co.take_batch().expect("window expiry flushes");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn multi_job_flush_matches_individual_replies() {
        let inner = test_inner_with(ServerConfig::default());
        let bodies: [&[u8]; 3] = [
            br#"{"nodes":[0,1],"k":2}"#,
            br#"{"nodes":[2],"k":1}"#,
            br#"{"nodes":[0,1],"k":2}"#, // duplicate of the first: shared compute
        ];
        let jobs: Vec<Job> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut j = job(&inner, b, false);
                j.token = i as u64;
                j
            })
            .collect();
        let completions = process_jobs(&inner, jobs);
        assert_eq!(completions.len(), 3);
        // Reference replies from a fresh server (cold cache) one by one.
        let fresh = test_inner_with(ServerConfig::default());
        for (i, body) in bodies.iter().enumerate() {
            let reference = run_single(&fresh, &fresh.generation(), body, Instant::now(), false);
            let got = completions.iter().find(|c| c.token == i as u64).unwrap();
            assert_eq!(got.reply.status, 200);
            assert_eq!(
                got.reply.body, reference.body,
                "batched reply {i} must be byte-identical to sequential"
            );
        }
        // The duplicate (node, k) pairs computed once but both landed.
        let (_, misses) = inner.cache.stats();
        assert_eq!(misses, 5, "every node lookup missed the cold cache");
        assert_eq!(inner.cache.len(), 3, "three distinct (node, k) entries");
    }

    #[test]
    fn v2_isolates_per_query_errors() {
        let inner = test_inner_with(ServerConfig::default());
        let body = br#"{"queries":[{"nodes":[0],"k":1},{"nodes":[99],"k":1},{"node":2,"k":0}]}"#;
        let reply = run_single(&inner, &inner.generation(), body, Instant::now(), true);
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = json::parse(&reply.body).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0].get("error").is_none());
        assert!(
            results[1]
                .get("error")
                .and_then(|e| e.as_str())
                .is_some_and(|e| e.contains("out of range")),
            "{}",
            reply.body
        );
        assert!(
            results[2]
                .get("error")
                .and_then(|e| e.as_str())
                .is_some_and(|e| e.contains("k")),
            "{}",
            reply.body
        );
    }

    #[test]
    fn v2_envelope_errors_fail_the_whole_request() {
        let inner = test_inner_with(ServerConfig::default());
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"{"nodes":[0]}"#, "queries"),
            (br#"{"queries":[]}"#, "empty"),
        ] {
            let reply = run_single(&inner, &inner.generation(), body, Instant::now(), true);
            assert_eq!(reply.status, 400, "{}", reply.body);
            assert!(
                reply.body.to_lowercase().contains(&needle.to_lowercase()),
                "error {:?} should mention {needle:?}",
                reply.body
            );
        }
    }

    #[test]
    fn expired_job_returns_503_without_poisoning_flushmates() {
        let inner = test_inner_with(ServerConfig {
            deadline: Duration::from_millis(200),
            ..ServerConfig::default()
        });
        let mut expired = job(&inner, br#"{"nodes":[0]}"#, false);
        expired.token = 1;
        expired.started = Instant::now()
            .checked_sub(Duration::from_secs(1))
            .expect("process uptime exceeds one second");
        let mut fine = job(&inner, br#"{"nodes":[0]}"#, false);
        fine.token = 2;
        let completions = process_jobs(&inner, vec![expired, fine]);
        let by_token = |t: u64| completions.iter().find(|c| c.token == t).unwrap();
        assert_eq!(by_token(1).reply.status, 503);
        assert!(by_token(1).reply.body.contains("deadline"));
        assert_eq!(by_token(2).reply.status, 200);
    }
}
