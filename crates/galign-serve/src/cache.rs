//! Sharded in-memory LRU cache for top-k query results.
//!
//! Keys are `(node, k, θ)` — θ compared by exact bit pattern, so a cache
//! hit is only ever returned for the identical weighting. The store is
//! split into power-of-two shards, each behind its own mutex, so
//! concurrent workers rarely contend; within a shard, recency is an
//! intrusive doubly-linked list over a slab (`O(1)` get/insert/evict, no
//! per-operation allocation beyond the inserted value).

use crate::topk::{Hit, QuantMode};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one top-k query. θ is stored as raw `f64` bits: bit-exact
/// equality (the only safe cache equivalence) and hashability for free.
/// The engine route is part of the key — ANN answers may legitimately
/// differ from exact ones (missed candidates), so the two must never
/// share cache entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Source node id.
    pub node: usize,
    /// Requested k (pre-clamping).
    pub k: usize,
    /// θ override as bit patterns; `None` = artifact default.
    pub theta_bits: Option<Vec<u64>>,
    /// Whether the query routed to the ANN engine (the *decision*, which
    /// is deterministic per request — not the per-node fallback outcome,
    /// which may serve exact results under an ANN key; those are at least
    /// as accurate, so sharing that direction is sound).
    pub ann_engine: bool,
    /// Artifact generation the entry was computed against. Hot swaps
    /// clear the cache *and* bump this: a request pinned to the old
    /// generation that finishes after the clear re-inserts under its old
    /// generation and can never poison post-swap lookups.
    pub generation: u64,
    /// First-pass scan precision the query requested. Exact-engine
    /// quantized scans are bit-identical to f64 scans, but ANN traversal
    /// over quantized rows may visit *different candidates* than f64
    /// traversal, so the two must never share entries.
    pub quant: QuantMode,
}

impl QueryKey {
    /// Builds a key for an exact-engine query.
    #[must_use]
    pub fn new(node: usize, k: usize, theta: Option<&[f64]>) -> Self {
        QueryKey::with_engine(node, k, theta, false)
    }

    /// Builds a key carrying the engine-routing decision.
    #[must_use]
    pub fn with_engine(node: usize, k: usize, theta: Option<&[f64]>, ann_engine: bool) -> Self {
        QueryKey::with_generation(node, k, theta, ann_engine, 0)
    }

    /// Builds a key carrying the engine decision and the artifact
    /// generation it was computed against.
    #[must_use]
    pub fn with_generation(
        node: usize,
        k: usize,
        theta: Option<&[f64]>,
        ann_engine: bool,
        generation: u64,
    ) -> Self {
        QueryKey::with_quant(node, k, theta, ann_engine, generation, QuantMode::Off)
    }

    /// Builds a fully discriminated key, including the requested scan
    /// precision.
    #[must_use]
    pub fn with_quant(
        node: usize,
        k: usize,
        theta: Option<&[f64]>,
        ann_engine: bool,
        generation: u64,
        quant: QuantMode,
    ) -> Self {
        QueryKey {
            node,
            k,
            theta_bits: theta.map(|t| t.iter().map(|v| v.to_bits()).collect()),
            ann_engine,
            generation,
            quant,
        }
    }
}

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map over a slab-backed doubly-linked list.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables it:
    /// every lookup misses and inserts are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// The configured entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Inserts (or replaces) a value, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let old = &self.slots[lru];
            self.map.remove(&old.key);
            self.free.push(lru);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i].key = key.clone();
                self.slots[i].value = value;
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(key, i);
    }

    /// Keys from most- to least-recently used (test/diagnostic helper).
    #[must_use]
    pub fn recency_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slots[i].key.clone());
            i = self.slots[i].next;
        }
        out
    }
}

/// Cached top-k results, shared between the cache and in-flight responses.
pub type CachedHits = Arc<Vec<Hit>>;

/// The serving cache: shards of [`LruCache`] plus hit/miss counters.
pub struct ShardedCache {
    shards: Vec<Mutex<LruCache<QueryKey, CachedHits>>>,
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// Creates a cache of `capacity` total entries spread over `shards`
    /// mutexes (rounded up to a power of two; capacity 0 disables).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(n);
        ShardedCache {
            shards: (0..n)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            mask: (n - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<LruCache<QueryKey, CachedHits>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() & self.mask) as usize]
    }

    /// Looks up a query, counting the hit or miss.
    pub fn get(&self, key: &QueryKey) -> Option<CachedHits> {
        let got = self
            .shard(key)
            .lock()
            .expect("cache shard lock")
            .get(key)
            .cloned();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches a computed result.
    pub fn insert(&self, key: QueryKey, value: CachedHits) {
        self.shard(&key)
            .lock()
            .expect("cache shard lock")
            .insert(key, value);
    }

    /// Drops every cached entry (hit/miss counters survive). Used when
    /// the artifact generation is hot-swapped: entries computed against
    /// the old index must never answer queries against the new one.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock().expect("cache shard lock");
            let capacity = guard.capacity();
            *guard = LruCache::new(capacity);
        }
    }

    /// Total cached entries across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(node: usize) -> QueryKey {
        QueryKey::new(node, 5, None)
    }

    #[test]
    fn hit_returns_inserted_value_and_updates_recency() {
        let mut c: LruCache<QueryKey, u32> = LruCache::new(3);
        c.insert(key(1), 10);
        c.insert(key(2), 20);
        c.insert(key(3), 30);
        assert_eq!(c.get(&key(1)), Some(&10));
        // 1 is now most recent: order 1, 3, 2.
        assert_eq!(c.recency_order(), vec![key(1), key(3), key(2)]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<QueryKey, u32> = LruCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        assert_eq!(c.get(&key(1)), Some(&1)); // 2 becomes LRU
        c.insert(key(3), 3);
        assert_eq!(c.get(&key(2)), None, "LRU entry must be evicted");
        assert_eq!(c.get(&key(1)), Some(&1));
        assert_eq!(c.get(&key(3)), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut c: LruCache<QueryKey, u32> = LruCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        c.insert(key(1), 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(1)), Some(&11));
        // Updating 1 refreshed it; inserting 3 evicts 2.
        c.insert(key(3), 3);
        assert_eq!(c.get(&key(2)), None);
    }

    #[test]
    fn eviction_slots_are_reused() {
        let mut c: LruCache<QueryKey, u32> = LruCache::new(2);
        for i in 0..100 {
            c.insert(key(i), i as u32);
        }
        assert_eq!(c.len(), 2);
        assert!(c.slots.len() <= 3, "slab must not grow past capacity");
        assert_eq!(c.get(&key(99)), Some(&99));
        assert_eq!(c.get(&key(98)), Some(&98));
        assert_eq!(c.get(&key(0)), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<QueryKey, u32> = LruCache::new(0);
        c.insert(key(1), 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&key(1)), None);
    }

    #[test]
    fn theta_is_part_of_the_key_bit_exactly() {
        let a = QueryKey::new(1, 5, Some(&[0.1, 0.2]));
        let b = QueryKey::new(1, 5, Some(&[0.1, 0.2]));
        let c = QueryKey::new(1, 5, Some(&[0.1, 0.2 + 1e-17]));
        let d = QueryKey::new(1, 5, None);
        assert_eq!(a, b);
        assert_eq!(c, b, "values below f64 resolution are the same bits");
        assert_ne!(a, d);
        let e = QueryKey::new(1, 5, Some(&[0.1, 0.25]));
        assert_ne!(a, e);
    }

    #[test]
    fn engine_route_is_part_of_the_key() {
        let exact = QueryKey::new(1, 5, None);
        let ann = QueryKey::with_engine(1, 5, None, true);
        assert_ne!(exact, ann, "ANN and exact results must never alias");
        assert_eq!(exact, QueryKey::with_engine(1, 5, None, false));
    }

    #[test]
    fn quant_mode_is_part_of_the_key() {
        let f64_scan = QueryKey::with_quant(1, 5, None, true, 0, QuantMode::Off);
        let int8 = QueryKey::with_quant(1, 5, None, true, 0, QuantMode::Int8);
        let f16 = QueryKey::with_quant(1, 5, None, true, 0, QuantMode::F16);
        assert_ne!(f64_scan, int8);
        assert_ne!(int8, f16);
        assert_eq!(f64_scan, QueryKey::with_generation(1, 5, None, true, 0));
    }

    #[test]
    fn sharded_cache_counts_hits_and_misses() {
        let cache = ShardedCache::new(64, 4);
        assert!(cache.is_empty());
        let hits: CachedHits = Arc::new(vec![Hit {
            target: 3,
            score: 0.5,
        }]);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), hits.clone());
        let got = cache.get(&key(1)).expect("hit");
        assert_eq!(got[0].target, 3);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sharded_clear_empties_every_shard_but_keeps_capacity() {
        let cache = ShardedCache::new(8, 4);
        for node in 0..8 {
            cache.insert(key(node), Arc::new(vec![]));
        }
        assert!(!cache.is_empty());
        cache.clear();
        assert_eq!(cache.len(), 0);
        // Still usable at the same capacity after clearing.
        for node in 0..8 {
            cache.insert(key(node), Arc::new(vec![]));
        }
        assert!(!cache.is_empty() && cache.len() <= 8);
    }

    #[test]
    fn sharded_cache_respects_total_capacity() {
        let cache = ShardedCache::new(8, 4);
        for i in 0..1000 {
            cache.insert(key(i), Arc::new(Vec::new()));
        }
        // Each of the 4 shards holds at most ceil(8/4) = 2 entries.
        assert!(cache.len() <= 8, "len {} exceeds capacity", cache.len());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ShardedCache::new(128, 8));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let k = QueryKey::new((t * 37 + i) % 64, 5, None);
                    if c.get(&k).is_none() {
                        c.insert(k, Arc::new(Vec::new()));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 8 * 500);
    }
}
