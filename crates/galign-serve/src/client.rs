//! A minimal std-only HTTP/1.1 client with retry, exponential backoff
//! and jitter, built for talking to [`crate::server`].
//!
//! The server sheds load with `503` + `Retry-After` instead of queueing
//! unboundedly; a client that hammers straight back defeats that
//! protection. This client cooperates:
//!
//! * transient failures (connect refused/reset, IO errors, `503`) are
//!   retried up to [`ClientConfig::max_retries`] times;
//! * the wait between attempts doubles each time (capped at
//!   [`ClientConfig::max_backoff`]) with deterministic jitter, so a
//!   thundering herd of shed clients spreads out instead of
//!   re-synchronising;
//! * a `Retry-After: N` header (seconds, as the server sends) overrides
//!   the computed backoff — the server knows its own recovery horizon
//!   better than the client's schedule does. Fractional values (`1.5`)
//!   are honored, oversized values are clamped, and malformed, negative
//!   or non-finite values are ignored in favor of the computed backoff —
//!   a proxy-mangled header must not stall or crash the client.
//!
//! Responses with other statuses (including 4xx/5xx) are returned to the
//! caller, not retried: a `400` will not become a `200` by asking again.
//!
//! ## Connection reuse
//!
//! By default ([`ClientConfig::keep_alive`]) the client sends
//! `connection: keep-alive` and pools the socket after each completed
//! response, so sequential requests to the same target reuse one TCP
//! connection instead of paying a fresh handshake each time — the
//! router's scatter fan-out sends one request per shard per query and
//! rides this pool. A pooled socket the server has since closed (idle
//! timeout, restart) fails fast on reuse and is transparently replaced
//! with one fresh connection *without* consuming a retry attempt.
//! [`Client::pool_stats`] reports connects vs reuses.
//!
//! Every logical request carries one trace id in the
//! [`crate::server::TRACE_HEADER`] header — reused from the calling
//! thread's installed [`galign_telemetry::TraceContext`] when there is
//! one, freshly generated otherwise — and that **same** id is re-sent on
//! every retry attempt, so a request that was shed twice and then served
//! shows up as one trace on the server, not three.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use galign_telemetry::TraceId;

use crate::server::{DEADLINE_HEADER, TRACE_HEADER};

/// Retry/backoff tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Retries after the first attempt (total attempts = `max_retries+1`).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout per attempt.
    pub io_timeout: Duration,
    /// Seed of the deterministic jitter stream (vary per client thread so
    /// concurrent clients do not back off in lockstep).
    pub jitter_seed: u64,
    /// Whether to send the `x-galign-trace-id` header (on by default).
    /// Disabling it makes the server assign its own ids — useful for A/B
    /// measurements of the propagation machinery (see the loadtest's
    /// `--untraced` flag).
    pub trace_header: bool,
    /// Whether to request `connection: keep-alive` and pool the socket
    /// between sequential requests (on by default). Off restores the
    /// historical one-connection-per-request behavior.
    pub keep_alive: bool,
    /// Retry-budget earn rate: tokens earned per logical request, i.e.
    /// the fraction of traffic that may be *extra* attempts (IO-error
    /// retries). `0.1` caps retry amplification near 10% — a brownout
    /// cannot snowball into a retry storm. `<= 0` disables the budget
    /// (unlimited retries, the historical behavior). Server-paced `503`
    /// retries are exempt: they already honor `Retry-After`.
    pub retry_budget_ratio: f64,
    /// Retry-budget token ceiling (burst headroom). Also the initial
    /// balance, so short bursts right after startup can still retry.
    pub retry_budget_cap: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            jitter_seed: 1,
            trace_header: true,
            keep_alive: true,
            retry_budget_ratio: 0.1,
            retry_budget_cap: 10.0,
        }
    }
}

/// Idle sockets kept per client. One is enough for a strictly sequential
/// caller; a small headroom absorbs recycle/pop races cheaply.
const POOL_LIMIT: usize = 4;

/// Connection-pool counters of one client (see [`Client::pool_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh TCP connections established.
    pub connects: u64,
    /// Requests served over a pooled (reused) socket.
    pub reuses: u64,
}

/// Ceiling honored for a server `Retry-After` hint, in seconds. A shed
/// server asking a client to come back in more than a minute is
/// indistinguishable from a corrupted header, so larger hints clamp here
/// rather than parking the client for hours.
pub const MAX_RETRY_AFTER_SECS: f64 = 60.0;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a header (name matched case-insensitively).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The server's `Retry-After` hint in seconds, if present and sane.
    ///
    /// Parsed as `f64` so fractional hints (`"1.5"`) survive; malformed,
    /// negative, or non-finite values yield `None` (callers fall back to
    /// their computed backoff) and oversized hints clamp to
    /// [`MAX_RETRY_AFTER_SECS`] so a mangled header cannot stall a client
    /// for hours.
    #[must_use]
    pub fn retry_after_secs(&self) -> Option<f64> {
        let secs: f64 = self.header("retry-after")?.trim().parse().ok()?;
        if !secs.is_finite() || secs < 0.0 {
            return None;
        }
        Some(secs.min(MAX_RETRY_AFTER_SECS))
    }
}

/// Statistics of one logical request (across its retries).
#[derive(Debug, Clone, Copy, Default)]
pub struct Attempts {
    /// Attempts made (≥ 1 on success).
    pub tries: u32,
    /// How many attempts were answered with a shed `503`.
    pub shed: u32,
}

/// The retrying HTTP client.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    jitter: std::cell::Cell<u64>,
    /// `Retry-After` seconds from the most recent shed response, consumed
    /// by the next backoff computation. Always finite, non-negative and
    /// clamped — [`Response::retry_after_secs`] filters hostile values.
    retry_after: std::cell::Cell<Option<f64>>,
    /// Idle keep-alive sockets ready for reuse (capped at [`POOL_LIMIT`]).
    /// `RefCell`, not a mutex: `Client` is deliberately `!Sync` (the
    /// jitter cells already are), so one thread owns the pool.
    pool: std::cell::RefCell<Vec<TcpStream>>,
    pool_connects: std::cell::Cell<u64>,
    pool_reuses: std::cell::Cell<u64>,
    /// Retry-budget token balance (see [`ClientConfig::retry_budget_ratio`]).
    budget: std::cell::Cell<f64>,
}

impl Client {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:8080"`) with default
    /// retry policy.
    ///
    /// # Errors
    /// Address resolution failures.
    pub fn new(addr: &str) -> io::Result<Self> {
        Client::with_config(addr, ClientConfig::default())
    }

    /// Creates a client with an explicit retry policy.
    ///
    /// # Errors
    /// Address resolution failures.
    pub fn with_config(addr: &str, cfg: ClientConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let jitter = std::cell::Cell::new(cfg.jitter_seed.max(1));
        let budget = std::cell::Cell::new(cfg.retry_budget_cap.max(0.0));
        Ok(Client {
            addr,
            cfg,
            jitter,
            retry_after: std::cell::Cell::new(None),
            pool: std::cell::RefCell::new(Vec::new()),
            pool_connects: std::cell::Cell::new(0),
            pool_reuses: std::cell::Cell::new(0),
            budget,
        })
    }

    /// Remaining retry-budget tokens (diagnostics/tests).
    #[must_use]
    pub fn retry_budget(&self) -> f64 {
        self.budget.get()
    }

    /// Spends one retry-budget token if available. Refusals bump
    /// `client.retry_budget.exhausted`. Always grants when the budget is
    /// disabled (`retry_budget_ratio <= 0`).
    fn try_charge_retry(&self) -> bool {
        if self.cfg.retry_budget_ratio <= 0.0 {
            return true;
        }
        let balance = self.budget.get();
        if balance >= 1.0 {
            self.budget.set(balance - 1.0);
            true
        } else {
            galign_telemetry::counter_add("client.retry_budget.exhausted", 1);
            false
        }
    }

    /// Earns the per-request fraction of a token, capped at the burst
    /// ceiling.
    fn earn_retry_budget(&self) {
        if self.cfg.retry_budget_ratio > 0.0 {
            self.budget.set(
                (self.budget.get() + self.cfg.retry_budget_ratio).min(self.cfg.retry_budget_cap),
            );
        }
    }

    /// Connection-pool counters: fresh connects vs requests served over a
    /// reused socket.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            connects: self.pool_connects.get(),
            reuses: self.pool_reuses.get(),
        }
    }

    /// `GET path`, with retries. A `503` that survives every retry is
    /// returned as a response, not an error.
    ///
    /// # Errors
    /// When the last attempt failed at the IO level.
    pub fn get(&self, path: &str) -> io::Result<Response> {
        self.request("GET", path, None, None).map(|(r, _, _)| r)
    }

    /// `POST path` with a JSON body, with retries. A `503` that survives
    /// every retry is returned as a response, not an error.
    ///
    /// # Errors
    /// When the last attempt failed at the IO level.
    pub fn post_json(&self, path: &str, body: &str) -> io::Result<Response> {
        self.request("POST", path, Some(body), None)
            .map(|(r, _, _)| r)
    }

    /// Like [`Client::post_json`] but also reports how many attempts (and
    /// shed responses) the request took — the loadtest uses this to prove
    /// that backoff, not luck, recovered the traffic.
    ///
    /// # Errors
    /// When the last attempt failed at the IO level.
    pub fn post_json_with_stats(&self, path: &str, body: &str) -> io::Result<(Response, Attempts)> {
        self.request("POST", path, Some(body), None)
            .map(|(r, a, _)| (r, a))
    }

    /// Like [`Client::post_json_with_stats`] but also reports the trace
    /// id the request carried, so callers can correlate the response with
    /// the server's access log and flight recorder.
    ///
    /// # Errors
    /// When the last attempt failed at the IO level.
    pub fn post_json_traced(
        &self,
        path: &str,
        body: &str,
    ) -> io::Result<(Response, Attempts, TraceId)> {
        self.request("POST", path, Some(body), None)
    }

    /// Like [`Client::post_json`], but propagates `deadline` downstream:
    /// every attempt stamps the *remaining* budget (milliseconds) into
    /// the [`DEADLINE_HEADER`] so the server can shed work it cannot
    /// finish in time, per-attempt socket timeouts shrink to the
    /// remaining budget, and the retry loop stops once the deadline has
    /// passed instead of sleeping through it.
    ///
    /// # Errors
    /// `TimedOut` when the deadline expires before any attempt produced
    /// a response; otherwise as [`Client::post_json`].
    pub fn post_json_with_deadline(
        &self,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> io::Result<Response> {
        self.request("POST", path, Some(body), deadline)
            .map(|(r, _, _)| r)
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        deadline: Option<Instant>,
    ) -> io::Result<(Response, Attempts, TraceId)> {
        // One id per *logical* request: resolved before the retry loop so
        // every attempt — including the ones a shedding server rejects —
        // lands in the same server-side trace.
        let trace_id =
            galign_telemetry::context::current_trace_id().unwrap_or_else(TraceId::generate);
        self.earn_retry_budget();
        let mut stats = Attempts::default();
        // The last outcome: either a 503 response (returned to the caller
        // if retries run out — it is a real answer, not an IO failure) or
        // the most recent transport error.
        let mut last: Option<io::Result<Response>> = None;
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                // Retrying an IO error is *speculative* extra load — it
                // spends a retry-budget token so a brownout cannot amplify
                // into a retry storm. Retrying a shed 503 is exempt: the
                // server itself paced that retry via Retry-After.
                if matches!(last, Some(Err(_))) && !self.try_charge_retry() {
                    break;
                }
                std::thread::sleep(self.backoff(attempt));
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break;
                }
            }
            stats.tries += 1;
            match self.request_once(method, path, body, trace_id, deadline) {
                Ok(resp) if resp.status == 503 => {
                    stats.shed += 1;
                    galign_telemetry::counter_add("client.http.shed_responses", 1);
                    // Stash the hint where backoff() can see it.
                    self.retry_after.set(resp.retry_after_secs());
                    last = Some(Ok(resp));
                }
                Ok(resp) => return Ok((resp, stats, trace_id)),
                Err(e) => {
                    galign_telemetry::counter_add("client.http.io_errors", 1);
                    self.retry_after.set(None);
                    last = Some(Err(e));
                }
            }
        }
        match last {
            Some(Ok(resp)) => Ok((resp, stats, trace_id)),
            Some(Err(e)) => Err(e),
            None => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "deadline expired before any attempt",
            )),
        }
    }

    /// Read/write timeout for one attempt: the configured `io_timeout`,
    /// shrunk to the remaining deadline budget so an attempt never blocks
    /// past the point where its answer became useless.
    fn attempt_timeout(&self, deadline: Option<Instant>) -> io::Result<Duration> {
        match deadline {
            None => Ok(self.cfg.io_timeout),
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline expired"));
                }
                Ok(self.cfg.io_timeout.min(remaining))
            }
        }
    }

    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        trace_id: TraceId,
        deadline: Option<Instant>,
    ) -> io::Result<Response> {
        let timeout = self.attempt_timeout(deadline)?;
        // Try a pooled socket first. The server may have closed it since
        // (idle timeout, restart, shutdown), which only surfaces on use —
        // that failure is a property of the *stale socket*, not of the
        // request, so it is repaired with one fresh connection here and
        // never charged against the caller's retry budget.
        if self.cfg.keep_alive {
            let pooled = self.pool.borrow_mut().pop();
            if let Some(stream) = pooled {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                if let Ok(resp) = self.send_on(&stream, method, path, body, trace_id, deadline) {
                    self.pool_reuses.set(self.pool_reuses.get() + 1);
                    galign_telemetry::counter_add("client.http.pool.reuses", 1);
                    self.recycle(stream, &resp);
                    return Ok(resp);
                }
                galign_telemetry::counter_add("client.http.pool.stale_drops", 1);
            }
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        self.pool_connects.set(self.pool_connects.get() + 1);
        galign_telemetry::counter_add("client.http.pool.connects", 1);
        let resp = self.send_on(&stream, method, path, body, trace_id, deadline)?;
        self.recycle(stream, &resp);
        Ok(resp)
    }

    /// Writes one request on `stream` and reads the response. The socket
    /// is left positioned after the response body (content-length framed),
    /// so a keep-alive connection is immediately reusable.
    fn send_on(
        &self,
        stream: &TcpStream,
        method: &str,
        path: &str,
        body: Option<&str>,
        trace_id: TraceId,
        deadline: Option<Instant>,
    ) -> io::Result<Response> {
        let mut writer = stream;
        let body = body.unwrap_or("");
        let trace_line = if self.cfg.trace_header {
            format!("{TRACE_HEADER}: {}\r\n", trace_id.to_hex())
        } else {
            String::new()
        };
        // The remaining budget is computed per *attempt*, so a retry
        // advertises less than the attempt before it did.
        let deadline_line = match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline expired"));
                }
                format!("{DEADLINE_HEADER}: {}\r\n", remaining.as_millis())
            }
            None => String::new(),
        };
        let connection = if self.cfg.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nhost: galign-client\r\n{trace_line}{deadline_line}content-length: {}\r\nconnection: {connection}\r\n\r\n{body}",
            body.len()
        )?;
        writer.flush()?;
        read_response(&mut BufReader::new(stream))
    }

    /// Returns `stream` to the pool when both sides agreed to keep it
    /// alive and the response was content-length framed (a read-to-EOF
    /// body consumed the connection by definition).
    fn recycle(&self, stream: TcpStream, resp: &Response) {
        let server_keeps = resp
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
        if self.cfg.keep_alive && server_keeps && resp.header("content-length").is_some() {
            let mut pool = self.pool.borrow_mut();
            if pool.len() < POOL_LIMIT {
                pool.push(stream);
            }
        }
    }

    /// Next backoff: `Retry-After` if the server sent one (and it is
    /// positive), else exponential-with-jitter from the attempt number.
    fn backoff(&self, attempt: u32) -> Duration {
        if let Some(secs) = self.retry_after.take() {
            if secs > 0.0 {
                // Safe: retry_after_secs() guarantees finite, >= 0 and
                // clamped, so from_secs_f64 cannot panic.
                return Duration::from_secs_f64(secs);
            }
        }
        let exp = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.cfg.max_backoff);
        // Half jitter: uniform in [exp/2, exp), so synchronized clients
        // spread out while still respecting the exponential envelope.
        let half = exp / 2;
        half + Duration::from_nanos(self.next_jitter() % (half.as_nanos().max(1) as u64))
    }

    fn next_jitter(&self) -> u64 {
        // xorshift64 — deterministic, no external RNG dependency.
        let mut x = self.jitter.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.set(x);
        x
    }
}

/// Reads and parses one HTTP/1.1 response (status line, headers,
/// `Content-Length` body or read-to-EOF for `Connection: close`).
///
/// # Errors
/// IO failures or an unparseable response head.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let response = Response {
        status,
        headers,
        body: Vec::new(),
    };
    let mut body = Vec::new();
    if let Some(len) = response.header("content-length") {
        let len: usize = len.parse().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "bad content-length in response")
        })?;
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(Response { body, ..response })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, Mat};
    use crate::server::{ServeConfig, Server};
    use crate::topk::TopkIndex;

    fn test_server(cfg: ServeConfig) -> crate::server::ServerHandle {
        let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
        let index = TopkIndex::from_artifact(
            Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap(),
        );
        Server::bind("127.0.0.1:0", index, cfg).unwrap().spawn()
    }

    #[test]
    fn get_and_post_roundtrip() {
        let handle = test_server(ServeConfig::default());
        let client = Client::new(&handle.addr().to_string()).unwrap();
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_str().contains("\"status\":\"ok\""));
        let resp = client
            .post_json("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        assert!(resp.body_str().contains("\"matches\""));
        handle.shutdown().unwrap();
    }

    #[test]
    fn trace_id_is_sent_and_echoed() {
        let handle = test_server(ServeConfig::default());
        let client = Client::new(&handle.addr().to_string()).unwrap();
        // Client-generated id comes back in the response header.
        let (resp, _, trace_id) = client
            .post_json_traced("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        assert_eq!(resp.header(TRACE_HEADER), Some(trace_id.to_hex().as_str()));
        // An ambient TraceContext on the calling thread wins over a fresh
        // generation, so in-process callers correlate their own spans.
        let ctx = galign_telemetry::TraceContext::root(TraceId::generate());
        let _guard = ctx.enter();
        let (resp, _, trace_id) = client
            .post_json_traced("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
            .unwrap();
        assert_eq!(trace_id, ctx.trace_id());
        assert_eq!(resp.header(TRACE_HEADER), Some(trace_id.to_hex().as_str()));
        handle.shutdown().unwrap();
    }

    #[test]
    fn non_retryable_statuses_are_returned_not_retried() {
        let handle = test_server(ServeConfig::default());
        let client = Client::new(&handle.addr().to_string()).unwrap();
        let (resp, stats) = client
            .post_json_with_stats("/v1/align/topk", "not json")
            .unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(stats.tries, 1, "a 400 must not be retried");
        handle.shutdown().unwrap();
    }

    #[test]
    fn connect_failure_is_retried_then_surfaced() {
        // Bind-then-drop gives a port nothing listens on.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let client = Client::with_config(
            &format!("127.0.0.1:{port}"),
            ClientConfig {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
                connect_timeout: Duration::from_millis(200),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let err = client.get("/healthz").unwrap_err();
        // Three attempts happened (observable only as elapsed backoff);
        // the final error is the underlying IO failure.
        assert_ne!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let client = Client::with_config(
            "127.0.0.1:1",
            ClientConfig {
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(80),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        for attempt in 1..10 {
            let b = client.backoff(attempt);
            assert!(b <= Duration::from_millis(80), "attempt {attempt}: {b:?}");
            assert!(b >= Duration::from_millis(5), "attempt {attempt}: {b:?}");
        }
        // A Retry-After hint overrides the schedule exactly once; a hint
        // of 0 seconds falls back to the computed schedule.
        client.retry_after.set(Some(2.0));
        assert_eq!(client.backoff(1), Duration::from_secs(2));
        assert!(client.backoff(1) < Duration::from_secs(1));
        client.retry_after.set(Some(0.0));
        assert!(client.backoff(1) < Duration::from_secs(1));
    }

    #[test]
    fn retry_after_tolerates_fractional_and_malformed_values() {
        let parse = |v: &str| {
            Response {
                status: 503,
                headers: vec![("retry-after".to_string(), v.to_string())],
                body: Vec::new(),
            }
            .retry_after_secs()
        };
        assert_eq!(parse("2"), Some(2.0));
        assert_eq!(parse(" 1.5 "), Some(1.5));
        assert_eq!(parse("0"), Some(0.0));
        // Malformed or hostile values are ignored: the client falls back
        // to its computed exponential backoff instead of erroring out.
        assert_eq!(parse("soon"), None);
        assert_eq!(parse("-3"), None);
        assert_eq!(parse("NaN"), None);
        assert_eq!(parse("inf"), None);
        assert_eq!(parse(""), None);
        // Oversized hints clamp rather than stalling the client.
        assert_eq!(parse("86400"), Some(MAX_RETRY_AFTER_SECS));
        // A fractional hint drives the actual sleep duration.
        let client = Client::with_config("127.0.0.1:1", ClientConfig::default()).unwrap();
        client.retry_after.set(Some(1.5));
        assert_eq!(client.backoff(1), Duration::from_secs_f64(1.5));
        // Malformed headers leave no stale hint behind: the next backoff
        // is the computed one (bounded by max_backoff, far below 1.5s
        // after the hint was consumed by the previous call).
        assert!(client.backoff(1) <= client.cfg.max_backoff);
    }

    #[test]
    fn sequential_requests_share_one_socket() {
        let handle = test_server(ServeConfig::default());
        let client = Client::new(&handle.addr().to_string()).unwrap();
        assert_eq!(client.pool_stats(), PoolStats::default());
        for _ in 0..3 {
            let resp = client
                .post_json("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
                .unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body_str());
        }
        // One TCP connect, then every subsequent request reused it.
        let stats = client.pool_stats();
        assert_eq!(stats.connects, 1, "{stats:?}");
        assert_eq!(stats.reuses, 2, "{stats:?}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn keep_alive_off_connects_per_request() {
        let handle = test_server(ServeConfig::default());
        let client = Client::with_config(
            &handle.addr().to_string(),
            ClientConfig {
                keep_alive: false,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        for _ in 0..2 {
            assert_eq!(client.get("/healthz").unwrap().status, 200);
        }
        let stats = client.pool_stats();
        assert_eq!(stats.connects, 2, "{stats:?}");
        assert_eq!(stats.reuses, 0, "{stats:?}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn stale_pooled_socket_is_replaced_without_burning_a_retry() {
        // Plant a socket whose peer is already gone in the pool — the
        // moral equivalent of a server that idle-timed-out or restarted
        // under us. With max_retries: 0 there is no retry budget to hide
        // behind: the client must detect the stale socket on reuse and
        // repair with one fresh connect, invisibly to the caller.
        let handle = test_server(ServeConfig::default());
        let client = Client::with_config(
            &handle.addr().to_string(),
            ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let dead = {
            let graveyard = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let stream = TcpStream::connect(graveyard.local_addr().unwrap()).unwrap();
            drop(graveyard.accept().unwrap());
            stream
        };
        client.pool.borrow_mut().push(dead);
        let (resp, attempts) = client
            .post_json_with_stats("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
            .unwrap_or_else(|e| panic!("stale socket should be repaired transparently: {e}"));
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        assert_eq!(attempts.tries, 1, "repair must not consume a retry");
        let stats = client.pool_stats();
        assert_eq!(stats.connects, 1, "{stats:?}");
        assert_eq!(stats.reuses, 0, "{stats:?}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn response_parser_handles_headers_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\nretry-after: 2\r\ncontent-length: 2\r\n\r\n{}";
        let resp = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after_secs(), Some(2.0));
        assert_eq!(resp.body, b"{}");
        assert!(read_response(&mut BufReader::new(&b"garbage"[..])).is_err());
    }
}
