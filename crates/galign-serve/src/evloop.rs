//! Readiness polling for the event-loop server.
//!
//! The serving crate is std-only, so there is no `mio` to lean on: on
//! Linux this module drives epoll directly through raw syscalls
//! (`epoll_create1` / `epoll_ctl` / `epoll_pwait` via inline asm — the
//! container toolchain has no libc crate either), level-triggered, with
//! one `u64` token per registration. Everything the server registers is a
//! non-blocking socket, so the contract handlers rely on is small: a
//! readiness event means "try the operation; `WouldBlock` means not
//! actually ready" — which also makes the non-Linux fallback (a bounded
//! sleep that reports every registration ready) merely slower, never
//! wrong.
//!
//! The [`wake_pair`] helper builds the loop's waker: a loopback TCP pair
//! whose read half lives in the poller under a reserved token and whose
//! write half worker threads poke one byte at to interrupt a blocking
//! [`Poller::poll`] (completion queues have no fd of their own).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};

/// One readiness event. `readable`/`writable` are hints, not guarantees:
/// error and hang-up conditions set both so the owning state machine
/// observes the failure on its next non-blocking operation.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token.
    pub token: u64,
    /// Reading will make progress (data, EOF, or an error to collect).
    pub readable: bool,
    /// Writing will make progress (or fail fast).
    pub writable: bool,
}

/// The raw fd of a socket, as the poller's registration key. On non-unix
/// targets this returns a dummy — the fallback poller keys registrations
/// by token only.
#[cfg(unix)]
pub fn fd_of(source: &impl std::os::unix::io::AsRawFd) -> i32 {
    source.as_raw_fd()
}

/// Non-unix stub of [`fd_of`]; the fallback poller ignores fds.
#[cfg(not(unix))]
pub fn fd_of<T>(_source: &T) -> i32 {
    0
}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i64 = 0x8_0000;
    const EPOLL_CTL_ADD: i64 = 1;
    const EPOLL_CTL_DEL: i64 = 2;
    const EPOLL_CTL_MOD: i64 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLPRI: u32 = 0x002;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EINTR: i64 = 4;
    const MAX_EVENTS: usize = 256;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: i64 = 3;
        pub const EPOLL_CTL: i64 = 233;
        pub const EPOLL_PWAIT: i64 = 281;
        pub const EPOLL_CREATE1: i64 = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: i64 = 20;
        pub const EPOLL_CTL: i64 = 21;
        pub const EPOLL_PWAIT: i64 = 22;
        pub const CLOSE: i64 = 57;
    }

    /// `struct epoll_event`; packed on x86_64 (the kernel ABI there has
    /// no padding between the 32-bit mask and the 64-bit payload).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
        let ret;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
        let ret;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x8") nr,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: i64,
    }

    // The epoll fd is used from the event-loop thread only, but handing
    // the Poller to the thread that runs the loop requires Send.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe { syscall(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i64, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let ev = EpollEvent {
                events,
                data: token,
            };
            check(unsafe {
                syscall(
                    nr::EPOLL_CTL,
                    self.epfd,
                    op,
                    i64::from(fd),
                    std::ptr::addr_of!(ev) as i64,
                    0,
                )
            })
            .map(|_| ())
        }

        fn interest(readable: bool, writable: bool) -> u32 {
            (if readable { EPOLLIN | EPOLLPRI } else { 0 }) | (if writable { EPOLLOUT } else { 0 })
        }

        pub fn register(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::interest(readable, writable), token)
        }

        pub fn reregister(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::interest(readable, writable), token)
        }

        pub fn deregister(&self, fd: i32, _token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn poll(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: i64 = match timeout {
                None => -1,
                // Round up so a 200µs deadline never busy-spins at 0ms.
                Some(d) => i64::try_from(d.as_millis().max(1).min(i64::MAX as u128))
                    .unwrap_or(i64::MAX)
                    .min(i64::from(i32::MAX)),
            };
            let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                let ret = unsafe {
                    syscall(
                        nr::EPOLL_PWAIT,
                        self.epfd,
                        events.as_mut_ptr() as i64,
                        MAX_EVENTS as i64,
                        timeout_ms,
                        0, // null sigmask: plain epoll_wait semantics
                    )
                };
                if ret == -EINTR {
                    continue;
                }
                break check(ret)?;
            };
            for ev in &events[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let bits = { ev.events };
                let token = { ev.data };
                let failed = bits & (EPOLLERR | EPOLLHUP) != 0;
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLPRI) != 0 || failed,
                    writable: bits & EPOLLOUT != 0 || failed,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = unsafe { syscall(nr::CLOSE, self.epfd, 0, 0, 0, 0) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::Event;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Portable fallback: tracks registrations and, after a bounded
    /// sleep, reports every one of them ready per its interests. Sockets
    /// are non-blocking, so spurious readiness costs a `WouldBlock` and
    /// nothing else; the price is latency granularity, not correctness.
    pub struct Poller {
        registered: Mutex<Vec<(u64, bool, bool)>>,
    }

    const SLICE: Duration = Duration::from_millis(5);

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn register(
            &self,
            _fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut reg = self.registered.lock().expect("poller lock");
            reg.retain(|&(t, _, _)| t != token);
            reg.push((token, readable, writable));
            Ok(())
        }

        pub fn reregister(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.register(fd, token, readable, writable)
        }

        pub fn deregister(&self, _fd: i32, token: u64) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller lock")
                .retain(|&(t, _, _)| t != token);
            Ok(())
        }

        pub fn poll(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            std::thread::sleep(timeout.unwrap_or(SLICE).min(SLICE));
            for &(token, readable, writable) in self.registered.lock().expect("poller lock").iter()
            {
                if readable || writable {
                    out.push(Event {
                        token,
                        readable,
                        writable,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

/// Builds the event loop's waker: a connected loopback TCP pair
/// `(tx, rx)`. The caller registers `rx` (non-blocking) in the poller
/// under a reserved token; any thread holding a clone of `tx` calls
/// [`wake`] to interrupt a blocking poll.
pub fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// Pokes the waker's write half. Failures are ignored: the loop also
/// wakes on its next timeout, so a wake is an optimization, never a
/// correctness requirement.
pub fn wake(tx: &TcpStream) {
    let _ = (&mut &*tx).write(&[1u8]);
}

/// Drains every pending wake byte from the waker's read half.
pub fn drain_wakes(rx: &TcpStream) {
    let mut sink = [0u8; 64];
    while matches!((&mut &*rx).read(&mut sink), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn readable_event_surfaces_with_its_token() {
        let poller = Poller::new().unwrap();
        let (tx, rx) = wake_pair().unwrap();
        poller.register(fd_of(&rx), 42, true, false).unwrap();
        // Nothing written yet: a short poll may time out (Linux) or spin
        // (fallback); either way no *data* is readable on Linux.
        wake(&tx);
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(
            events.iter().any(|e| e.token == 42 && e.readable),
            "expected readable token 42, got {events:?}"
        );
        drain_wakes(&rx);
        poller.deregister(fd_of(&rx), 42).unwrap();
    }

    #[test]
    fn writable_interest_and_reregister() {
        let poller = Poller::new().unwrap();
        let (tx, _rx) = wake_pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        // A fresh socket with empty send buffer is immediately writable.
        poller.register(fd_of(&tx), 7, false, true).unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        // Flip interest to read-only: no further writable-only events on
        // Linux (the fallback may still report per its stored interests).
        poller.reregister(fd_of(&tx), 7, true, false).unwrap();
        poller.deregister(fd_of(&tx), 7).unwrap();
    }

    #[test]
    fn empty_poll_times_out_quickly() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
