//! HTTP/1.1 request parsing and response writing over raw streams.
//!
//! Deliberately small: one request per connection (`Connection: close`),
//! bodies require `Content-Length` (no chunked encoding), and hard limits
//! bound header and body sizes so a misbehaving client cannot balloon a
//! worker. This is all the protocol surface the serving API needs, with
//! zero dependencies.

use std::io::{self, BufRead, Write};

/// Maximum accepted request-line + header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request-body bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw query string (text after `?`, without the `?`); empty when the
    /// URI had none.
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client opted into connection reuse with an explicit
    /// `connection: keep-alive` header. Deliberately opt-in (HTTP/1.1
    /// defaults to persistent, but this server historically closed every
    /// connection): clients that do not send the header keep the exact
    /// one-request-per-connection behavior they were built against.
    #[must_use]
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.split(',')
                .any(|t| t.trim().eq_ignore_ascii_case("keep-alive"))
        })
    }

    /// First value of a query parameter (`?format=prometheus` →
    /// `query_param("format") == Some("prometheus")`). A bare key with no
    /// `=` yields an empty value. No percent-decoding — the parameters the
    /// API accepts are plain tokens.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key && !k.is_empty()).then_some(v)
        })
    }
}

/// A request that could not be parsed; maps to a 4xx response.
#[derive(Debug)]
pub struct BadRequest(pub String);

/// Outcome of reading one request from a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Ok(Request),
    /// The client sent something unparseable; respond 400 and close.
    Bad(BadRequest),
    /// The connection closed (or timed out) before a request arrived.
    Closed,
}

fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                if *budget == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "request head too large",
                    ));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads and parses one request.
///
/// # Errors
/// Underlying IO failures (including read timeouts) are returned as
/// `Err`; protocol problems come back as [`ReadOutcome::Bad`].
pub fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut budget) {
        Ok(Some(l)) if !l.is_empty() => l,
        Ok(_) => return Ok(ReadOutcome::Closed),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Ok(ReadOutcome::Bad(BadRequest(e.to_string())))
        }
        Err(e) => return Err(e),
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(uri), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Bad(BadRequest(format!(
            "malformed request line: {request_line:?}"
        ))));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Bad(BadRequest(format!(
            "unsupported protocol {version}"
        ))));
    }
    let (path, query) = match uri.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (uri.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        match read_line(reader, &mut budget) {
            Ok(Some(l)) if l.is_empty() => break,
            Ok(Some(l)) => {
                let Some((name, value)) = l.split_once(':') else {
                    return Ok(ReadOutcome::Bad(BadRequest(format!(
                        "malformed header {l:?}"
                    ))));
                };
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            Ok(None) => return Ok(ReadOutcome::Closed),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(ReadOutcome::Bad(BadRequest(e.to_string())))
            }
            Err(e) => return Err(e),
        }
    }

    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = request.header("content-length") {
        let Ok(len) = len.parse::<usize>() else {
            return Ok(ReadOutcome::Bad(BadRequest(format!(
                "bad content-length {len:?}"
            ))));
        };
        if len > MAX_BODY_BYTES {
            return Ok(ReadOutcome::Bad(BadRequest(format!(
                "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            ))));
        }
        let mut body = vec![0u8; len];
        if let Err(e) = io::Read::read_exact(reader, &mut body) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                return Ok(ReadOutcome::Bad(BadRequest(
                    "body shorter than content-length".into(),
                )));
            }
            return Err(e);
        }
        request.body = body;
    }
    Ok(ReadOutcome::Ok(request))
}

/// Outcome of an incremental parse attempt over a connection's buffered
/// bytes (the event loop's non-blocking read path).
#[derive(Debug)]
pub enum Parsed {
    /// Not enough bytes buffered yet — keep reading.
    Partial,
    /// One complete request; the first `consumed` buffered bytes belong
    /// to it (the remainder is the start of a pipelined next request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The buffered bytes can never become a valid request; respond 400
    /// and close.
    Bad(BadRequest),
}

/// Attempts to parse one request from buffered bytes without consuming
/// them: the caller drains `consumed` bytes on [`Parsed::Complete`].
/// Produces the same requests — and the same error strings — as the
/// blocking [`read_request`], but never blocks: missing bytes yield
/// [`Parsed::Partial`].
#[must_use]
pub fn try_parse(buf: &[u8]) -> Parsed {
    // Tolerate empty lines before the request line, as RFC 9112 suggests;
    // robust against clients that end the previous request's body with a
    // stray CRLF. Skipped prelude bytes still count against
    // `MAX_HEAD_BYTES` (the size checks below use absolute offsets): a
    // client streaming nothing but CRLFs hits the head limit instead of
    // staying `Partial` while the caller's buffer grows without bound.
    let mut start = 0;
    while buf[start..].starts_with(b"\r\n") {
        start += 2;
    }
    while buf[start..].starts_with(b"\n") {
        start += 1;
    }
    // Find the end of the head: the first empty line.
    let mut lines: Vec<&[u8]> = Vec::new();
    let mut head_end = None;
    let mut line_start = start;
    for (i, &b) in buf.iter().enumerate().skip(start) {
        if b != b'\n' {
            continue;
        }
        let mut line = &buf[line_start..i];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        line_start = i + 1;
        if line.is_empty() {
            head_end = Some(i + 1);
            break;
        }
        lines.push(line);
    }
    let Some(head_end) = head_end else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parsed::Bad(BadRequest("request head too large".into()));
        }
        return Parsed::Partial;
    };
    if head_end > MAX_HEAD_BYTES {
        return Parsed::Bad(BadRequest("request head too large".into()));
    }
    let Some((request_line, header_lines)) = lines.split_first() else {
        return Parsed::Bad(BadRequest("malformed request line: \"\"".into()));
    };
    let request_line = String::from_utf8_lossy(request_line).into_owned();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(uri), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parsed::Bad(BadRequest(format!(
            "malformed request line: {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Parsed::Bad(BadRequest(format!("unsupported protocol {version}")));
    }
    let (path, query) = match uri.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (uri.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for raw in header_lines {
        let l = String::from_utf8_lossy(raw);
        let Some((name, value)) = l.split_once(':') else {
            return Parsed::Bad(BadRequest(format!("malformed header {l:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    let mut consumed = head_end;
    if let Some(len) = request.header("content-length") {
        let Ok(len) = len.parse::<usize>() else {
            return Parsed::Bad(BadRequest(format!("bad content-length {len:?}")));
        };
        if len > MAX_BODY_BYTES {
            return Parsed::Bad(BadRequest(format!(
                "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        if buf.len() - head_end < len {
            return Parsed::Partial;
        }
        request.body = buf[head_end..head_end + len].to_vec();
        consumed = head_end + len;
    }
    Parsed::Complete { request, consumed }
}

/// Standard reason phrase for the status codes the server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with caller-supplied extra headers (e.g.
/// `Retry-After` on a 503) and an explicit connection disposition:
/// `keep_alive` echoes `connection: keep-alive` (the server will read
/// another request off this stream), otherwise `connection: close`.
/// Bodies are always `content-length`-framed, so keep-alive responses
/// are self-delimiting.
///
/// # Errors
/// IO failures on the stream.
pub fn write_response_with_options(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes a complete `Connection: close` response with caller-supplied
/// extra headers (e.g. `Retry-After` on a 503).
///
/// # Errors
/// IO failures on the stream.
pub fn write_response_with_headers(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write_response_with_options(writer, status, content_type, extra_headers, body, false)
}

/// Writes a complete `Connection: close` response.
///
/// # Errors
/// IO failures on the stream.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with_headers(writer, status, content_type, &[], body)
}

/// Writes a JSON response.
///
/// # Errors
/// IO failures on the stream.
pub fn write_json(writer: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_response(writer, status, "application/json", body.as_bytes())
}

/// Writes a JSON response with extra headers.
///
/// # Errors
/// IO failures on the stream.
pub fn write_json_with_headers(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    write_response_with_headers(
        writer,
        status,
        "application/json",
        extra_headers,
        body.as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_ok(raw: &str) -> Request {
        match read_request(&mut BufReader::new(raw.as_bytes())).unwrap() {
            ReadOutcome::Ok(r) => r,
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_headers() {
        let r = parse_ok("GET /healthz?probe=1 HTTP/1.1\r\nHost: x\r\nX-Trace: 7\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.query, "probe=1");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("X-TRACE"), Some("7"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn query_params_parse() {
        let r = parse_ok("GET /metrics?format=prometheus&debug HTTP/1.1\r\n\r\n");
        assert_eq!(r.query_param("format"), Some("prometheus"));
        assert_eq!(r.query_param("debug"), Some(""));
        assert_eq!(r.query_param("missing"), None);
        let bare = parse_ok("GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(bare.query, "");
        assert_eq!(bare.query_param("format"), None);
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r = parse_ok(
            "POST /v1/align/topk HTTP/1.1\r\ncontent-length: 11\r\n\r\n{\"nodes\":1}extra-ignored",
        );
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"nodes\":1}");
    }

    #[test]
    fn eof_before_request_is_closed_not_error() {
        assert!(matches!(
            read_request(&mut BufReader::new(&b""[..])).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn malformed_inputs_are_bad_requests() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/9\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\ncontent-length: 99\r\n\r\nshort",
        ] {
            let outcome = read_request(&mut BufReader::new(raw.as_bytes())).unwrap();
            assert!(matches!(outcome, ReadOutcome::Bad(_)), "accepted {raw:?}");
        }
    }

    #[test]
    fn oversized_head_and_body_rejected() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            read_request(&mut BufReader::new(huge_header.as_bytes())).unwrap(),
            ReadOutcome::Bad(_)
        ));
        let huge_body = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(&mut BufReader::new(huge_body.as_bytes())).unwrap(),
            ReadOutcome::Bad(_)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_json(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn response_with_extra_headers() {
        let mut out = Vec::new();
        write_json_with_headers(&mut out, 503, &[("retry-after", "2".to_string())], "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        // Extra headers stay inside the head, before the blank line.
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("retry-after"));
    }

    #[test]
    fn keep_alive_negotiation_and_wire_format() {
        let r = parse_ok("POST /x HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(r.wants_keep_alive());
        let r = parse_ok("POST /x HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(!r.wants_keep_alive());
        let r = parse_ok("POST /x HTTP/1.1\r\n\r\n");
        assert!(!r.wants_keep_alive(), "reuse must be opt-in");
        let mut out = Vec::new();
        write_response_with_options(&mut out, 200, "application/json", &[], b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
    }

    #[test]
    fn try_parse_incremental_byte_by_byte() {
        // Feed a complete request one byte at a time: every prefix must be
        // Partial, the full buffer Complete with exact consumption, and
        // trailing pipelined bytes must be left alone.
        let raw = b"POST /v1/align/topk HTTP/1.1\r\ncontent-length: 11\r\nX-Trace: 7\r\n\r\n{\"nodes\":1}";
        for cut in 0..raw.len() {
            assert!(
                matches!(try_parse(&raw[..cut]), Parsed::Partial),
                "prefix of {cut} bytes should be Partial"
            );
        }
        let mut with_tail = raw.to_vec();
        with_tail.extend_from_slice(b"GET /healthz");
        match try_parse(&with_tail) {
            Parsed::Complete { request, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/v1/align/topk");
                assert_eq!(request.header("x-trace"), Some("7"));
                assert_eq!(request.body, b"{\"nodes\":1}");
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn try_parse_matches_blocking_reader() {
        let raw = "GET /metrics?format=prometheus HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let incremental = match try_parse(raw.as_bytes()) {
            Parsed::Complete { request, consumed } => {
                assert_eq!(consumed, raw.len());
                request
            }
            other => panic!("expected Complete, got {other:?}"),
        };
        let blocking = parse_ok(raw);
        assert_eq!(incremental.method, blocking.method);
        assert_eq!(incremental.path, blocking.path);
        assert_eq!(incremental.query, blocking.query);
        assert_eq!(incremental.headers, blocking.headers);
        assert!(incremental.wants_keep_alive());
        // Leading CRLFs (stray bytes after a previous body) are skipped.
        let padded = format!("\r\n\r\n{raw}");
        match try_parse(padded.as_bytes()) {
            Parsed::Complete { consumed, .. } => assert_eq!(consumed, padded.len()),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn try_parse_rejects_what_the_blocking_reader_rejects() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/9\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        ] {
            assert!(
                matches!(try_parse(raw), Parsed::Bad(_)),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
        // An unterminated head stays Partial until it exceeds the limit.
        let flood = vec![b'a'; MAX_HEAD_BYTES + 2];
        assert!(matches!(try_parse(&flood), Parsed::Bad(_)));
        let body_bomb = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(try_parse(body_bomb.as_bytes()), Parsed::Bad(_)));
        // A declared-but-unsent body is Partial (more bytes may come),
        // unlike the blocking reader where EOF makes it Bad.
        assert!(matches!(
            try_parse(b"POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nab"),
            Parsed::Partial
        ));
    }

    #[test]
    fn crlf_prelude_counts_against_the_head_limit() {
        // A client streaming nothing but blank lines must hit the head
        // limit — staying Partial forever would let the caller's buffer
        // grow without bound.
        let flood = b"\r\n".repeat(MAX_HEAD_BYTES / 2 + 1);
        assert!(matches!(try_parse(&flood), Parsed::Bad(_)));
        let lf_flood = vec![b'\n'; MAX_HEAD_BYTES + 1];
        assert!(matches!(try_parse(&lf_flood), Parsed::Bad(_)));
        // A modest prelude before a real request still parses, consuming
        // the blank lines along with the head.
        let padded = format!("{}GET / HTTP/1.1\r\n\r\n", "\r\n".repeat(8));
        match try_parse(padded.as_bytes()) {
            Parsed::Complete { consumed, request } => {
                assert_eq!(consumed, padded.len());
                assert_eq!(request.path, "/");
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 408, 500, 503] {
            assert_ne!(reason(code), "Unknown");
        }
        assert_eq!(reason(999), "Unknown");
    }
}
