//! A minimal JSON parser and writer for the HTTP API.
//!
//! The serving crate is std-only by design (the workspace's `serde_json`
//! would drag `serde` into the server's dependency cone), and its API
//! surface is small: flat request objects with number arrays. This module
//! implements exactly RFC 8259 parsing — objects, arrays, strings with
//! escapes, numbers, booleans, null — with a recursion-depth limit, plus
//! the two encoding helpers responses need.

use std::fmt;

/// A parsed JSON value. Object keys keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a number holding one
    /// exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&v) {
            Some(v as usize)
        } else {
            None
        }
    }

    /// String value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members in document order, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
/// [`JsonError`] with the byte position of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` on f64 is shortest-round-trip; integers print bare, which
        // is still valid JSON.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shape() {
        let v = parse(r#"{"nodes": [0, 3, 12], "k": 5, "theta": [0.2, 0.3, 0.5]}"#).unwrap();
        let nodes: Vec<usize> = v
            .get("nodes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|n| n.as_usize().unwrap())
            .collect();
        assert_eq!(nodes, vec![0, 3, 12]);
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(5));
        assert_eq!(
            v.get("theta").and_then(Json::as_arr).unwrap()[2].as_f64(),
            Some(0.5)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\"").unwrap(), Json::Str("a".into()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        let nested = parse(r#"{"a": {"b": [1, {"c": null}]}}"#).unwrap();
        assert_eq!(
            nested.get("a").unwrap().get("b").unwrap().as_arr().unwrap()[0],
            Json::Num(1.0)
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""line\nquote\"tab\tslash\\u: é 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nquote\"tab\tslash\\u: é 😀");
        let escaped = escape("a\"b\\c\nd\u{1}");
        assert_eq!(escaped, "a\\\"b\\\\c\\nd\\u0001");
        // Escaped text parses back to the original.
        let back = parse(&format!("\"{escaped}\"")).unwrap();
        assert_eq!(back.as_str().unwrap(), "a\"b\\c\nd\u{1}");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "1 2",
            "\"unterminated",
            "\"bad\\q\"",
            "[1]]",
            "nul",
            "--1",
            "1.",
            "1e",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"));
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(parse("1e3").unwrap().as_usize(), Some(1000));
    }

    #[test]
    fn fmt_f64_valid_json() {
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Round-trips through the parser.
        assert_eq!(parse(&fmt_f64(0.1)).unwrap(), Json::Num(0.1));
    }
}
