//! # galign-serve
//!
//! The online half of the GAlign suite's train-once / align-many story.
//! The batch pipeline (`galign`) trains multi-order embeddings and
//! matches once; this crate persists that trained state as a compact
//! binary artifact and answers top-k alignment queries over HTTP from it:
//!
//! * [`artifact`] — a versioned, FNV-1a-checksummed binary format for
//!   θ-weighted multi-order embedding pairs (~8x smaller than the JSON in
//!   `galign::persist`, validated byte-for-byte at load time). Version 4
//!   adds an optional quantized section ([`artifact::QuantSection`],
//!   int8 or f16 panels from `galign-quant`): as a *sidecar* it rides
//!   along for scan acceleration, as the *primary* encoding it replaces
//!   the f64 blocks entirely (≥3.5× smaller files) and the f64 rows are
//!   reconstructed deterministically at load;
//! * [`topk`] — query validation over the *shared* blocked scoring engine
//!   (`galign_matrix::simblock`): row-normalized dot-product scoring over
//!   the θ-weighted layers with heap-based partial selection, parallel
//!   across the queries of a batch. This crate carries no private scoring
//!   kernel — serving and the batch pipeline score through the same code.
//!   An optional `galign-index` ANN index (HNSW or IVF over the
//!   concatenated target rows) makes queries sublinear: requests pick an
//!   engine per query (`exact | ann | auto`), ANN candidates are exactly
//!   re-ranked through `select_topk` (so scores stay bit-identical to the
//!   exact engine's), and low-confidence candidate sets fall back to the
//!   full scan. When the artifact carries quantized panels, a per-request
//!   `quant` field (`off | int8 | f16`) routes the first-pass scan over
//!   them — int8/f16 shortlisting with a certified error margin, then
//!   exact f64 re-rank, so responses stay byte-identical to f64 scans;
//! * [`cache`] — a sharded in-memory LRU keyed on `(node, k, θ)`;
//! * [`api`] — the typed wire schema shared by server, client, router
//!   and loadtest: [`api::TopkRequest`], [`api::BatchRequest`] (the
//!   `POST /v2/align/topk` envelope), [`api::TopkResponse`] and the
//!   error body, with byte-exact render/parse round-trips;
//! * [`server`] — a std-only HTTP/1.1 server built on a single-threaded
//!   readiness event loop ([`evloop`]: raw epoll on Linux, a portable
//!   fallback elsewhere) with non-blocking accept/read/write
//!   state machines, so slow clients cost an entry in a map rather than
//!   a thread. Top-k queries coalesce: concurrent requests wait up to a
//!   bounded batch window and execute as one grouped query-block ×
//!   node-panel GEMM on a worker pool, bit-identical to sequential
//!   scoring. Overload protection (a bounded job queue that sheds excess
//!   load with `503` + `Retry-After`, plus a cooperative per-request
//!   compute deadline), keep-alive connection reuse (with pipelining),
//!   graceful shutdown, and hot artifact swap (admin endpoint or
//!   generation-pointer file; in-flight requests are pinned to the
//!   generation they started on), instrumented through
//!   `galign-telemetry`. Artifacts carrying a shard manifest (see
//!   [`artifact::ShardManifest`]) serve a contiguous slice of the target
//!   network and advertise it on `/healthz` for `galign-router`'s
//!   scatter-gather tier;
//! * [`client`] — a std-only HTTP client with retry, exponential backoff
//!   and jitter that honors `Retry-After`, plus per-target keep-alive
//!   connection pooling, used by the loadtest example and the router;
//! * [`http`] / [`json`] — the dependency-free protocol plumbing.
//!
//! The HTTP/protocol layers remain dependency-free std code; scoring
//! depends on `galign-matrix`, whose rayon pool fans query batches out
//! across cores.
//!
//! ```
//! use galign_serve::artifact::{Artifact, Mat};
//! use galign_serve::server::{ServeConfig, Server};
//! use galign_serve::topk::TopkIndex;
//!
//! // A toy artifact: one layer, identical 3-node networks.
//! let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.6, 0.8]).unwrap();
//! let artifact = Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap();
//!
//! // Bit-exact binary round-trip.
//! let reloaded = Artifact::from_bytes(&artifact.to_bytes()).unwrap();
//! assert_eq!(artifact, reloaded);
//!
//! // Query it directly ...
//! let index = TopkIndex::from_artifact(reloaded);
//! let hits = index.topk(0, 2, None).unwrap();
//! assert_eq!(hits[0].target, 0);
//!
//! // ... or over HTTP.
//! let server = Server::bind("127.0.0.1:0", index, ServeConfig::default()).unwrap();
//! let handle = server.spawn();
//! handle.shutdown().unwrap();
//! ```

pub mod api;
pub mod artifact;
mod batch;
pub mod cache;
pub mod client;
pub mod evloop;
pub mod http;
pub mod json;
pub mod server;
pub mod testutil;
pub mod topk;

pub use api::{BatchRequest, TopkRequest, TopkResponse};
pub use artifact::{Artifact, Mat, QuantSection, ShardManifest};
pub use cache::{LruCache, QueryKey, ShardedCache};
pub use client::{Client, ClientConfig, PoolStats};
pub use server::{
    ServeConfig, Server, ServerConfig, ServerConfigBuilder, ServerHandle, GENERATION_HEADER,
};
pub use topk::{EngineMode, EngineUsed, Hit, QuantMode, QueryError, TopkIndex};
