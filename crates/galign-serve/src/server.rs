//! The alignment query server: a bounded worker pool over a
//! `TcpListener`, routing to the top-k kernel through the sharded cache,
//! instrumented with `galign-telemetry` counters and latency histograms.
//!
//! ## Endpoints
//!
//! | method | path                 | purpose                                |
//! |--------|----------------------|----------------------------------------|
//! | POST   | `/v1/align/topk`     | top-k alignment query (JSON body)      |
//! | GET    | `/healthz`           | liveness + artifact shape              |
//! | GET    | `/metrics`           | telemetry snapshot as JSON; add        |
//! |        |                      | `?format=prometheus` for exposition    |
//! | GET    | `/v1/debug/requests` | flight recorder (recent + slowest)     |
//! | POST   | `/v1/admin/shutdown` | graceful shutdown (SIGTERM-equivalent) |
//! | POST   | `/v1/admin/swap`     | hot-swap the serving artifact          |
//!
//! ## Hot artifact swap
//!
//! The serving index lives behind a generation slot: each request clones
//! one `Arc<Generation>` up front and uses it end to end, so a swap
//! arriving mid-request never mixes old and new data — in-flight requests
//! finish on the generation they started with and report it in the
//! `x-galign-generation` response header. Swaps arrive two ways: `POST
//! /v1/admin/swap` with `{"artifact": "/path"}`, or a *generation pointer
//! file* ([`ServeConfig::generation_pointer`]) whose content names the
//! current artifact path; a watcher thread polls it and swaps when the
//! content changes (writers should update it atomically via
//! write-temp-then-rename). Every swap clears the top-k cache — cached
//! hits must never outlive the artifact that produced them. A shard node
//! (artifact with a shard manifest) refuses a swap that would change its
//! id-range identity: replacing the *data* of shard 2/4 is routine,
//! silently becoming a different shard is corruption.
//!
//! ## Connection reuse
//!
//! A client sending `connection: keep-alive` may issue sequential
//! requests on one socket. The worker only lingers on an idle connection
//! while no other connection is waiting for a worker
//! ([`Inner::pending`] is zero) and at most
//! [`ServeConfig::keep_alive_idle`] — under contention the server closes
//! after responding and behaves exactly like the historical
//! one-request-per-connection server, so keep-alive can starve nobody.
//! Idle timeouts close the socket silently (writing an unsolicited `408`
//! onto a pooled connection could be mistaken for the response to the
//! *next* request).
//!
//! ## Tracing
//!
//! Every request is handled under a [`TraceContext`]: the server honors an
//! inbound `x-galign-trace-id` header (32 hex digits; unusable values get
//! a fresh id) and echoes the resolved id back on **every** response, so a
//! client can correlate its attempt with the server's access log, span
//! JSONL and flight recorder. Handler stages (`parse`, `cache_lookup`,
//! `engine_select`, `ann_search`, `exact_rerank`, `serialize`) record
//! timed span events against the id; completed traces land in the global
//! flight recorder and, when [`ServeConfig::access_log`] is set, as one
//! JSONL access-log line per request.
//!
//! Query body:
//! `{"nodes": [0, 3], "k": 5, "theta": [0.2, 0.3, 0.5], "mode": "auto"}` —
//! `k`, `theta` and `mode` optional. `mode` picks the scoring engine
//! (`exact | ann | auto`, default from [`ServeConfig::default_mode`]); the
//! response reports the routing decision in its top-level `"engine"` field.
//! Response: one `{"node", "matches": [{"target", "score"}]}` entry per
//! queried node, best match first.
//!
//! ## Shutdown
//!
//! `POST /v1/admin/shutdown` (or [`ServerHandle::shutdown`]) flips an
//! atomic flag and nudges the acceptor awake with a loopback connection;
//! the acceptor stops taking connections, the request channel drains, and
//! every worker joins before [`Server::run`] returns — in-flight requests
//! finish, new ones are refused.

use crate::cache::{QueryKey, ShardedCache};
use crate::http::{self, ReadOutcome, Request};
use crate::json;
use crate::topk::{EngineMode, TopkIndex};
use galign_telemetry::context::{self, TraceContext, TraceId};
use galign_telemetry::flight::{self, FlightRecorder, RecordKind, TraceRecord};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Trace-id header honored on requests and echoed on responses.
pub const TRACE_HEADER: &str = "x-galign-trace-id";

/// Response header reporting the artifact generation a request was served
/// from. Starts at 1 for the artifact the server booted with and bumps on
/// every hot swap; a request spanning a swap reports the generation it
/// actually used.
pub const GENERATION_HEADER: &str = "x-galign-generation";

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Per-request socket read/write timeout.
    pub request_timeout: Duration,
    /// Total top-k cache entries across shards (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// `k` used when a query omits it.
    pub default_k: usize,
    /// Largest accepted `k` (bounds per-request work and cache entry size).
    pub max_k: usize,
    /// Bound on connections waiting for a free worker; anything beyond is
    /// shed with `503` + `Retry-After` instead of queueing unboundedly.
    pub queue_depth: usize,
    /// Wall-clock deadline for handling one request, enforced
    /// cooperatively *inside* the top-k handler (socket timeouts cannot
    /// bound compute time); exceeding it returns `503`.
    pub deadline: Duration,
    /// `Retry-After` value (seconds) attached to every shed/deadline 503.
    pub retry_after_secs: u64,
    /// Engine used when a query omits `mode` (`auto` routes to ANN only
    /// when an index is attached and the target network is at least
    /// `ann_threshold` nodes).
    pub default_mode: EngineMode,
    /// Overrides the index's `auto` switchover point when set.
    pub ann_threshold: Option<usize>,
    /// Flight-recorder ring capacity (completed traces retained for
    /// `GET /v1/debug/requests`). Applied to the process-global recorder
    /// on bind; first configurator wins.
    pub flight_recorder_size: usize,
    /// Slowest-K reservoir size of the flight recorder.
    pub flight_slowest_k: usize,
    /// When set, every request appends one JSONL access-log line here
    /// (trace id, route, engine, cache counts, deadline remaining,
    /// status, µs latency).
    pub access_log: Option<PathBuf>,
    /// When set, the flight recorder is dumped here as JSONL on graceful
    /// shutdown.
    pub flight_dump: Option<PathBuf>,
    /// Generation pointer file: when set, a watcher thread polls it and
    /// hot-swaps the serving artifact to the path the file names whenever
    /// its content changes. The content present at startup is treated as
    /// already applied.
    pub generation_pointer: Option<PathBuf>,
    /// How often the generation pointer is polled.
    pub generation_poll: Duration,
    /// How long a worker lingers on an idle keep-alive connection waiting
    /// for the next request — and only while no other connection is
    /// queued for a worker.
    pub keep_alive_idle: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            request_timeout: Duration::from_secs(10),
            cache_capacity: 4096,
            cache_shards: 16,
            default_k: 10,
            max_k: 1000,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            default_mode: EngineMode::Auto,
            ann_threshold: None,
            flight_recorder_size: flight::DEFAULT_CAPACITY,
            flight_slowest_k: flight::DEFAULT_SLOWEST_K,
            access_log: None,
            flight_dump: None,
            generation_pointer: None,
            generation_poll: Duration::from_millis(200),
            keep_alive_idle: Duration::from_millis(250),
        }
    }
}

/// One immutable serving generation: the index plus its sequence number.
/// Requests clone the `Arc` once and never observe a mix of generations.
pub struct Generation {
    /// The query index of this generation.
    pub index: TopkIndex,
    /// 1 for the boot artifact, +1 per hot swap.
    pub number: u64,
}

/// Wraps a boot index as generation 1 in its swap slot.
fn generation_slot(index: TopkIndex) -> RwLock<Arc<Generation>> {
    RwLock::new(Arc::new(Generation { index, number: 1 }))
}

struct Inner {
    index: RwLock<Arc<Generation>>,
    cache: ShardedCache,
    cfg: ServeConfig,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    /// Connections accepted but not yet picked up by a worker.
    pending: AtomicU64,
    /// Requests currently being handled by workers.
    in_flight: AtomicU64,
    /// Total connections shed with 503 since startup.
    shed_total: AtomicU64,
    /// Completed-trace ring serving `/v1/debug/requests`.
    flight: &'static FlightRecorder,
    /// Whether the last `/healthz` evaluation reported degraded — the
    /// ok→degraded transition freezes the flight recorder so the traces
    /// *leading up to* the incident survive the incident's retry storm.
    health_degraded: AtomicBool,
    /// JSONL access-log writer, when configured.
    access_log: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
}

impl Inner {
    /// The current serving generation. One cheap clone per request pins
    /// that request to a consistent index while swaps proceed.
    fn generation(&self) -> Arc<Generation> {
        Arc::clone(&self.index.read().expect("generation lock"))
    }
}

/// Installs `index` as the next generation: applies the configured `auto`
/// threshold, swaps the slot, clears the top-k cache (cached hits must
/// never outlive their artifact) and returns the new generation number.
fn install_index(inner: &Inner, mut index: TopkIndex) -> u64 {
    if let Some(threshold) = inner.cfg.ann_threshold {
        index.set_auto_threshold(threshold);
    }
    let number = {
        let mut slot = inner.index.write().expect("generation lock");
        let number = slot.number + 1;
        *slot = Arc::new(Generation { index, number });
        number
    };
    inner.cache.clear();
    galign_telemetry::counter_add("serve.swap.total", 1);
    galign_telemetry::gauge_set("serve.generation", number as f64);
    flight::record_incident(
        "serve.generation.swapped",
        vec![("generation".to_string(), number.to_string())],
    );
    number
}

/// Validates that `next` keeps the shard identity of `current`: a shard
/// node may receive new *data* for its slice, never a different slice.
fn shard_identity_ok(current: &TopkIndex, next: &TopkIndex) -> Result<(), String> {
    match (current.shard_manifest(), next.shard_manifest()) {
        (None, None) => Ok(()),
        (Some(a), Some(b))
            if (a.shard_id, a.num_shards, a.start, a.end)
                == (b.shard_id, b.num_shards, b.start, b.end) =>
        {
            Ok(())
        }
        _ => Err("artifact would change this node's shard identity (id range)".to_string()),
    }
}

/// Decrements a load counter when the tracked scope ends, whatever exit
/// path it takes.
struct CounterGuard<'a>(&'a AtomicU64);

impl Drop for CounterGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    inner: Arc<Inner>,
    listener: TcpListener,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    join: JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, port 0 for ephemeral) and
    /// prepares the query index. Also enables telemetry metrics — a
    /// server wants its `/metrics` endpoint live.
    ///
    /// # Errors
    /// Bind failures.
    pub fn bind(addr: &str, mut index: TopkIndex, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        galign_telemetry::set_metrics_enabled(true);
        if let Some(threshold) = cfg.ann_threshold {
            index.set_auto_threshold(threshold);
        }
        flight::configure(cfg.flight_recorder_size, cfg.flight_slowest_k);
        let access_log = match &cfg.access_log {
            Some(path) => Some(Mutex::new(std::io::BufWriter::new(std::fs::File::create(
                path,
            )?))),
            None => None,
        };
        galign_telemetry::info!(
            "serve",
            "listening on {local} ({} source x {} target nodes, {} layers, {} workers, engine {} / ann index: {})",
            index.source_nodes(),
            index.target_nodes(),
            index.num_layers(),
            cfg.workers.max(1),
            cfg.default_mode,
            index
                .ann_backend()
                .map_or("none", galign_index::Backend::name),
        );
        Ok(Server {
            inner: Arc::new(Inner {
                cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
                index: generation_slot(index),
                cfg,
                addr: local,
                shutting_down: AtomicBool::new(false),
                pending: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                shed_total: AtomicU64::new(0),
                flight: flight::global(),
                health_degraded: AtomicBool::new(false),
                access_log,
            }),
            listener,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Runs the accept loop on the calling thread until graceful
    /// shutdown; all workers have joined when this returns.
    ///
    /// # Errors
    /// Fatal listener failures (per-connection errors are absorbed).
    pub fn run(self) -> io::Result<()> {
        let workers = self.inner.cfg.workers.max(1);
        let queue_depth = self.inner.cfg.queue_depth.max(1);
        let watcher = self.inner.cfg.generation_pointer.clone().map(|pointer| {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || watch_generation_pointer(&inner, &pointer))
        });
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let inner = Arc::clone(&self.inner);
            pool.push(std::thread::spawn(move || loop {
                let stream = rx.lock().expect("worker queue lock").recv();
                match stream {
                    Ok(stream) => {
                        inner.pending.fetch_sub(1, Ordering::Relaxed);
                        handle_connection(&inner, stream);
                    }
                    Err(_) => break, // acceptor dropped the sender: shutdown
                }
            }));
        }
        for stream in self.listener.incoming() {
            if self.inner.shutting_down.load(Ordering::SeqCst) {
                break; // the waking connection (if any) is dropped unserved
            }
            match stream {
                Ok(stream) => {
                    // Load shedding: never block the acceptor on a full
                    // queue — tell the client to back off and come back.
                    // The increment happens *before* try_send: a worker
                    // may pop the stream (and decrement) the instant the
                    // send lands, and incrementing afterwards would let
                    // the counter underflow to u64::MAX, which /healthz
                    // would read as a saturated queue.
                    self.inner.pending.fetch_add(1, Ordering::Relaxed);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(stream)) => {
                            self.inner.pending.fetch_sub(1, Ordering::Relaxed);
                            shed(&self.inner, &stream);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            self.inner.pending.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                Err(e) => {
                    galign_telemetry::debug!("serve", "accept error: {e}");
                }
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        if let Some(watcher) = watcher {
            let _ = watcher.join();
        }
        if let Some(path) = &self.inner.cfg.flight_dump {
            match std::fs::File::create(path) {
                Ok(file) => {
                    let mut w = std::io::BufWriter::new(file);
                    if let Err(e) = self.inner.flight.dump_jsonl(&mut w) {
                        galign_telemetry::info!("serve", "flight-recorder dump failed: {e}");
                    } else {
                        galign_telemetry::info!(
                            "serve",
                            "flight recorder dumped to {}",
                            path.display()
                        );
                    }
                }
                Err(e) => {
                    galign_telemetry::info!(
                        "serve",
                        "cannot create flight dump {}: {e}",
                        path.display()
                    );
                }
            }
        }
        if let Some(log) = &self.inner.access_log {
            let _ = log.lock().expect("access log lock").flush();
        }
        galign_telemetry::info!("serve", "shut down cleanly");
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle for
    /// tests and embedders.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let inner = Arc::clone(&self.inner);
        let addr = self.local_addr();
        let join = std::thread::spawn(move || self.run());
        ServerHandle { inner, addr, join }
    }
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown and waits for the accept loop and all
    /// workers to finish.
    ///
    /// # Errors
    /// The run loop's error, if it failed.
    ///
    /// # Panics
    /// If the server thread panicked.
    pub fn shutdown(self) -> io::Result<()> {
        begin_shutdown(&self.inner);
        self.join.join().expect("server thread panicked")
    }
}

/// Loads the artifact at `path` and installs it as the next generation,
/// refusing artifacts that would change a shard node's identity.
fn swap_from_path(inner: &Inner, path: &str) -> Result<u64, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let artifact =
        crate::artifact::Artifact::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let next = TopkIndex::from_artifact(artifact);
    shard_identity_ok(&inner.generation().index, &next)?;
    Ok(install_index(inner, next))
}

/// Polls the generation pointer file until shutdown, hot-swapping to the
/// artifact it names whenever its content changes. A failed swap is
/// logged and counted, and that content is remembered so a broken pointer
/// does not retry in a hot loop — the next *change* triggers again.
fn watch_generation_pointer(inner: &Inner, pointer: &std::path::Path) {
    let read_pointer = || {
        std::fs::read_to_string(pointer)
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    };
    // Startup content is the artifact the server already booted with.
    let mut seen = read_pointer();
    let mut waited = Duration::ZERO;
    let slice = Duration::from_millis(25);
    while !inner.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        waited += slice;
        if waited < inner.cfg.generation_poll {
            continue;
        }
        waited = Duration::ZERO;
        let Some(content) = read_pointer() else {
            continue;
        };
        if seen.as_ref() == Some(&content) {
            continue;
        }
        match swap_from_path(inner, &content) {
            Ok(number) => {
                galign_telemetry::info!(
                    "serve",
                    "generation pointer swap: {content} is now generation {number}"
                );
            }
            Err(msg) => {
                galign_telemetry::counter_add("serve.swap.errors", 1);
                galign_telemetry::info!("serve", "generation pointer swap failed: {msg}");
            }
        }
        seen = Some(content);
    }
}

/// Flips the shutdown flag and wakes the acceptor.
fn begin_shutdown(inner: &Inner) {
    if !inner.shutting_down.swap(true, Ordering::SeqCst) {
        // A throwaway loopback connection unblocks `accept`.
        let _ = TcpStream::connect_timeout(&inner.addr, Duration::from_secs(1));
    }
}

/// Refuses a connection the queue has no room for: a fast 503 with
/// `Retry-After`, written with a short timeout so a slow client cannot
/// stall the acceptor.
fn shed(inner: &Inner, stream: &TcpStream) {
    inner.shed_total.fetch_add(1, Ordering::Relaxed);
    galign_telemetry::counter_add("serve.http.shed", 1);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut writer = stream;
    let _ = http::write_json_with_headers(
        &mut writer,
        503,
        &[("retry-after", inner.cfg.retry_after_secs.to_string())],
        &error_body("server overloaded, retry later"),
    );
}

/// One routed response: status, content type, body, and which scoring
/// engine produced it (empty for non-query routes).
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
    engine: &'static str,
    /// Generation the reply was computed against (0 = not yet stamped;
    /// `route` stamps every reply, error paths fall back to the current
    /// generation at write time).
    generation: u64,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            engine: "",
            generation: 0,
        }
    }
}

/// What to do with the connection after one request.
enum ConnectionFate {
    KeepAlive,
    Close,
}

fn handle_connection(inner: &Inner, stream: TcpStream) {
    // Responses are written as several small buffers (status line,
    // headers, body); without TCP_NODELAY the tail write can sit behind
    // Nagle waiting on the peer's delayed ACK (~40 ms per request).
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(inner.cfg.request_timeout));
    let mut reader = BufReader::new(&stream);
    let mut served = 0u64;
    loop {
        let _ = stream.set_read_timeout(Some(inner.cfg.request_timeout));
        match serve_one(inner, &stream, &mut reader, served) {
            ConnectionFate::KeepAlive => served += 1,
            ConnectionFate::Close => return,
        }
        // Fairness gate: lingering on an idle keep-alive connection is a
        // luxury for quiet servers. The moment another connection waits
        // for a worker, close and free this one — the client's pool
        // repairs the dropped socket transparently.
        if inner.pending.load(Ordering::Relaxed) > 0 {
            return;
        }
        if reader.buffer().is_empty() {
            // Wait (briefly) for the next request's first byte without
            // starting a read the request parser would then own.
            let idle = inner.cfg.keep_alive_idle.max(Duration::from_millis(1));
            let _ = stream.set_read_timeout(Some(idle));
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(n) if n > 0 => {}
                // Closed (0), idle timeout, or error: close silently. An
                // unsolicited 408 here could be read by the client as the
                // response to its *next* pooled request.
                _ => return,
            }
        }
    }
}

/// Reads and answers one request on an accepted connection. `served`
/// counts requests already answered on this connection (a reused
/// keep-alive socket behaves slightly differently on read timeout).
fn serve_one(
    inner: &Inner,
    stream: &TcpStream,
    reader: &mut BufReader<&TcpStream>,
    served: u64,
) -> ConnectionFate {
    let started = Instant::now();
    inner.in_flight.fetch_add(1, Ordering::Relaxed);
    let _guard = CounterGuard(&inner.in_flight);
    let outcome = http::read_request(reader);
    let mut writer = stream;
    // Every response carries a trace id: the client's (when it sent a
    // usable one) or a fresh assignment. Unparseable requests still get
    // an id so their access-log lines are greppable.
    let (reply, trace, request, keep) = match outcome {
        Ok(ReadOutcome::Ok(request)) => {
            let trace_id = request
                .header(TRACE_HEADER)
                .and_then(TraceId::parse_hex)
                .unwrap_or_else(TraceId::generate);
            let ctx = TraceContext::root(trace_id);
            let reply = {
                let _span_scope = ctx.enter();
                route(inner, &request, started)
            };
            // Keep-alive is honored only while not shutting down — a
            // draining server must not invite follow-up requests.
            let keep = request.wants_keep_alive() && !inner.shutting_down.load(Ordering::SeqCst);
            (reply, ctx, Some(request), keep)
        }
        Ok(ReadOutcome::Bad(bad)) => (
            Reply::json(400, error_body(&bad.0)),
            TraceContext::root(TraceId::generate()),
            None,
            false,
        ),
        Ok(ReadOutcome::Closed) => return ConnectionFate::Close,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            if served > 0 {
                // Idle reused connection: close without writing.
                return ConnectionFate::Close;
            }
            (
                Reply::json(408, error_body("request timed out")),
                TraceContext::root(TraceId::generate()),
                None,
                false,
            )
        }
        Err(e) => {
            galign_telemetry::debug!("serve", "connection error: {e}");
            return ConnectionFate::Close;
        }
    };
    if served > 0 {
        galign_telemetry::counter_add("serve.http.keepalive.reused", 1);
    }
    let trace_id = trace.trace_id();
    let generation = if reply.generation == 0 {
        inner.generation().number
    } else {
        reply.generation
    };
    // Every 503 this server emits means "overloaded, come back later", so
    // they all carry Retry-After.
    let mut extra_headers = vec![
        (TRACE_HEADER, trace_id.to_hex()),
        (GENERATION_HEADER, generation.to_string()),
    ];
    if reply.status == 503 {
        extra_headers.push(("retry-after", inner.cfg.retry_after_secs.to_string()));
    }
    let _ = http::write_response_with_options(
        &mut writer,
        reply.status,
        reply.content_type,
        &extra_headers,
        reply.body.as_bytes(),
        keep,
    );
    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("serve.http.requests", 1);
        galign_telemetry::counter_add(
            match reply.status {
                200 => "serve.http.status.2xx",
                500..=599 => "serve.http.status.5xx",
                _ => "serve.http.status.4xx",
            },
            1,
        );
        galign_telemetry::gauge_set(
            "serve.in_flight",
            inner.in_flight.load(Ordering::Relaxed) as f64,
        );
        galign_telemetry::gauge_set(
            "serve.pending",
            inner.pending.load(Ordering::Relaxed) as f64,
        );
        galign_telemetry::histogram_record(
            "serve.request.ms",
            started.elapsed().as_secs_f64() * 1e3,
        );
    }
    finish_trace(inner, &trace, request.as_ref(), &reply, started);
    if keep {
        ConnectionFate::KeepAlive
    } else {
        ConnectionFate::Close
    }
}

/// Completes a request's observability tail: one flight-recorder entry
/// and (when configured) one access-log JSONL line, both carrying the
/// trace id echoed in the response header.
fn finish_trace(
    inner: &Inner,
    trace: &TraceContext,
    request: Option<&Request>,
    reply: &Reply,
    started: Instant,
) {
    let (events, notes) = trace.take_events();
    let total_us = started.elapsed().as_micros() as u64;
    let (method, path) = match request {
        Some(r) => (r.method.as_str(), r.path.as_str()),
        None => ("-", "-"),
    };
    let deadline_remaining_us = inner
        .cfg
        .deadline
        .saturating_sub(started.elapsed())
        .as_micros() as u64;
    if let Some(log) = &inner.access_log {
        let mut line = format!(
            "{{\"ms\":{},\"trace\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\"engine\":\"{}\",\"us\":{total_us},\"deadline_remaining_us\":{deadline_remaining_us}",
            galign_telemetry::sink::json_f64(galign_telemetry::clock_ms()),
            trace.trace_id(),
            json::escape(method),
            json::escape(path),
            reply.status,
            reply.engine,
        );
        for (key, value) in &notes {
            line.push_str(&format!(",\"{}\":{value}", json::escape(key)));
        }
        line.push('}');
        let mut w = log.lock().expect("access log lock");
        let _ = writeln!(w, "{line}");
    }
    inner.flight.record(TraceRecord {
        trace_id: trace.trace_id(),
        kind: RecordKind::Request,
        name: format!("{method} {path}"),
        status: reply.status,
        engine: reply.engine.to_string(),
        end_ms: galign_telemetry::clock_ms(),
        total_us,
        events,
        notes,
        fields: Vec::new(),
    });
}

fn error_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json::escape(msg))
}

fn route(inner: &Inner, request: &Request, started: Instant) -> Reply {
    // One generation per request: everything below reads `generation`,
    // never the swap slot, so a concurrent hot swap cannot hand a request
    // a mix of old and new data.
    let generation = inner.generation();
    let mut reply = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            galign_telemetry::counter_add("serve.route.healthz", 1);
            Reply::json(200, healthz(inner, &generation))
        }
        ("POST", "/v1/align/topk") => {
            galign_telemetry::counter_add("serve.route.topk", 1);
            topk_route(inner, &generation, &request.body, started)
        }
        ("GET", "/metrics") => {
            galign_telemetry::counter_add("serve.route.metrics", 1);
            // Refresh the load gauges so the snapshot reflects *now*, not
            // the last completed request.
            galign_telemetry::gauge_set(
                "serve.in_flight",
                inner.in_flight.load(Ordering::Relaxed) as f64,
            );
            galign_telemetry::gauge_set(
                "serve.pending",
                inner.pending.load(Ordering::Relaxed) as f64,
            );
            // Index engine state: whether an ANN index is attached and the
            // `auto` switchover point. Candidate-set sizes arrive as the
            // `index.search.candidates` histogram from galign-index.
            galign_telemetry::gauge_set(
                "serve.index.ann_attached",
                if generation.index.has_ann() { 1.0 } else { 0.0 },
            );
            galign_telemetry::gauge_set(
                "serve.index.auto_threshold",
                generation.index.auto_threshold() as f64,
            );
            if request.query_param("format") == Some("prometheus") {
                Reply {
                    status: 200,
                    content_type: galign_telemetry::prom::CONTENT_TYPE,
                    body: galign_telemetry::prom::render(&galign_telemetry::snapshot()),
                    engine: "",
                    generation: 0,
                }
            } else {
                Reply::json(200, galign_telemetry::snapshot_json())
            }
        }
        ("GET", "/v1/debug/requests") => {
            galign_telemetry::counter_add("serve.route.debug_requests", 1);
            Reply::json(200, inner.flight.to_json())
        }
        ("POST", "/v1/admin/shutdown") => {
            galign_telemetry::info!("serve", "shutdown requested via admin endpoint");
            begin_shutdown(inner);
            Reply::json(200, "{\"status\":\"shutting-down\"}".to_string())
        }
        ("POST", "/v1/admin/swap") => {
            galign_telemetry::counter_add("serve.route.swap", 1);
            swap_route(inner, &request.body)
        }
        ("GET" | "HEAD", "/v1/align/topk")
        | ("POST", "/healthz" | "/metrics" | "/v1/debug/requests")
        | ("GET", "/v1/admin/swap" | "/v1/admin/shutdown") => {
            Reply::json(405, error_body("wrong method for this path"))
        }
        _ => Reply::json(404, error_body("no such endpoint")),
    };
    if reply.generation == 0 {
        reply.generation = generation.number;
    }
    reply
}

/// `POST /v1/admin/swap` with `{"artifact": "/path"}`: loads the artifact
/// and installs it as the next generation.
fn swap_route(inner: &Inner, body: &[u8]) -> Reply {
    let parse = || -> Result<String, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        doc.get("artifact")
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| "body needs \"artifact\" (path string)".to_string())
    };
    let path = match parse() {
        Ok(p) => p,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    match swap_from_path(inner, &path) {
        Ok(number) => {
            galign_telemetry::info!("serve", "admin swap: {path} is now generation {number}");
            let mut reply = Reply::json(
                200,
                format!("{{\"status\":\"swapped\",\"generation\":{number}}}"),
            );
            // Stamp the *new* generation: the caller's next query sees it.
            reply.generation = number;
            reply
        }
        Err(msg) => {
            galign_telemetry::counter_add("serve.swap.errors", 1);
            Reply::json(400, error_body(&msg))
        }
    }
}

fn healthz(inner: &Inner, generation: &Generation) -> String {
    let pending = inner.pending.load(Ordering::Relaxed);
    let in_flight = inner.in_flight.load(Ordering::Relaxed);
    let shed_total = inner.shed_total.load(Ordering::Relaxed);
    // Degraded = the pending queue is at least half full: requests are
    // still served but the next burst will start shedding. An absent ANN
    // index is NOT degraded — exact-only serving is a fully correct mode,
    // just linear-time; the `index` field says which it is.
    let degraded = pending.saturating_mul(2) >= inner.cfg.queue_depth.max(1) as u64;
    let status = if degraded { "degraded" } else { "ok" };
    // Health transitions drive the flight recorder: flipping to degraded
    // freezes it (preserving the window of traces that *led into* the
    // incident), recovering thaws it. Both transitions are logged as
    // incidents so the timeline shows when and why the window froze.
    if degraded != inner.health_degraded.swap(degraded, Ordering::AcqRel) {
        if degraded {
            // The incident marker goes in *before* the freeze so it is the
            // newest record inside the preserved window.
            flight::record_incident(
                "serve.health.degraded",
                vec![("pending".to_string(), pending.to_string())],
            );
            if inner.flight.freeze() {
                galign_telemetry::info!(
                    "serve",
                    "health degraded (pending {pending}): flight recorder frozen"
                );
            }
        } else {
            inner.flight.unfreeze();
            flight::record_incident("serve.health.recovered", Vec::new());
            galign_telemetry::info!("serve", "health recovered: flight recorder thawed");
        }
    }
    // Shard nodes advertise their slice so a router can discover the
    // topology by probing /healthz. The parent checksum is hex — u64
    // values can exceed what a float-backed JSON reader keeps exact.
    let shard = match generation.index.shard_manifest() {
        Some(m) => format!(
            ",\"shard\":{{\"shard_id\":{},\"num_shards\":{},\"start\":{},\"end\":{},\"parent_targets\":{},\"parent_checksum\":\"{:016x}\"}}",
            m.shard_id, m.num_shards, m.start, m.end, m.parent_targets, m.parent_checksum,
        ),
        None => String::new(),
    };
    format!(
        "{{\"status\":\"{status}\",\"source_nodes\":{},\"target_nodes\":{},\"layers\":{},\"workers\":{},\"cache_entries\":{},\"pending\":{pending},\"in_flight\":{in_flight},\"shed_total\":{shed_total},\"queue_depth\":{},\"index\":\"{}\",\"mode\":\"{}\",\"generation\":{}{shard}}}",
        generation.index.source_nodes(),
        generation.index.target_nodes(),
        generation.index.num_layers(),
        inner.cfg.workers.max(1),
        inner.cache.len(),
        inner.cfg.queue_depth,
        generation
            .index
            .ann_backend()
            .map_or("none", galign_index::Backend::name),
        inner.cfg.default_mode,
        generation.number,
    )
}

/// Parsed `/v1/align/topk` request body.
struct TopkQuery {
    nodes: Vec<usize>,
    k: usize,
    theta: Option<Vec<f64>>,
    mode: EngineMode,
}

fn parse_topk_body(inner: &Inner, body: &[u8]) -> Result<TopkQuery, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let nodes: Vec<usize> = match (doc.get("nodes"), doc.get("node")) {
        (Some(arr), _) => arr
            .as_arr()
            .ok_or("\"nodes\" must be an array of node ids")?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or("\"nodes\" entries must be non-negative integers")
            })
            .collect::<Result<_, _>>()?,
        (None, Some(one)) => vec![one
            .as_usize()
            .ok_or("\"node\" must be a non-negative integer")?],
        (None, None) => return Err("body needs \"nodes\" (array) or \"node\" (integer)".into()),
    };
    if nodes.is_empty() {
        return Err("\"nodes\" must not be empty".into());
    }
    let k = match doc.get("k") {
        None => inner.cfg.default_k,
        Some(v) => v
            .as_usize()
            .filter(|&k| k >= 1)
            .ok_or("\"k\" must be an integer >= 1")?,
    };
    if k > inner.cfg.max_k {
        return Err(format!(
            "\"k\" exceeds the server limit of {}",
            inner.cfg.max_k
        ));
    }
    let theta = match doc.get("theta") {
        None => None,
        Some(v) => Some(
            v.as_arr()
                .ok_or("\"theta\" must be an array of numbers")?
                .iter()
                .map(|w| w.as_f64().ok_or("\"theta\" entries must be numbers"))
                .collect::<Result<Vec<_>, _>>()?,
        ),
    };
    let mode = match doc.get("mode") {
        None => inner.cfg.default_mode,
        Some(v) => v
            .as_str()
            .and_then(EngineMode::from_name)
            .ok_or("\"mode\" must be \"exact\", \"ann\" or \"auto\"")?,
    };
    Ok(TopkQuery {
        nodes,
        k,
        theta,
        mode,
    })
}

/// Cooperative deadline check: socket timeouts cannot bound *compute*
/// time, so the handler polls this at its expensive boundaries.
fn past_deadline(inner: &Inner, started: Instant) -> Option<Reply> {
    if started.elapsed() >= inner.cfg.deadline {
        galign_telemetry::counter_add("serve.topk.deadline_exceeded", 1);
        return Some(Reply::json(
            503,
            error_body("deadline exceeded, retry later"),
        ));
    }
    None
}

fn topk_route(inner: &Inner, generation: &Generation, body: &[u8], started: Instant) -> Reply {
    let index = &generation.index;
    // Failpoint `serve.topk.stall`: a `delay(ms)` action sleeps here,
    // simulating a handler stall for the fault-injection suite (which the
    // deadline check below must then catch).
    galign_telemetry::failpoint::eval("serve.topk.stall");
    if let Some(reply) = past_deadline(inner, started) {
        return reply;
    }
    let st = context::stage("parse");
    let query = match parse_topk_body(inner, body) {
        Ok(q) => q,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    st.finish_with(vec![("nodes", query.nodes.len().to_string())]);
    let theta = query.theta.as_deref();
    // The engine-routing decision is deterministic per request (mode +
    // index presence + auto threshold), so it can key the cache; ANN and
    // exact results must never alias each other.
    let st = context::stage("engine_select");
    let ann_routed = index.would_use_ann(query.mode);
    let engine = if ann_routed { "ann" } else { "exact" };
    st.finish_with(vec![("engine", engine.to_string())]);

    // Serve each node from the cache where possible; batch-compute the
    // misses through the parallel kernel.
    let st = context::stage("cache_lookup");
    let mut results = vec![None; query.nodes.len()];
    let mut miss_positions = Vec::new();
    for (i, &node) in query.nodes.iter().enumerate() {
        match inner.cache.get(&QueryKey::with_generation(
            node,
            query.k,
            theta,
            ann_routed,
            generation.number,
        )) {
            Some(hits) => results[i] = Some(hits),
            None => miss_positions.push(i),
        }
    }
    let miss_count = miss_positions.len() as u64;
    let hit_count = query.nodes.len() as u64 - miss_count;
    st.finish_with(vec![
        ("hits", hit_count.to_string()),
        ("misses", miss_count.to_string()),
    ]);
    context::annotate("cache_hits", hit_count);
    context::annotate("cache_misses", miss_count);
    if !miss_positions.is_empty() {
        // The batch compute is the expensive part — re-check the deadline
        // on the way in rather than burning kernel time on a request whose
        // client has already been promised an answer it can't get in time.
        if let Some(reply) = past_deadline(inner, started) {
            return reply;
        }
        let miss_nodes: Vec<usize> = miss_positions.iter().map(|&i| query.nodes[i]).collect();
        let computed = match index.topk_batch_with_mode(&miss_nodes, query.k, theta, query.mode) {
            Ok(c) => c,
            Err(e) => return Reply::json(400, error_body(&e.to_string())),
        };
        for (&i, (hits, _engine)) in miss_positions.iter().zip(computed) {
            let hits = Arc::new(hits);
            inner.cache.insert(
                QueryKey::with_generation(
                    query.nodes[i],
                    query.k,
                    theta,
                    ann_routed,
                    generation.number,
                ),
                Arc::clone(&hits),
            );
            results[i] = Some(hits);
        }
    }

    let st = context::stage("serialize");
    let mut out = format!("{{\"k\":{},\"engine\":\"{engine}\",\"results\":[", query.k);
    for (i, (node, hits)) in query.nodes.iter().zip(&results).enumerate() {
        let hits = hits.as_ref().expect("every slot filled");
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"node\":{node},\"matches\":["));
        for (j, hit) in hits.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"target\":{},\"score\":{}}}",
                hit.target,
                json::fmt_f64(hit.score)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    st.finish_with(vec![("bytes", out.len().to_string())]);

    if galign_telemetry::metrics_enabled() {
        galign_telemetry::counter_add("serve.topk.requests", 1);
        galign_telemetry::counter_add("serve.topk.nodes", query.nodes.len() as u64);
        galign_telemetry::counter_add("serve.topk.cache_misses", miss_count);
        galign_telemetry::counter_add(
            "serve.topk.cache_hits",
            query.nodes.len() as u64 - miss_count,
        );
        galign_telemetry::counter_add(
            if ann_routed {
                "serve.topk.engine.ann"
            } else {
                "serve.topk.engine.exact"
            },
            1,
        );
        galign_telemetry::gauge_set("serve.cache.entries", inner.cache.len() as f64);
        galign_telemetry::histogram_record("serve.topk.ms", started.elapsed().as_secs_f64() * 1e3);
    }
    Reply {
        status: 200,
        content_type: "application/json",
        body: out,
        engine,
        generation: generation.number,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, Mat};

    fn test_index() -> TopkIndex {
        let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
        TopkIndex::from_artifact(Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap())
    }

    fn test_inner_with(cfg: ServeConfig) -> Inner {
        Inner {
            index: generation_slot(test_index()),
            cache: ShardedCache::new(64, 2),
            cfg,
            addr: "127.0.0.1:0".parse().unwrap(),
            shutting_down: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            // A private recorder per test Inner: freeze/thaw tests must
            // not interfere with the process-global one.
            flight: Box::leak(Box::new(FlightRecorder::new(32, 4))),
            health_degraded: AtomicBool::new(false),
            access_log: None,
        }
    }

    fn test_inner() -> Inner {
        test_inner_with(ServeConfig::default())
    }

    /// `(status, body)` view of a route reply, for assertion brevity.
    fn topk_route2(inner: &Inner, body: &[u8], started: Instant) -> (u16, String) {
        let generation = inner.generation();
        let r = topk_route(inner, &generation, body, started);
        (r.status, r.body)
    }

    /// Current-generation healthz body, for assertion brevity.
    fn healthz2(inner: &Inner) -> String {
        healthz(inner, &inner.generation())
    }

    #[test]
    fn topk_route_happy_path_and_cache() {
        let inner = test_inner();
        let (status, body) = topk_route2(&inner, br#"{"nodes":[0,1],"k":2}"#, Instant::now());
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        let first = results[0].get("matches").unwrap().as_arr().unwrap();
        assert_eq!(first[0].get("target").unwrap().as_usize(), Some(0));
        // Second identical request is served from the cache.
        let (status2, body2) = topk_route2(&inner, br#"{"nodes":[0,1],"k":2}"#, Instant::now());
        assert_eq!(status2, 200);
        assert_eq!(body, body2);
        let (hits, misses) = inner.cache.stats();
        assert_eq!((hits, misses), (2, 2));
    }

    #[test]
    fn topk_route_rejects_bad_bodies() {
        let inner = test_inner();
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"{}"#, "nodes"),
            (br#"{"nodes":[]}"#, "empty"),
            (br#"{"nodes":[0],"k":0}"#, "k"),
            (br#"{"nodes":[0],"k":100000}"#, "limit"),
            (br#"{"nodes":[99]}"#, "out of range"),
            (br#"{"nodes":[0],"theta":[1.0,2.0]}"#, "theta"),
            (br#"{"nodes":[-1]}"#, "non-negative"),
        ] {
            let (status, msg) = topk_route2(&inner, body, Instant::now());
            assert_eq!(status, 400, "body {body:?} gave {msg}");
            assert!(
                msg.to_lowercase().contains(&needle.to_lowercase()),
                "error {msg:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn exceeded_deadline_returns_503() {
        let inner = test_inner_with(ServeConfig {
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        });
        let (status, body) = topk_route2(&inner, br#"{"nodes":[0]}"#, Instant::now());
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("deadline"), "{body}");
    }

    #[test]
    fn healthz_reports_load_and_degrades_when_queue_fills() {
        let inner = test_inner_with(ServeConfig {
            queue_depth: 4,
            ..ServeConfig::default()
        });
        inner.in_flight.store(3, Ordering::Relaxed);
        inner.shed_total.store(7, Ordering::Relaxed);
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("in_flight").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("shed_total").unwrap().as_usize(), Some(7));
        assert_eq!(doc.get("queue_depth").unwrap().as_usize(), Some(4));
        // Half-full pending queue flips the status to degraded.
        inner.pending.store(2, Ordering::Relaxed);
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(doc.get("pending").unwrap().as_usize(), Some(2));
    }

    #[test]
    fn single_node_form_and_theta_override() {
        let inner = test_inner();
        let (status, body) =
            topk_route2(&inner, br#"{"node":2,"k":1,"theta":[1.0]}"#, Instant::now());
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let matches = doc.get("results").unwrap().as_arr().unwrap()[0]
            .get("matches")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].get("target").unwrap().as_usize(), Some(2));
    }

    #[test]
    fn mode_field_routes_and_reports_engine() {
        let inner = test_inner();
        // No ANN index attached: every mode serves exact, 200, engine
        // "exact" — absence of the index is degraded-capability, not error.
        for mode in ["exact", "ann", "auto"] {
            let body = format!("{{\"nodes\":[0],\"k\":1,\"mode\":\"{mode}\"}}");
            let (status, out) = topk_route2(&inner, body.as_bytes(), Instant::now());
            assert_eq!(status, 200, "{out}");
            let doc = json::parse(&out).unwrap();
            assert_eq!(doc.get("engine").unwrap().as_str(), Some("exact"));
        }
        let (status, out) = topk_route2(&inner, br#"{"nodes":[0],"mode":"warp"}"#, Instant::now());
        assert_eq!(status, 400);
        assert!(out.contains("mode"), "{out}");
    }

    #[test]
    fn ann_engine_reported_and_cached_separately() {
        let mut index = test_index();
        index.build_ann(crate::topk::Backend::Ivf).unwrap();
        index.set_auto_threshold(1);
        let inner = test_inner();
        install_index(&inner, index);
        let (status, out) = topk_route2(
            &inner,
            br#"{"nodes":[0],"k":2,"mode":"ann"}"#,
            Instant::now(),
        );
        assert_eq!(status, 200, "{out}");
        let doc = json::parse(&out).unwrap();
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("ann"));
        // An exact request for the same node must miss the ANN entry.
        let (_, out2) = topk_route2(
            &inner,
            br#"{"nodes":[0],"k":2,"mode":"exact"}"#,
            Instant::now(),
        );
        let doc2 = json::parse(&out2).unwrap();
        assert_eq!(doc2.get("engine").unwrap().as_str(), Some("exact"));
        let (hits, misses) = inner.cache.stats();
        assert_eq!((hits, misses), (0, 2), "engines must not share entries");
        // Tiny n: ANN+re-rank and exact agree bit-for-bit.
        assert_eq!(
            doc.get("results").unwrap().as_arr().unwrap().len(),
            doc2.get("results").unwrap().as_arr().unwrap().len()
        );
    }

    #[test]
    fn healthz_reports_index_state_and_stays_ok_without_ann() {
        let inner = test_inner();
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("index").unwrap().as_str(), Some("none"));
        let with_ann = test_inner();
        let mut index = test_index();
        index.build_ann(crate::topk::Backend::Hnsw).unwrap();
        install_index(&with_ann, index);
        let doc = json::parse(&healthz2(&with_ann)).unwrap();
        assert_eq!(doc.get("index").unwrap().as_str(), Some("hnsw"));
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("auto"));
    }

    #[test]
    fn routing_table() {
        let inner = test_inner();
        let req = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: String::new(),
            headers: vec![],
            body: br#"{"nodes":[0]}"#.to_vec(),
        };
        let now = Instant::now;
        assert_eq!(route(&inner, &req("GET", "/healthz"), now()).status, 200);
        assert_eq!(route(&inner, &req("GET", "/metrics"), now()).status, 200);
        assert_eq!(
            route(&inner, &req("POST", "/v1/align/topk"), now()).status,
            200
        );
        assert_eq!(
            route(&inner, &req("GET", "/v1/align/topk"), now()).status,
            405
        );
        assert_eq!(route(&inner, &req("POST", "/metrics"), now()).status, 405);
        assert_eq!(
            route(&inner, &req("POST", "/v1/debug/requests"), now()).status,
            405
        );
        assert_eq!(
            route(&inner, &req("GET", "/v1/debug/requests"), now()).status,
            200
        );
        assert_eq!(
            route(&inner, &req("GET", "/v1/admin/swap"), now()).status,
            405
        );
        assert_eq!(route(&inner, &req("GET", "/nope"), now()).status, 404);
        let health = route(&inner, &req("GET", "/healthz"), now()).body;
        let doc = json::parse(&health).unwrap();
        assert_eq!(doc.get("source_nodes").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn swap_installs_next_generation_and_clears_cache() {
        let inner = test_inner();
        let (status, body) = topk_route2(&inner, br#"{"nodes":[0],"k":2}"#, Instant::now());
        assert_eq!(status, 200, "{body}");
        assert_eq!(inner.cache.len(), 1);
        assert_eq!(inner.generation().number, 1);
        // Write a fresh (different-data) artifact and swap to it.
        let m = Mat::new(3, 2, vec![0.0, 1.0, 1.0, 0.0, 0.5, 0.5]).unwrap();
        let artifact = Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap();
        let dir = std::env::temp_dir().join("galign-serve-swap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.galign");
        std::fs::write(&path, artifact.to_bytes()).unwrap();
        let body = format!("{{\"artifact\":\"{}\"}}", path.display());
        let reply = swap_route(&inner, body.as_bytes());
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"generation\":2"), "{}", reply.body);
        assert_eq!(inner.generation().number, 2);
        assert_eq!(inner.cache.len(), 0, "swap must clear cached hits");
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("generation").unwrap().as_usize(), Some(2));
        // Bad bodies and unreadable paths are 400s, not crashes.
        assert_eq!(swap_route(&inner, b"{}").status, 400);
        assert_eq!(
            swap_route(&inner, br#"{"artifact":"/no/such/file"}"#).status,
            400
        );
        assert_eq!(inner.generation().number, 2, "failed swaps install nothing");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn request_pinned_to_old_generation_cannot_poison_the_cache() {
        let inner = test_inner();
        // Pin a generation, then let a swap land "mid-request".
        let pinned = inner.generation();
        install_index(&inner, test_index());
        assert_eq!(inner.generation().number, 2);
        // The pinned request finishes and inserts under its own (old)
        // generation key...
        let reply = topk_route(&inner, &pinned, br#"{"nodes":[0],"k":2}"#, Instant::now());
        assert_eq!(reply.status, 200);
        assert_eq!(reply.generation, 1, "reply reports the generation it used");
        // ...so a post-swap request misses it and recomputes.
        let (hits_before, _) = inner.cache.stats();
        let reply2 = topk_route2(&inner, br#"{"nodes":[0],"k":2}"#, Instant::now());
        assert_eq!(reply2.0, 200);
        let (hits_after, misses) = inner.cache.stats();
        assert_eq!(hits_after, hits_before, "stale entry must not be served");
        assert_eq!(misses, 2);
    }

    #[test]
    fn shard_identity_guard_blocks_range_changes() {
        let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
        let parent = Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap();
        let shards = parent.split(2, None).unwrap();
        let idx = |a: &Artifact| TopkIndex::from_artifact(a.clone());
        // Same slice, fresh data: allowed. Different slice or shard/plain
        // mixing: refused.
        assert!(shard_identity_ok(&idx(&shards[0]), &idx(&shards[0])).is_ok());
        assert!(shard_identity_ok(&idx(&shards[0]), &idx(&shards[1])).is_err());
        assert!(shard_identity_ok(&idx(&shards[0]), &idx(&parent)).is_err());
        assert!(shard_identity_ok(&idx(&parent), &idx(&shards[0])).is_err());
        assert!(shard_identity_ok(&idx(&parent), &idx(&parent)).is_ok());
    }

    #[test]
    fn healthz_advertises_shard_manifest() {
        let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
        let parent = Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap();
        let checksum = parent.target_checksum();
        let shard = parent.split(3, None).unwrap().remove(1);
        let inner = test_inner();
        install_index(&inner, TopkIndex::from_artifact(shard));
        let doc = json::parse(&healthz2(&inner)).unwrap();
        let shard = doc.get("shard").expect("shard block");
        assert_eq!(shard.get("shard_id").unwrap().as_usize(), Some(1));
        assert_eq!(shard.get("num_shards").unwrap().as_usize(), Some(3));
        assert_eq!(shard.get("start").unwrap().as_usize(), Some(1));
        assert_eq!(shard.get("end").unwrap().as_usize(), Some(2));
        assert_eq!(
            shard.get("parent_checksum").unwrap().as_str(),
            Some(format!("{checksum:016x}").as_str())
        );
    }

    #[test]
    fn prometheus_format_renders_and_validates() {
        let inner = test_inner();
        galign_telemetry::counter_add("serve.route.metrics", 1);
        let req = Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: "format=prometheus".into(),
            headers: vec![],
            body: vec![],
        };
        let reply = route(&inner, &req, Instant::now());
        assert_eq!(reply.status, 200);
        assert_eq!(reply.content_type, galign_telemetry::prom::CONTENT_TYPE);
        galign_telemetry::prom::validate_exposition(&reply.body).expect("valid exposition");
    }

    #[test]
    fn flight_recorder_captures_routed_requests() {
        let inner = test_inner();
        let trace = galign_telemetry::TraceContext::root(galign_telemetry::TraceId::generate());
        let trace_id = trace.trace_id();
        let request = Request {
            method: "POST".into(),
            path: "/v1/align/topk".into(),
            query: String::new(),
            headers: vec![],
            body: br#"{"nodes":[0],"k":1}"#.to_vec(),
        };
        let started = Instant::now();
        let reply = {
            let _guard = trace.enter();
            route(&inner, &request, started)
        };
        assert_eq!(reply.status, 200);
        finish_trace(&inner, &trace, Some(&request), &reply, started);
        let rec = inner
            .flight
            .find(trace_id)
            .expect("flight recorder holds the trace");
        assert_eq!(rec.status, 200);
        assert_eq!(rec.name, "POST /v1/align/topk");
        assert!(
            rec.events.iter().any(|e| e.name == "parse"),
            "expected a parse stage span, got {:?}",
            rec.events.iter().map(|e| e.name).collect::<Vec<_>>()
        );
        // The debug endpoint serves the same record.
        let dump = inner.flight.to_json();
        assert!(dump.contains(&trace_id.to_hex()));
    }
}
