//! The alignment query server: a single-threaded epoll/kqueue-style
//! readiness event loop feeding a coalescing batch scheduler, routing
//! top-k queries through the sharded cache and the gathered panel
//! kernels, instrumented with `galign-telemetry` counters and latency
//! histograms.
//!
//! ## Endpoints
//!
//! | method | path                 | purpose                                |
//! |--------|----------------------|----------------------------------------|
//! | POST   | `/v1/align/topk`     | single top-k alignment query (JSON)    |
//! | POST   | `/v2/align/topk`     | batched queries (`{"queries":[...]}`)  |
//! | GET    | `/healthz`           | liveness + artifact shape              |
//! | GET    | `/metrics`           | telemetry snapshot as JSON; add        |
//! |        |                      | `?format=prometheus` for exposition    |
//! | GET    | `/v1/debug/requests` | flight recorder (recent + slowest)     |
//! | POST   | `/v1/admin/shutdown` | graceful shutdown (SIGTERM-equivalent) |
//! | POST   | `/v1/admin/swap`     | hot-swap the serving artifact          |
//!
//! ## Event loop + coalescing
//!
//! One thread owns every socket: a non-blocking listener and all
//! connections are registered with a readiness [`Poller`]
//! (epoll on Linux) and driven through per-connection read/parse/write
//! state machines — a slow client costs one idle `Conn` entry, never a
//! thread. Top-k requests do not execute inline: they are enqueued as
//! jobs on the batch module's coalescer, where concurrent queries wait up to
//! [`ServerConfig::batch_window`] (or until [`ServerConfig::batch_cap`]
//! jobs are queued) and then execute as ONE flush on a worker thread:
//! all cache misses across the flush are grouped by (generation, engine,
//! theta) and computed as a single query-block × node-panel GEMM via the
//! gathered kernels, then demultiplexed back to their connections.
//! Batched execution is bit-identical to sequential scoring — grouping
//! changes *which* GEMM computes a row, never the reduction order within
//! it. Arrivals beyond [`ServerConfig::queue_depth`] are shed with `503`
//! + `Retry-After`.
//!
//! ## Hot artifact swap
//!
//! The serving index lives behind a generation slot: each request clones
//! one `Arc<Generation>` up front and uses it end to end, so a swap
//! arriving mid-request never mixes old and new data — in-flight requests
//! finish on the generation they started with and report it in the
//! `x-galign-generation` response header. Swaps arrive two ways: `POST
//! /v1/admin/swap` with `{"artifact": "/path"}`, or a *generation pointer
//! file* ([`ServerConfig::generation_pointer`]) whose content names the
//! current artifact path; a watcher thread polls it and swaps when the
//! content changes (writers should update it atomically via
//! write-temp-then-rename). Either way the artifact is read and
//! deserialized *off* the event loop (the watcher thread, or a
//! short-lived thread per admin swap): loading a large artifact must not
//! stall serving. Every swap clears the top-k cache — cached
//! hits must never outlive the artifact that produced them. A shard node
//! (artifact with a shard manifest) refuses a swap that would change its
//! id-range identity: replacing the *data* of shard 2/4 is routine,
//! silently becoming a different shard is corruption.
//!
//! ## Connection reuse
//!
//! A client sending `connection: keep-alive` may issue sequential (or
//! pipelined) requests on one socket. Under the event loop an idle
//! keep-alive connection costs no thread, so there is no fairness gate:
//! the connection stays open up to [`ServerConfig::keep_alive_idle`]
//! between requests and is closed silently on idle timeout (writing an
//! unsolicited `408` onto a pooled connection could be mistaken for the
//! response to the *next* request). A connection whose *first* request
//! never completes within [`ServerConfig::request_timeout`] gets a `408`.
//! Each request's window is anchored once — at accept for the first, at
//! its first byte for keep-alive follow-ups — and subsequent reads never
//! extend it, so a slow-loris trickle cannot hold a connection open past
//! the timeout; buffered-but-unparsed bytes are additionally capped at
//! one maximal request's worth per connection.
//!
//! ## Tracing
//!
//! Every request is handled under a [`TraceContext`]: the server honors an
//! inbound `x-galign-trace-id` header (32 hex digits; unusable values get
//! a fresh id) and echoes the resolved id back on **every** response, so a
//! client can correlate its attempt with the server's access log, span
//! JSONL and flight recorder. Handler stages (`parse`, `cache_lookup`,
//! `engine_select`, `ann_search`, `exact_rerank`, `serialize`) record
//! timed span events against the id — the context is captured as a
//! [`PropagationHandle`] at dispatch, so stages recorded on a worker
//! thread land in the request's trace across the thread hop. Completed
//! traces land in the global flight recorder and, when
//! [`ServerConfig::access_log`] is set, as one JSONL access-log line per
//! request.
//!
//! Query body (v1):
//! `{"nodes": [0, 3], "k": 5, "theta": [0.2, 0.3, 0.5], "mode": "auto"}` —
//! `k`, `theta`, `mode` and `quant` optional. `mode` picks the scoring
//! engine (`exact | ann | auto`, default from
//! [`ServerConfig::default_mode`]); the response reports the routing
//! decision in its top-level `"engine"` field. `quant` picks the
//! first-pass scan precision (`off | int8 | f16`, default from
//! [`ServerConfig::quant`]); responses are bit-identical across settings
//! and the body shape does not change. v2 wraps any number of such objects:
//! `{"queries": [{...}, {...}]}` → `{"results": [<v1 body>, ...]}`, with
//! per-query errors isolated as `{"error": "..."}` entries. See
//! [`crate::api`] for the typed request/response structs.
//!
//! ## Shutdown
//!
//! `POST /v1/admin/shutdown` (or [`ServerHandle::shutdown`]) flips an
//! atomic flag and nudges the event loop awake with a loopback
//! connection; the loop stops accepting, closes idle connections, drains
//! the coalescer (queued jobs complete and their responses are written),
//! and every worker joins before [`Server::run`] returns.

use crate::batch::{self, Coalescer, Completion, Job};
use crate::cache::ShardedCache;
use crate::evloop::{self, Event, Poller};
use crate::http::{self, Parsed, Request};
use crate::json;
use crate::topk::{EngineMode, QuantMode, TopkIndex};
use galign_telemetry::context::{PropagationHandle, TraceContext, TraceId};
use galign_telemetry::flight::{self, FlightRecorder, RecordKind, TraceRecord};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Trace-id header honored on requests and echoed on responses.
pub const TRACE_HEADER: &str = "x-galign-trace-id";

/// Remaining-deadline header stamped by upstream callers: the number of
/// milliseconds of client budget left when the request was sent. The
/// server clamps its own per-request deadline to this remaining budget,
/// so a coalesced job whose caller has already given up is shed with a
/// `503` instead of burning kernel time on a doomed reply.
pub const DEADLINE_HEADER: &str = "x-galign-deadline-ms";

/// Response header reporting the artifact generation a request was served
/// from. Starts at 1 for the artifact the server booted with and bumps on
/// every hot swap; a request spanning a swap reports the generation it
/// actually used.
pub const GENERATION_HEADER: &str = "x-galign-generation";

/// Server tunables. Construct via [`ServerConfig::builder`] (preferred)
/// or a struct literal over [`Default`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing coalesced top-k flushes.
    pub workers: usize,
    /// Deadline for one request to arrive / one response to drain on a
    /// connection (the event loop's per-connection progress timeout).
    pub request_timeout: Duration,
    /// Total top-k cache entries across shards (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// `k` used when a query omits it.
    pub default_k: usize,
    /// Largest accepted `k` (bounds per-request work and cache entry size).
    pub max_k: usize,
    /// Bound on jobs waiting in the coalescer; anything beyond is shed
    /// with `503` + `Retry-After` instead of queueing unboundedly.
    pub queue_depth: usize,
    /// Wall-clock deadline for handling one request, enforced
    /// cooperatively on the worker (socket timeouts cannot bound compute
    /// or queue time); exceeding it returns `503`.
    pub deadline: Duration,
    /// `Retry-After` value (seconds) attached to every shed/deadline 503.
    pub retry_after_secs: u64,
    /// Engine used when a query omits `mode` (`auto` routes to ANN only
    /// when an index is attached and the target network is at least
    /// `ann_threshold` nodes).
    pub default_mode: EngineMode,
    /// First-pass scan precision used when a query omits `quant` (the
    /// `--quant` flag). Results are bit-identical across settings;
    /// degrades to f64 when the artifact carries no matching panels.
    pub quant: QuantMode,
    /// Overrides the index's `auto` switchover point when set.
    pub ann_threshold: Option<usize>,
    /// Flight-recorder ring capacity (completed traces retained for
    /// `GET /v1/debug/requests`). Applied to the process-global recorder
    /// on bind; first configurator wins.
    pub flight_recorder_size: usize,
    /// Slowest-K reservoir size of the flight recorder.
    pub flight_slowest_k: usize,
    /// When set, every request appends one JSONL access-log line here
    /// (trace id, route, engine, cache counts, deadline remaining,
    /// status, µs latency).
    pub access_log: Option<PathBuf>,
    /// When set, the flight recorder is dumped here as JSONL on graceful
    /// shutdown.
    pub flight_dump: Option<PathBuf>,
    /// Generation pointer file: when set, a watcher thread polls it and
    /// hot-swaps the serving artifact to the path the file names whenever
    /// its content changes. The content present at startup is treated as
    /// already applied.
    pub generation_pointer: Option<PathBuf>,
    /// How often the generation pointer is polled.
    pub generation_poll: Duration,
    /// How long an idle keep-alive connection is held open waiting for
    /// its next request.
    pub keep_alive_idle: Duration,
    /// How long a queued top-k job may wait for flush-mates before the
    /// coalescer flushes anyway (latency cost of batching, paid only
    /// under concurrency — a lone job on an idle server waits the full
    /// window, which is why the default is microseconds).
    pub batch_window: Duration,
    /// Most jobs executed in one coalesced flush.
    pub batch_cap: usize,
    /// Most concurrently open connections; accepts beyond this are shed
    /// with `503`.
    pub max_connections: usize,
}

/// Former name of [`ServerConfig`], kept so existing struct literals and
/// signatures keep compiling.
#[doc(hidden)]
pub type ServeConfig = ServerConfig;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            request_timeout: Duration::from_secs(10),
            cache_capacity: 4096,
            cache_shards: 16,
            default_k: 10,
            max_k: 1000,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            default_mode: EngineMode::Auto,
            quant: QuantMode::Off,
            ann_threshold: None,
            flight_recorder_size: flight::DEFAULT_CAPACITY,
            flight_slowest_k: flight::DEFAULT_SLOWEST_K,
            access_log: None,
            flight_dump: None,
            generation_pointer: None,
            generation_poll: Duration::from_millis(200),
            keep_alive_idle: Duration::from_millis(250),
            batch_window: Duration::from_micros(200),
            batch_cap: 64,
            max_connections: 1024,
        }
    }
}

impl ServerConfig {
    /// A fluent builder over the defaults.
    #[must_use]
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`]: each setter overrides one default.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

macro_rules! builder_field {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(mut self, value: $ty) -> Self {
            self.cfg.$name = value;
            self
        }
    };
}

macro_rules! builder_path {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(mut self, path: impl Into<PathBuf>) -> Self {
            self.cfg.$name = Some(path.into());
            self
        }
    };
}

impl ServerConfigBuilder {
    builder_field!(
        /// Worker threads executing coalesced flushes.
        workers: usize
    );
    builder_field!(
        /// Per-connection progress timeout.
        request_timeout: Duration
    );
    builder_field!(
        /// Total top-k cache entries across shards.
        cache_capacity: usize
    );
    builder_field!(
        /// Cache shard count.
        cache_shards: usize
    );
    builder_field!(
        /// `k` used when a query omits it.
        default_k: usize
    );
    builder_field!(
        /// Largest accepted `k`.
        max_k: usize
    );
    builder_field!(
        /// Coalescer queue bound before shedding.
        queue_depth: usize
    );
    builder_field!(
        /// Cooperative per-request deadline.
        deadline: Duration
    );
    builder_field!(
        /// `Retry-After` seconds on 503s.
        retry_after_secs: u64
    );
    builder_field!(
        /// Engine when a query omits `mode`.
        default_mode: EngineMode
    );
    builder_field!(
        /// Scan precision when a query omits `quant`.
        quant: QuantMode
    );
    builder_field!(
        /// Flight-recorder ring capacity.
        flight_recorder_size: usize
    );
    builder_field!(
        /// Flight-recorder slowest-K reservoir size.
        flight_slowest_k: usize
    );
    builder_field!(
        /// Generation-pointer poll interval.
        generation_poll: Duration
    );
    builder_field!(
        /// Idle keep-alive connection lifetime.
        keep_alive_idle: Duration
    );
    builder_field!(
        /// Coalescing window for queued top-k jobs.
        batch_window: Duration
    );
    builder_field!(
        /// Most jobs per coalesced flush.
        batch_cap: usize
    );
    builder_field!(
        /// Most concurrently open connections.
        max_connections: usize
    );
    builder_path!(
        /// JSONL access log destination.
        access_log
    );
    builder_path!(
        /// Flight-recorder shutdown dump destination.
        flight_dump
    );
    builder_path!(
        /// Generation pointer file to watch for hot swaps.
        generation_pointer
    );

    /// Overrides the index's `auto` ANN switchover point.
    #[must_use]
    pub fn ann_threshold(mut self, nodes: usize) -> Self {
        self.cfg.ann_threshold = Some(nodes);
        self
    }

    /// The finished configuration.
    #[must_use]
    pub fn build(self) -> ServerConfig {
        self.cfg
    }

    /// Builds the configuration and binds a server with it — the common
    /// terminal step (`addr` as in [`Server::bind`], port 0 for
    /// ephemeral).
    ///
    /// # Errors
    /// Bind failures.
    pub fn bind(self, addr: &str, index: TopkIndex) -> io::Result<Server> {
        Server::bind(addr, index, self.build())
    }
}

/// One immutable serving generation: the index plus its sequence number.
/// Requests clone the `Arc` once and never observe a mix of generations.
pub struct Generation {
    /// The query index of this generation.
    pub index: TopkIndex,
    /// 1 for the boot artifact, +1 per hot swap.
    pub number: u64,
}

/// Wraps a boot index as generation 1 in its swap slot.
fn generation_slot(index: TopkIndex) -> RwLock<Arc<Generation>> {
    RwLock::new(Arc::new(Generation { index, number: 1 }))
}

pub(crate) struct Inner {
    pub(crate) index: RwLock<Arc<Generation>>,
    pub(crate) cache: ShardedCache,
    pub(crate) cfg: ServerConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) shutting_down: AtomicBool,
    /// Top-k jobs queued in the coalescer, waiting for a flush.
    pub(crate) pending: AtomicU64,
    /// Requests currently being handled (dispatched or routing inline).
    pub(crate) in_flight: AtomicU64,
    /// Total requests/connections shed with 503 since startup.
    pub(crate) shed_total: AtomicU64,
    /// Completed-trace ring serving `/v1/debug/requests`.
    pub(crate) flight: &'static FlightRecorder,
    /// Whether the last `/healthz` evaluation reported degraded — the
    /// ok→degraded transition freezes the flight recorder so the traces
    /// *leading up to* the incident survive the incident's retry storm.
    pub(crate) health_degraded: AtomicBool,
    /// JSONL access-log writer, when configured.
    pub(crate) access_log: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
}

impl Inner {
    /// The current serving generation. One cheap clone per request pins
    /// that request to a consistent index while swaps proceed.
    pub(crate) fn generation(&self) -> Arc<Generation> {
        Arc::clone(&self.index.read().expect("generation lock"))
    }
}

/// Publishes the resident artifact footprint: f64 rows and quantized
/// panels separately, plus their sum (`serve.artifact.bytes`). Set at
/// bind and on every hot swap, refreshed on `/metrics` reads.
fn set_artifact_gauges(index: &TopkIndex) {
    let f64_bytes = index.f64_resident_bytes();
    let quant_bytes = index.quant_resident_bytes();
    galign_telemetry::gauge_set("serve.artifact.f64_bytes", f64_bytes as f64);
    galign_telemetry::gauge_set("serve.artifact.quant_bytes", quant_bytes as f64);
    galign_telemetry::gauge_set("serve.artifact.bytes", (f64_bytes + quant_bytes) as f64);
}

/// Installs `index` as the next generation: applies the configured `auto`
/// threshold, swaps the slot, clears the top-k cache (cached hits must
/// never outlive their artifact) and returns the new generation number.
fn install_index(inner: &Inner, mut index: TopkIndex) -> u64 {
    if let Some(threshold) = inner.cfg.ann_threshold {
        index.set_auto_threshold(threshold);
    }
    set_artifact_gauges(&index);
    let number = {
        let mut slot = inner.index.write().expect("generation lock");
        let number = slot.number + 1;
        *slot = Arc::new(Generation { index, number });
        number
    };
    inner.cache.clear();
    galign_telemetry::counter_add("serve.swap.total", 1);
    galign_telemetry::gauge_set("serve.generation", number as f64);
    flight::record_incident(
        "serve.generation.swapped",
        vec![("generation".to_string(), number.to_string())],
    );
    number
}

/// Validates that `next` keeps the shard identity of `current`: a shard
/// node may receive new *data* for its slice, never a different slice.
fn shard_identity_ok(current: &TopkIndex, next: &TopkIndex) -> Result<(), String> {
    match (current.shard_manifest(), next.shard_manifest()) {
        (None, None) => Ok(()),
        (Some(a), Some(b))
            if (a.shard_id, a.num_shards, a.start, a.end)
                == (b.shard_id, b.num_shards, b.start, b.end) =>
        {
            Ok(())
        }
        _ => Err("artifact would change this node's shard identity (id range)".to_string()),
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    inner: Arc<Inner>,
    listener: TcpListener,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    join: JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, port 0 for ephemeral) and
    /// prepares the query index. Also enables telemetry metrics — a
    /// server wants its `/metrics` endpoint live.
    ///
    /// # Errors
    /// Bind failures.
    pub fn bind(addr: &str, mut index: TopkIndex, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        galign_telemetry::set_metrics_enabled(true);
        if let Some(threshold) = cfg.ann_threshold {
            index.set_auto_threshold(threshold);
        }
        flight::configure(cfg.flight_recorder_size, cfg.flight_slowest_k);
        set_artifact_gauges(&index);
        let access_log = match &cfg.access_log {
            Some(path) => Some(Mutex::new(std::io::BufWriter::new(std::fs::File::create(
                path,
            )?))),
            None => None,
        };
        galign_telemetry::info!(
            "serve",
            "listening on {local} ({} source x {} target nodes, {} layers, {} workers, engine {} / ann index: {})",
            index.source_nodes(),
            index.target_nodes(),
            index.num_layers(),
            cfg.workers.max(1),
            cfg.default_mode,
            index
                .ann_backend()
                .map_or("none", galign_index::Backend::name),
        );
        Ok(Server {
            inner: Arc::new(Inner {
                cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
                index: generation_slot(index),
                cfg,
                addr: local,
                shutting_down: AtomicBool::new(false),
                pending: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                shed_total: AtomicU64::new(0),
                flight: flight::global(),
                health_degraded: AtomicBool::new(false),
                access_log,
            }),
            listener,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Runs the event loop on the calling thread until graceful
    /// shutdown; all workers have joined when this returns.
    ///
    /// # Errors
    /// Fatal listener/poller failures (per-connection errors are
    /// absorbed).
    pub fn run(self) -> io::Result<()> {
        let inner = Arc::clone(&self.inner);
        let watcher = inner.cfg.generation_pointer.clone().map(|pointer| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || watch_generation_pointer(&inner, &pointer))
        });
        let co = Arc::new(Coalescer::new(
            inner.cfg.batch_window,
            inner.cfg.batch_cap,
            inner.cfg.queue_depth,
        ));
        let (wake_tx, wake_rx) = evloop::wake_pair()?;
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let workers = inner.cfg.workers.max(1);
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let co = Arc::clone(&co);
            let inner = Arc::clone(&inner);
            let done_tx = done_tx.clone();
            let wake_tx = wake_tx.try_clone()?;
            pool.push(std::thread::spawn(move || {
                // One iteration = one coalesced flush: every queued job in
                // the batch is planned, executed as grouped panel GEMMs
                // and completed before the next take. The flush runs under
                // `catch_unwind`: a panic must not kill the worker with
                // its jobs' connections parked in `Dispatched` (exempt
                // from loop timeouts, so they would hang forever and pin
                // graceful shutdown) — every job still gets exactly one
                // completion, a 500.
                while let Some(jobs) = co.take_batch() {
                    inner
                        .pending
                        .fetch_sub(jobs.len() as u64, Ordering::Relaxed);
                    let tokens: Vec<u64> = jobs.iter().map(|j| j.token).collect();
                    let completions =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            batch::process_jobs(&inner, jobs)
                        }))
                        .unwrap_or_else(|panic| {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            galign_telemetry::counter_add("serve.batch.panics", 1);
                            galign_telemetry::info!(
                                "serve",
                                "batch flush panicked ({} jobs 500ed): {msg}",
                                tokens.len()
                            );
                            tokens
                                .iter()
                                .map(|&token| Completion {
                                    token,
                                    reply: Reply::json(500, error_body("internal server error")),
                                })
                                .collect()
                        });
                    let mut sent = false;
                    for done in completions {
                        sent |= done_tx.send(done).is_ok();
                    }
                    if sent {
                        evloop::wake(&wake_tx);
                    }
                }
            }));
        }
        self.listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(evloop::fd_of(&self.listener), LISTENER, true, false)?;
        poller.register(evloop::fd_of(&wake_rx), WAKER, true, false)?;
        let mut el = EventLoop {
            inner: Arc::clone(&inner),
            poller,
            listener: self.listener,
            wake_rx,
            co: Arc::clone(&co),
            done_rx,
            // The loop keeps a sender + waker of its own: slow off-loop
            // work it spawns itself (admin artifact swaps) completes
            // through the same channel as worker flushes.
            done_tx,
            wake_tx,
            conns: HashMap::new(),
            reqs: HashMap::new(),
            next_token: FIRST_CONN,
            draining: false,
        };
        let result = el.run_loop();
        // Drop the loop (listener and every socket close) before joining
        // workers: the bound port is released the moment `run` can return.
        drop(el);
        co.close();
        for worker in pool {
            let _ = worker.join();
        }
        if let Some(watcher) = watcher {
            let _ = watcher.join();
        }
        if let Some(path) = &inner.cfg.flight_dump {
            match std::fs::File::create(path) {
                Ok(file) => {
                    let mut w = std::io::BufWriter::new(file);
                    if let Err(e) = inner.flight.dump_jsonl(&mut w) {
                        galign_telemetry::info!("serve", "flight-recorder dump failed: {e}");
                    } else {
                        galign_telemetry::info!(
                            "serve",
                            "flight recorder dumped to {}",
                            path.display()
                        );
                    }
                }
                Err(e) => {
                    galign_telemetry::info!(
                        "serve",
                        "cannot create flight dump {}: {e}",
                        path.display()
                    );
                }
            }
        }
        if let Some(log) = &inner.access_log {
            let _ = log.lock().expect("access log lock").flush();
        }
        galign_telemetry::info!("serve", "shut down cleanly");
        result
    }

    /// Runs the server on a background thread, returning a handle for
    /// tests and embedders.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let inner = Arc::clone(&self.inner);
        let addr = self.local_addr();
        let join = std::thread::spawn(move || self.run());
        ServerHandle { inner, addr, join }
    }
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown and waits for the event loop and all
    /// workers to finish.
    ///
    /// # Errors
    /// The run loop's error, if it failed.
    ///
    /// # Panics
    /// If the server thread panicked.
    pub fn shutdown(self) -> io::Result<()> {
        begin_shutdown(&self.inner);
        self.join.join().expect("server thread panicked")
    }
}

/// Loads the artifact at `path` and installs it as the next generation,
/// refusing artifacts that would change a shard node's identity.
fn swap_from_path(inner: &Inner, path: &str) -> Result<u64, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let artifact =
        crate::artifact::Artifact::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let next = TopkIndex::from_artifact(artifact);
    shard_identity_ok(&inner.generation().index, &next)?;
    Ok(install_index(inner, next))
}

/// Polls the generation pointer file until shutdown, hot-swapping to the
/// artifact it names whenever its content changes. A failed swap is
/// logged and counted, and that content is remembered so a broken pointer
/// does not retry in a hot loop — the next *change* triggers again.
fn watch_generation_pointer(inner: &Inner, pointer: &std::path::Path) {
    let read_pointer = || {
        std::fs::read_to_string(pointer)
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    };
    // Startup content is the artifact the server already booted with.
    let mut seen = read_pointer();
    let mut waited = Duration::ZERO;
    let slice = Duration::from_millis(25);
    while !inner.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        waited += slice;
        if waited < inner.cfg.generation_poll {
            continue;
        }
        waited = Duration::ZERO;
        let Some(content) = read_pointer() else {
            continue;
        };
        if seen.as_ref() == Some(&content) {
            continue;
        }
        match swap_from_path(inner, &content) {
            Ok(number) => {
                galign_telemetry::info!(
                    "serve",
                    "generation pointer swap: {content} is now generation {number}"
                );
            }
            Err(msg) => {
                galign_telemetry::counter_add("serve.swap.errors", 1);
                galign_telemetry::info!("serve", "generation pointer swap failed: {msg}");
            }
        }
        seen = Some(content);
    }
}

/// Flips the shutdown flag and wakes the event loop.
fn begin_shutdown(inner: &Inner) {
    if !inner.shutting_down.swap(true, Ordering::SeqCst) {
        // A throwaway loopback connection makes the listener readable,
        // which wakes the poller even when no client traffic arrives.
        let _ = TcpStream::connect_timeout(&inner.addr, Duration::from_secs(1));
    }
}

/// Refuses a connection outright (connection cap): a best-effort 503
/// with `Retry-After` — rendered to one buffer, pushed with a single
/// non-blocking write. A peer whose socket cannot take the bytes right
/// now just sees the close; a blocking (even timed) write here would run
/// on the event-loop thread, where a burst of slow over-cap clients
/// could stall the whole loop serially.
fn shed(inner: &Inner, stream: &TcpStream) {
    inner.shed_total.fetch_add(1, Ordering::Relaxed);
    galign_telemetry::counter_add("serve.http.shed", 1);
    let _ = stream.set_nonblocking(true);
    let mut out = Vec::with_capacity(256);
    let _ = http::write_json_with_headers(
        &mut out,
        503,
        &[("retry-after", inner.cfg.retry_after_secs.to_string())],
        &error_body("server overloaded, retry later"),
    );
    let _ = (&mut &*stream).write(&out);
}

/// One routed response: status, content type, body, and which scoring
/// engine produced it (empty for non-query routes).
pub(crate) struct Reply {
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: String,
    pub(crate) engine: &'static str,
    /// Generation the reply was computed against (0 = not yet stamped;
    /// `route` stamps every reply, error paths fall back to the current
    /// generation at write time).
    pub(crate) generation: u64,
}

impl Reply {
    pub(crate) fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            engine: "",
            generation: 0,
        }
    }
}

/// Cap on bytes buffered per connection awaiting parse. One maximal
/// request (head + body at their limits) always fits, so `try_parse`
/// over a full buffer yields `Complete` or `Bad`, never `Partial`;
/// reading simply pauses at the cap until a parsed request drains the
/// buffer. Bounds event-loop memory to `max_connections ×` this.
const MAX_BUFFERED_BYTES: usize = http::MAX_HEAD_BYTES + http::MAX_BODY_BYTES;

/// Poller token of the listening socket.
const LISTENER: u64 = 0;
/// Poller token of the worker-wakeup socket.
const WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN: u64 = 2;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConnState {
    /// Accumulating request bytes (or idle between keep-alive requests).
    Reading,
    /// A top-k job is queued/executing; the socket is deregistered until
    /// its completion arrives (level-triggered pollers would otherwise
    /// spin on a half-closed peer).
    Dispatched,
    /// Draining a rendered response to the socket.
    Writing,
}

/// Per-connection state machine entry.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// Rendered response bytes being written.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// Whether to return to `Reading` (vs close) once `out` drains.
    keep_after_write: bool,
    /// Requests already answered on this connection.
    served: u64,
    /// Progress deadline; meaning depends on state (first-request /
    /// keep-alive idle / write drain). Dispatched connections have none —
    /// the worker-side request deadline is authoritative there.
    deadline: Instant,
    /// Peer sent EOF (half-open: it may still read our response).
    read_closed: bool,
    /// Whether the fd is currently registered with the poller.
    registered: bool,
    /// Last (readable, writable) interest registered.
    interest: (bool, bool),
}

/// Per-dispatched-request state the loop keeps while a job is away on a
/// worker, keyed by connection token. Kept separate from [`Conn`] so a
/// completion for a since-closed connection still runs its counters and
/// trace tail.
struct ReqState {
    ctx: TraceContext,
    started: Instant,
    method: String,
    path: String,
    keep: bool,
}

/// Applies an interest change, tracking registration so level-triggered
/// pollers only see fds the loop actually wants events for.
fn set_interest(poller: &Poller, conn: &mut Conn, token: u64, readable: bool, writable: bool) {
    let fd = evloop::fd_of(&conn.stream);
    if !readable && !writable {
        if conn.registered {
            let _ = poller.deregister(fd, token);
            conn.registered = false;
        }
    } else if conn.registered {
        if conn.interest != (readable, writable) {
            let _ = poller.reregister(fd, token, readable, writable);
        }
    } else {
        let _ = poller.register(fd, token, readable, writable);
        conn.registered = true;
    }
    conn.interest = (readable, writable);
}

/// What `try_advance` decided while holding the connection borrow.
enum Step {
    /// Nothing actionable buffered; keep waiting.
    Idle,
    /// Connection is finished (EOF with nothing pending).
    Close,
    /// The buffered bytes can never parse; 400 and close.
    Bad(String),
    /// One complete request was consumed from the buffer.
    Req(Box<Request>),
}

/// The single-threaded readiness loop owning every socket.
struct EventLoop {
    inner: Arc<Inner>,
    poller: Poller,
    listener: TcpListener,
    wake_rx: TcpStream,
    co: Arc<Coalescer>,
    done_rx: mpsc::Receiver<Completion>,
    done_tx: mpsc::Sender<Completion>,
    wake_tx: TcpStream,
    conns: HashMap<u64, Conn>,
    reqs: HashMap<u64, ReqState>,
    next_token: u64,
    draining: bool,
}

impl EventLoop {
    fn run_loop(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if !self.draining && self.inner.shutting_down.load(Ordering::SeqCst) {
                // Enter draining exactly once: refuse new work, close
                // idle/reading connections, let queued jobs and pending
                // writes finish.
                self.draining = true;
                self.co.close();
                let reading: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| c.state == ConnState::Reading)
                    .map(|(&t, _)| t)
                    .collect();
                for token in reading {
                    self.close_conn(token);
                }
            }
            if self.draining && self.conns.is_empty() && self.reqs.is_empty() {
                return Ok(());
            }
            let now = Instant::now();
            let mut timeout = Duration::from_millis(500);
            for c in self.conns.values() {
                if c.state != ConnState::Dispatched {
                    timeout = timeout.min(c.deadline.saturating_duration_since(now));
                }
            }
            self.poller.poll(&mut events, Some(timeout))?;
            for ev in events.drain(..) {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKER => evloop::drain_wakes(&self.wake_rx),
                    token => self.conn_event(token, &ev),
                }
            }
            while let Ok(done) = self.done_rx.try_recv() {
                let rs = self.reqs.remove(&done.token);
                self.inner.in_flight.fetch_sub(1, Ordering::Relaxed);
                if let Some(rs) = rs {
                    self.respond(done.token, done.reply, &rs);
                }
            }
            self.check_timeouts();
        }
    }

    /// Accepts everything the backlog holds (edge-agnostic: the listener
    /// is polled level-triggered, but draining it now saves wakeups).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining || self.inner.shutting_down.load(Ordering::SeqCst) {
                        // Shutdown nudge, or a client racing the drain.
                        drop(stream);
                        continue;
                    }
                    if self.conns.len() >= self.inner.cfg.max_connections {
                        shed(&self.inner, &stream);
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    // Responses render as one buffer, but without
                    // TCP_NODELAY a short tail write can still sit behind
                    // Nagle waiting on the peer's delayed ACK.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn {
                        stream,
                        buf: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        state: ConnState::Reading,
                        keep_after_write: false,
                        served: 0,
                        deadline: Instant::now() + self.inner.cfg.request_timeout,
                        read_closed: false,
                        registered: false,
                        interest: (false, false),
                    };
                    set_interest(&self.poller, &mut conn, token, true, false);
                    self.conns.insert(token, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    galign_telemetry::debug!("serve", "accept error: {e}");
                    break;
                }
            }
        }
    }

    fn conn_event(&mut self, token: u64, ev: &Event) {
        let state = match self.conns.get(&token) {
            Some(c) => c.state,
            None => return,
        };
        match state {
            ConnState::Reading if ev.readable => self.on_readable(token),
            // Error/hangup conditions surface as readable+writable; the
            // write attempt observes the failure and closes.
            ConnState::Writing if ev.writable || ev.readable => self.advance_write(token),
            _ => {}
        }
    }

    /// Drains the socket into the connection buffer, then tries to parse.
    fn on_readable(&mut self, token: u64) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let was_idle = conn.buf.is_empty();
            let mut progressed = false;
            let mut chunk = [0u8; 16 * 1024];
            loop {
                // Hard cap on buffered bytes. One maximal request always
                // fits (head + body ≤ the cap, so `try_parse` at the cap
                // is Complete or Bad, never Partial); a pipelining client
                // past the cap just waits — the poller is level-triggered,
                // so reading resumes once a parsed request drains the
                // buffer.
                if conn.buf.len() >= MAX_BUFFERED_BYTES {
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&chunk[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            // A request's progress window anchors at its FIRST byte: the
            // byte that wakes an idle keep-alive connection converts the
            // idle deadline into a request deadline, and later reads never
            // extend it — a slow-loris trickle cannot hold the connection
            // past `request_timeout`. The first request's window is
            // anchored at accept (set in `accept_ready`).
            if was_idle && progressed && conn.served > 0 {
                conn.deadline = Instant::now() + self.inner.cfg.request_timeout;
            }
        }
        if dead {
            self.close_conn(token);
            return;
        }
        self.try_advance(token);
    }

    /// Attempts to parse and dispatch one request from buffered bytes.
    fn try_advance(&mut self, token: u64) {
        let step = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Reading {
                return;
            }
            if conn.buf.is_empty() {
                if conn.read_closed {
                    Step::Close
                } else {
                    Step::Idle
                }
            } else {
                match http::try_parse(&conn.buf) {
                    Parsed::Partial => {
                        if conn.read_closed {
                            // The request can never complete; there is
                            // nothing sensible to answer on a half line.
                            Step::Close
                        } else {
                            Step::Idle
                        }
                    }
                    Parsed::Bad(bad) => Step::Bad(bad.0),
                    Parsed::Complete { request, consumed } => {
                        conn.buf.drain(..consumed);
                        Step::Req(Box::new(request))
                    }
                }
            }
        };
        match step {
            Step::Idle => {}
            Step::Close => self.close_conn(token),
            Step::Bad(msg) => {
                // Unparseable requests still get a trace id so their
                // access-log lines are greppable.
                let rs = ReqState {
                    ctx: TraceContext::root(TraceId::generate()),
                    started: Instant::now(),
                    method: "-".to_string(),
                    path: "-".to_string(),
                    keep: false,
                };
                self.respond(token, Reply::json(400, error_body(&msg)), &rs);
            }
            Step::Req(request) => self.handle_request(token, *request),
        }
    }

    /// Dispatches one parsed request: top-k queries join the coalescer,
    /// everything else routes inline (those handlers are cheap).
    fn handle_request(&mut self, token: u64, request: Request) {
        let started = Instant::now();
        let trace_id = request
            .header(TRACE_HEADER)
            .and_then(TraceId::parse_hex)
            .unwrap_or_else(TraceId::generate);
        let ctx = TraceContext::root(trace_id);
        // Keep-alive is honored only while not shutting down — a
        // draining server must not invite follow-up requests.
        let keep = request.wants_keep_alive()
            && !self.draining
            && !self.inner.shutting_down.load(Ordering::SeqCst);
        let rs = ReqState {
            ctx,
            started,
            method: request.method.clone(),
            path: request.path.clone(),
            keep,
        };
        let v2 = request.path == "/v2/align/topk";
        let is_topk = request.method == "POST" && (v2 || request.path == "/v1/align/topk");
        if request.method == "POST" && request.path == "/v1/admin/swap" {
            self.dispatch_swap(token, &request, rs);
            return;
        }
        if !is_topk {
            self.inner.in_flight.fetch_add(1, Ordering::Relaxed);
            let reply = {
                let _scope = rs.ctx.enter();
                route(&self.inner, &request, started)
            };
            self.inner.in_flight.fetch_sub(1, Ordering::Relaxed);
            self.respond(token, reply, &rs);
            return;
        }
        galign_telemetry::counter_add(
            if v2 {
                "serve.route.topk_v2"
            } else {
                "serve.route.topk"
            },
            1,
        );
        self.inner.in_flight.fetch_add(1, Ordering::Relaxed);
        // Capture the trace context *under* this request's context so
        // worker-side stages land in this trace across the thread hop.
        let handle = {
            let _scope = rs.ctx.enter();
            PropagationHandle::capture()
        };
        // Clamp this request's deadline to the remaining budget the
        // caller advertised, if any: a hop that arrives with 40ms of
        // client patience left must not sit in the coalescer for the
        // server's full default deadline.
        let deadline = match request
            .header(DEADLINE_HEADER)
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            Some(budget_ms) => {
                let budget = Duration::from_millis(budget_ms);
                if budget < self.inner.cfg.deadline {
                    galign_telemetry::counter_add("serve.topk.deadline_clamped", 1);
                }
                budget.min(self.inner.cfg.deadline)
            }
            None => self.inner.cfg.deadline,
        };
        let job = Job::new(
            token,
            request.body,
            v2,
            handle,
            self.inner.generation(),
            started,
            deadline,
        );
        // Increment before enqueue: a worker may flush (and decrement)
        // the instant the job lands, and incrementing afterwards would
        // let the counter underflow, which /healthz would read as a
        // saturated queue.
        self.inner.pending.fetch_add(1, Ordering::Relaxed);
        match self.co.enqueue(job) {
            Ok(()) => {
                self.reqs.insert(token, rs);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Dispatched;
                    set_interest(&self.poller, conn, token, false, false);
                }
            }
            Err(_refused) => {
                self.inner.pending.fetch_sub(1, Ordering::Relaxed);
                self.inner.in_flight.fetch_sub(1, Ordering::Relaxed);
                self.inner.shed_total.fetch_add(1, Ordering::Relaxed);
                galign_telemetry::counter_add("serve.http.shed", 1);
                let rs = ReqState { keep: false, ..rs };
                self.respond(
                    token,
                    Reply::json(503, error_body("server overloaded, retry later")),
                    &rs,
                );
            }
        }
    }

    /// `POST /v1/admin/swap` runs off the loop: loading an artifact means
    /// reading and deserializing a potentially large file, which inline
    /// would stall every connection (reads, writes, accepts, timeouts)
    /// for the full load. The connection parks as `Dispatched` — exactly
    /// like a coalesced top-k job — and a short-lived thread performs the
    /// load and sends the reply back through the completion channel.
    /// Swaps are rare admin operations, so a thread per swap is fine.
    fn dispatch_swap(&mut self, token: u64, request: &Request, rs: ReqState) {
        galign_telemetry::counter_add("serve.route.swap", 1);
        self.inner.in_flight.fetch_add(1, Ordering::Relaxed);
        self.reqs.insert(token, rs);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.state = ConnState::Dispatched;
            set_interest(&self.poller, conn, token, false, false);
        }
        let inner = Arc::clone(&self.inner);
        let done_tx = self.done_tx.clone();
        let wake_tx = self.wake_tx.try_clone().ok();
        let body = request.body.clone();
        std::thread::spawn(move || {
            let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                swap_route(&inner, &body)
            }))
            .unwrap_or_else(|_| Reply::json(500, error_body("internal server error")));
            if done_tx.send(Completion { token, reply }).is_ok() {
                if let Some(wake_tx) = &wake_tx {
                    evloop::wake(wake_tx);
                }
            }
        });
    }

    /// Renders a reply onto the connection, runs the request's metrics
    /// and trace tail, and starts draining the bytes. Works (minus the
    /// write) even when the connection has since closed.
    fn respond(&mut self, token: u64, mut reply: Reply, rs: &ReqState) {
        if reply.generation == 0 {
            reply.generation = self.inner.generation().number;
        }
        let mut extra_headers = vec![
            (TRACE_HEADER, rs.ctx.trace_id().to_hex()),
            (GENERATION_HEADER, reply.generation.to_string()),
        ];
        // Every 503 this server emits means "overloaded, come back
        // later", so they all carry Retry-After.
        if reply.status == 503 {
            extra_headers.push(("retry-after", self.inner.cfg.retry_after_secs.to_string()));
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.served > 0 {
                galign_telemetry::counter_add("serve.http.keepalive.reused", 1);
            }
            let mut out = Vec::with_capacity(reply.body.len() + 256);
            let _ = http::write_response_with_options(
                &mut out,
                reply.status,
                reply.content_type,
                &extra_headers,
                reply.body.as_bytes(),
                rs.keep,
            );
            conn.out = out;
            conn.out_pos = 0;
            conn.state = ConnState::Writing;
            conn.keep_after_write = rs.keep;
            conn.deadline = Instant::now() + self.inner.cfg.request_timeout;
        }
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("serve.http.requests", 1);
            galign_telemetry::counter_add(
                match reply.status {
                    200 => "serve.http.status.2xx",
                    500..=599 => "serve.http.status.5xx",
                    _ => "serve.http.status.4xx",
                },
                1,
            );
            galign_telemetry::gauge_set(
                "serve.in_flight",
                self.inner.in_flight.load(Ordering::Relaxed) as f64,
            );
            galign_telemetry::gauge_set(
                "serve.pending",
                self.inner.pending.load(Ordering::Relaxed) as f64,
            );
            galign_telemetry::histogram_record(
                "serve.request.ms",
                rs.started.elapsed().as_secs_f64() * 1e3,
            );
        }
        finish_trace(
            &self.inner,
            &rs.ctx,
            &rs.method,
            &rs.path,
            &reply,
            rs.started,
        );
        self.advance_write(token);
    }

    /// Pushes pending response bytes; on completion either re-arms the
    /// connection for its next request or closes it.
    fn advance_write(&mut self, token: u64) {
        enum After {
            None,
            Close,
            Pipeline,
        }
        let after = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Writing {
                return;
            }
            let mut after = After::None;
            loop {
                if conn.out_pos >= conn.out.len() {
                    conn.out.clear();
                    conn.out_pos = 0;
                    if !conn.keep_after_write || conn.read_closed || self.draining {
                        after = After::Close;
                    } else {
                        conn.state = ConnState::Reading;
                        conn.served += 1;
                        set_interest(&self.poller, conn, token, true, false);
                        if conn.buf.is_empty() {
                            conn.deadline = Instant::now()
                                + self.inner.cfg.keep_alive_idle.max(Duration::from_millis(1));
                        } else {
                            // Pipelined bytes already buffered: treat them
                            // as an in-progress request, not idle time.
                            conn.deadline = Instant::now() + self.inner.cfg.request_timeout;
                            after = After::Pipeline;
                        }
                    }
                    break;
                }
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        after = After::Close;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        set_interest(&self.poller, conn, token, false, true);
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        after = After::Close;
                        break;
                    }
                }
            }
            after
        };
        match after {
            After::None => {}
            After::Close => self.close_conn(token),
            After::Pipeline => self.try_advance(token),
        }
    }

    /// Enforces per-connection progress deadlines. Dispatched
    /// connections are exempt — the worker-side request deadline decides
    /// their fate.
    fn check_timeouts(&mut self) {
        let now = Instant::now();
        let expired: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state != ConnState::Dispatched && now >= c.deadline)
            .map(|(&t, c)| {
                // A fresh connection whose first request never arrived
                // gets a 408; an idle keep-alive connection (or a stalled
                // response drain) closes silently — an unsolicited 408
                // could be read as the response to the next pooled
                // request.
                let first_request_stalled =
                    c.state == ConnState::Reading && c.served == 0 && !c.read_closed;
                (t, first_request_stalled)
            })
            .collect();
        for (token, timed_out) in expired {
            if timed_out {
                let rs = ReqState {
                    ctx: TraceContext::root(TraceId::generate()),
                    started: now,
                    method: "-".to_string(),
                    path: "-".to_string(),
                    keep: false,
                };
                self.respond(
                    token,
                    Reply::json(408, error_body("request timed out")),
                    &rs,
                );
            } else {
                self.close_conn(token);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.registered {
                let _ = self.poller.deregister(evloop::fd_of(&conn.stream), token);
            }
        }
    }
}

/// Completes a request's observability tail: one flight-recorder entry
/// and (when configured) one access-log JSONL line, both carrying the
/// trace id echoed in the response header. `method`/`path` are `"-"` for
/// requests that never parsed.
fn finish_trace(
    inner: &Inner,
    trace: &TraceContext,
    method: &str,
    path: &str,
    reply: &Reply,
    started: Instant,
) {
    let (events, notes) = trace.take_events();
    let total_us = started.elapsed().as_micros() as u64;
    let deadline_remaining_us = inner
        .cfg
        .deadline
        .saturating_sub(started.elapsed())
        .as_micros() as u64;
    if let Some(log) = &inner.access_log {
        let mut line = format!(
            "{{\"ms\":{},\"trace\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\"engine\":\"{}\",\"us\":{total_us},\"deadline_remaining_us\":{deadline_remaining_us}",
            galign_telemetry::sink::json_f64(galign_telemetry::clock_ms()),
            trace.trace_id(),
            json::escape(method),
            json::escape(path),
            reply.status,
            reply.engine,
        );
        for (key, value) in &notes {
            line.push_str(&format!(",\"{}\":{value}", json::escape(key)));
        }
        line.push('}');
        let mut w = log.lock().expect("access log lock");
        let _ = writeln!(w, "{line}");
    }
    inner.flight.record(TraceRecord {
        trace_id: trace.trace_id(),
        kind: RecordKind::Request,
        name: format!("{method} {path}"),
        status: reply.status,
        engine: reply.engine.to_string(),
        end_ms: galign_telemetry::clock_ms(),
        total_us,
        events,
        notes,
        fields: Vec::new(),
    });
}

pub(crate) fn error_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json::escape(msg))
}

fn route(inner: &Inner, request: &Request, started: Instant) -> Reply {
    // One generation per request: everything below reads `generation`,
    // never the swap slot, so a concurrent hot swap cannot hand a request
    // a mix of old and new data.
    let generation = inner.generation();
    let mut reply = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            galign_telemetry::counter_add("serve.route.healthz", 1);
            Reply::json(200, healthz(inner, &generation))
        }
        ("POST", "/v1/align/topk") => {
            galign_telemetry::counter_add("serve.route.topk", 1);
            topk_route(inner, &generation, &request.body, started)
        }
        ("POST", "/v2/align/topk") => {
            galign_telemetry::counter_add("serve.route.topk_v2", 1);
            batch::run_single(inner, &generation, &request.body, started, true)
        }
        ("GET", "/metrics") => {
            galign_telemetry::counter_add("serve.route.metrics", 1);
            // Refresh the load gauges so the snapshot reflects *now*, not
            // the last completed request.
            galign_telemetry::gauge_set(
                "serve.in_flight",
                inner.in_flight.load(Ordering::Relaxed) as f64,
            );
            galign_telemetry::gauge_set(
                "serve.pending",
                inner.pending.load(Ordering::Relaxed) as f64,
            );
            // Index engine state: whether an ANN index is attached and the
            // `auto` switchover point. Candidate-set sizes arrive as the
            // `index.search.candidates` histogram from galign-index.
            galign_telemetry::gauge_set(
                "serve.index.ann_attached",
                if generation.index.has_ann() { 1.0 } else { 0.0 },
            );
            galign_telemetry::gauge_set(
                "serve.index.auto_threshold",
                generation.index.auto_threshold() as f64,
            );
            set_artifact_gauges(&generation.index);
            if request.query_param("format") == Some("prometheus") {
                Reply {
                    status: 200,
                    content_type: galign_telemetry::prom::CONTENT_TYPE,
                    body: galign_telemetry::prom::render(&galign_telemetry::snapshot()),
                    engine: "",
                    generation: 0,
                }
            } else {
                Reply::json(200, galign_telemetry::snapshot_json())
            }
        }
        ("GET", "/v1/debug/requests") => {
            galign_telemetry::counter_add("serve.route.debug_requests", 1);
            Reply::json(200, inner.flight.to_json())
        }
        ("POST", "/v1/admin/shutdown") => {
            galign_telemetry::info!("serve", "shutdown requested via admin endpoint");
            begin_shutdown(inner);
            Reply::json(200, "{\"status\":\"shutting-down\"}".to_string())
        }
        // The event loop never routes swaps here — `dispatch_swap`
        // intercepts them so the artifact load runs off the loop. This
        // arm serves direct `route()` callers (tests).
        ("POST", "/v1/admin/swap") => {
            galign_telemetry::counter_add("serve.route.swap", 1);
            swap_route(inner, &request.body)
        }
        ("GET" | "HEAD", "/v1/align/topk" | "/v2/align/topk")
        | ("POST", "/healthz" | "/metrics" | "/v1/debug/requests")
        | ("GET", "/v1/admin/swap" | "/v1/admin/shutdown") => {
            Reply::json(405, error_body("wrong method for this path"))
        }
        _ => Reply::json(404, error_body("no such endpoint")),
    };
    if reply.generation == 0 {
        reply.generation = generation.number;
    }
    reply
}

/// `POST /v1/align/topk`: the single-query path, served through the same
/// planning/execution code as a coalesced batch of one.
fn topk_route(inner: &Inner, generation: &Arc<Generation>, body: &[u8], started: Instant) -> Reply {
    batch::run_single(inner, generation, body, started, false)
}

/// `POST /v1/admin/swap` with `{"artifact": "/path"}`: loads the artifact
/// and installs it as the next generation.
fn swap_route(inner: &Inner, body: &[u8]) -> Reply {
    let parse = || -> Result<String, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        doc.get("artifact")
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| "body needs \"artifact\" (path string)".to_string())
    };
    let path = match parse() {
        Ok(p) => p,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    match swap_from_path(inner, &path) {
        Ok(number) => {
            galign_telemetry::info!("serve", "admin swap: {path} is now generation {number}");
            let mut reply = Reply::json(
                200,
                format!("{{\"status\":\"swapped\",\"generation\":{number}}}"),
            );
            // Stamp the *new* generation: the caller's next query sees it.
            reply.generation = number;
            reply
        }
        Err(msg) => {
            galign_telemetry::counter_add("serve.swap.errors", 1);
            Reply::json(400, error_body(&msg))
        }
    }
}

fn healthz(inner: &Inner, generation: &Generation) -> String {
    let pending = inner.pending.load(Ordering::Relaxed);
    let in_flight = inner.in_flight.load(Ordering::Relaxed);
    let shed_total = inner.shed_total.load(Ordering::Relaxed);
    // Degraded = the pending queue is at least half full: requests are
    // still served but the next burst will start shedding. An absent ANN
    // index is NOT degraded — exact-only serving is a fully correct mode,
    // just linear-time; the `index` field says which it is.
    let degraded = pending.saturating_mul(2) >= inner.cfg.queue_depth.max(1) as u64;
    let status = if degraded { "degraded" } else { "ok" };
    // Health transitions drive the flight recorder: flipping to degraded
    // freezes it (preserving the window of traces that *led into* the
    // incident), recovering thaws it. Both transitions are logged as
    // incidents so the timeline shows when and why the window froze.
    if degraded != inner.health_degraded.swap(degraded, Ordering::AcqRel) {
        if degraded {
            // The incident marker goes in *before* the freeze so it is the
            // newest record inside the preserved window.
            flight::record_incident(
                "serve.health.degraded",
                vec![("pending".to_string(), pending.to_string())],
            );
            if inner.flight.freeze() {
                galign_telemetry::info!(
                    "serve",
                    "health degraded (pending {pending}): flight recorder frozen"
                );
            }
        } else {
            inner.flight.unfreeze();
            flight::record_incident("serve.health.recovered", Vec::new());
            galign_telemetry::info!("serve", "health recovered: flight recorder thawed");
        }
    }
    // Shard nodes advertise their slice so a router can discover the
    // topology by probing /healthz. The parent checksum is hex — u64
    // values can exceed what a float-backed JSON reader keeps exact.
    let shard = match generation.index.shard_manifest() {
        Some(m) => format!(
            ",\"shard\":{{\"shard_id\":{},\"num_shards\":{},\"start\":{},\"end\":{},\"parent_targets\":{},\"parent_checksum\":\"{:016x}\"}}",
            m.shard_id, m.num_shards, m.start, m.end, m.parent_targets, m.parent_checksum,
        ),
        None => String::new(),
    };
    format!(
        "{{\"status\":\"{status}\",\"source_nodes\":{},\"target_nodes\":{},\"layers\":{},\"workers\":{},\"cache_entries\":{},\"pending\":{pending},\"in_flight\":{in_flight},\"shed_total\":{shed_total},\"queue_depth\":{},\"index\":\"{}\",\"mode\":\"{}\",\"quant\":\"{}\",\"quant_available\":\"{}\",\"artifact_f64_bytes\":{},\"artifact_quant_bytes\":{},\"generation\":{}{shard}}}",
        generation.index.source_nodes(),
        generation.index.target_nodes(),
        generation.index.num_layers(),
        inner.cfg.workers.max(1),
        inner.cache.len(),
        inner.cfg.queue_depth,
        generation
            .index
            .ann_backend()
            .map_or("none", galign_index::Backend::name),
        inner.cfg.default_mode,
        inner.cfg.quant,
        generation
            .index
            .quant_available()
            .map_or("none", QuantMode::name),
        generation.index.f64_resident_bytes(),
        generation.index.quant_resident_bytes(),
        generation.number,
    )
}

/// The 3×2 single-layer index most server/batch unit tests run against.
#[cfg(test)]
pub(crate) fn test_index() -> TopkIndex {
    use crate::artifact::{Artifact, Mat};
    let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
    TopkIndex::from_artifact(Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap())
}

/// An [`Inner`] over [`test_index`] without any sockets, for unit tests
/// here and in [`crate::batch`].
#[cfg(test)]
pub(crate) fn test_inner_with(cfg: ServerConfig) -> Inner {
    Inner {
        index: generation_slot(test_index()),
        cache: ShardedCache::new(64, 2),
        cfg,
        addr: "127.0.0.1:0".parse().unwrap(),
        shutting_down: AtomicBool::new(false),
        pending: AtomicU64::new(0),
        in_flight: AtomicU64::new(0),
        shed_total: AtomicU64::new(0),
        // A private recorder per test Inner: freeze/thaw tests must
        // not interfere with the process-global one.
        flight: Box::leak(Box::new(FlightRecorder::new(32, 4))),
        health_degraded: AtomicBool::new(false),
        access_log: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, Mat};

    fn test_inner() -> Inner {
        test_inner_with(ServerConfig::default())
    }

    /// `(status, body)` view of a route reply, for assertion brevity.
    fn topk_route2(inner: &Inner, body: &[u8], started: Instant) -> (u16, String) {
        let generation = inner.generation();
        let r = topk_route(inner, &generation, body, started);
        (r.status, r.body)
    }

    /// Current-generation healthz body, for assertion brevity.
    fn healthz2(inner: &Inner) -> String {
        healthz(inner, &inner.generation())
    }

    #[test]
    fn topk_route_happy_path_and_cache() {
        let inner = test_inner();
        let (status, body) = topk_route2(&inner, br#"{"nodes":[0,1],"k":2}"#, Instant::now());
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        let first = results[0].get("matches").unwrap().as_arr().unwrap();
        assert_eq!(first[0].get("target").unwrap().as_usize(), Some(0));
        // Second identical request is served from the cache.
        let (status2, body2) = topk_route2(&inner, br#"{"nodes":[0,1],"k":2}"#, Instant::now());
        assert_eq!(status2, 200);
        assert_eq!(body, body2);
        let (hits, misses) = inner.cache.stats();
        assert_eq!((hits, misses), (2, 2));
    }

    #[test]
    fn topk_route_rejects_bad_bodies() {
        let inner = test_inner();
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"{}"#, "nodes"),
            (br#"{"nodes":[]}"#, "empty"),
            (br#"{"nodes":[0],"k":0}"#, "k"),
            (br#"{"nodes":[0],"k":100000}"#, "limit"),
            (br#"{"nodes":[99]}"#, "out of range"),
            (br#"{"nodes":[0],"theta":[1.0,2.0]}"#, "theta"),
            (br#"{"nodes":[-1]}"#, "non-negative"),
        ] {
            let (status, msg) = topk_route2(&inner, body, Instant::now());
            assert_eq!(status, 400, "body {body:?} gave {msg}");
            assert!(
                msg.to_lowercase().contains(&needle.to_lowercase()),
                "error {msg:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn exceeded_deadline_returns_503() {
        let inner = test_inner_with(ServerConfig {
            deadline: Duration::ZERO,
            ..ServerConfig::default()
        });
        let (status, body) = topk_route2(&inner, br#"{"nodes":[0]}"#, Instant::now());
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("deadline"), "{body}");
    }

    #[test]
    fn healthz_reports_load_and_degrades_when_queue_fills() {
        let inner = test_inner_with(ServerConfig {
            queue_depth: 4,
            ..ServerConfig::default()
        });
        inner.in_flight.store(3, Ordering::Relaxed);
        inner.shed_total.store(7, Ordering::Relaxed);
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("in_flight").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("shed_total").unwrap().as_usize(), Some(7));
        assert_eq!(doc.get("queue_depth").unwrap().as_usize(), Some(4));
        // Half-full pending queue flips the status to degraded.
        inner.pending.store(2, Ordering::Relaxed);
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(doc.get("pending").unwrap().as_usize(), Some(2));
    }

    #[test]
    fn single_node_form_and_theta_override() {
        let inner = test_inner();
        let (status, body) =
            topk_route2(&inner, br#"{"node":2,"k":1,"theta":[1.0]}"#, Instant::now());
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let matches = doc.get("results").unwrap().as_arr().unwrap()[0]
            .get("matches")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].get("target").unwrap().as_usize(), Some(2));
    }

    #[test]
    fn mode_field_routes_and_reports_engine() {
        let inner = test_inner();
        // No ANN index attached: every mode serves exact, 200, engine
        // "exact" — absence of the index is degraded-capability, not error.
        for mode in ["exact", "ann", "auto"] {
            let body = format!("{{\"nodes\":[0],\"k\":1,\"mode\":\"{mode}\"}}");
            let (status, out) = topk_route2(&inner, body.as_bytes(), Instant::now());
            assert_eq!(status, 200, "{out}");
            let doc = json::parse(&out).unwrap();
            assert_eq!(doc.get("engine").unwrap().as_str(), Some("exact"));
        }
        let (status, out) = topk_route2(&inner, br#"{"nodes":[0],"mode":"warp"}"#, Instant::now());
        assert_eq!(status, 400);
        assert!(out.contains("mode"), "{out}");
    }

    #[test]
    fn ann_engine_reported_and_cached_separately() {
        let mut index = test_index();
        index.build_ann(crate::topk::Backend::Ivf).unwrap();
        index.set_auto_threshold(1);
        let inner = test_inner();
        install_index(&inner, index);
        let (status, out) = topk_route2(
            &inner,
            br#"{"nodes":[0],"k":2,"mode":"ann"}"#,
            Instant::now(),
        );
        assert_eq!(status, 200, "{out}");
        let doc = json::parse(&out).unwrap();
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("ann"));
        // An exact request for the same node must miss the ANN entry.
        let (_, out2) = topk_route2(
            &inner,
            br#"{"nodes":[0],"k":2,"mode":"exact"}"#,
            Instant::now(),
        );
        let doc2 = json::parse(&out2).unwrap();
        assert_eq!(doc2.get("engine").unwrap().as_str(), Some("exact"));
        let (hits, misses) = inner.cache.stats();
        assert_eq!((hits, misses), (0, 2), "engines must not share entries");
        // Tiny n: ANN+re-rank and exact agree bit-for-bit.
        assert_eq!(
            doc.get("results").unwrap().as_arr().unwrap().len(),
            doc2.get("results").unwrap().as_arr().unwrap().len()
        );
    }

    #[test]
    fn healthz_reports_index_state_and_stays_ok_without_ann() {
        let inner = test_inner();
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("index").unwrap().as_str(), Some("none"));
        let with_ann = test_inner();
        let mut index = test_index();
        index.build_ann(crate::topk::Backend::Hnsw).unwrap();
        install_index(&with_ann, index);
        let doc = json::parse(&healthz2(&with_ann)).unwrap();
        assert_eq!(doc.get("index").unwrap().as_str(), Some("hnsw"));
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("auto"));
    }

    #[test]
    fn healthz_reports_quant_state_and_artifact_bytes() {
        let inner = test_inner();
        let doc = json::parse(&healthz2(&inner)).unwrap();
        // The plain test artifact has no panels and the default config
        // serves f64 scans.
        assert_eq!(doc.get("quant").unwrap().as_str(), Some("off"));
        assert_eq!(doc.get("quant_available").unwrap().as_str(), Some("none"));
        let f64_bytes = doc.get("artifact_f64_bytes").unwrap().as_usize().unwrap();
        // 3×2 f64 rows on each side of one layer.
        assert_eq!(f64_bytes, 2 * 3 * 2 * 8);
        assert_eq!(doc.get("artifact_quant_bytes").unwrap().as_usize(), Some(0));
        // A quantized artifact advertises its resident encoding and a
        // non-zero quantized footprint.
        let with_quant = test_inner_with(ServerConfig {
            quant: crate::topk::QuantMode::Int8,
            ..ServerConfig::default()
        });
        let artifact = crate::artifact::tests::quantizable_artifact(7)
            .with_quant(galign_quant::QuantMode::Int8, true)
            .unwrap();
        install_index(&with_quant, TopkIndex::from_artifact(artifact));
        let doc = json::parse(&healthz2(&with_quant)).unwrap();
        assert_eq!(doc.get("quant").unwrap().as_str(), Some("int8"));
        assert_eq!(doc.get("quant_available").unwrap().as_str(), Some("int8"));
        assert!(doc.get("artifact_quant_bytes").unwrap().as_usize().unwrap() > 0);
    }

    #[test]
    fn routing_table() {
        let inner = test_inner();
        let req = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: String::new(),
            headers: vec![],
            body: br#"{"nodes":[0]}"#.to_vec(),
        };
        let now = Instant::now;
        assert_eq!(route(&inner, &req("GET", "/healthz"), now()).status, 200);
        assert_eq!(route(&inner, &req("GET", "/metrics"), now()).status, 200);
        assert_eq!(
            route(&inner, &req("POST", "/v1/align/topk"), now()).status,
            200
        );
        assert_eq!(
            route(&inner, &req("GET", "/v1/align/topk"), now()).status,
            405
        );
        assert_eq!(
            route(&inner, &req("GET", "/v2/align/topk"), now()).status,
            405
        );
        assert_eq!(route(&inner, &req("POST", "/metrics"), now()).status, 405);
        assert_eq!(
            route(&inner, &req("POST", "/v1/debug/requests"), now()).status,
            405
        );
        assert_eq!(
            route(&inner, &req("GET", "/v1/debug/requests"), now()).status,
            200
        );
        assert_eq!(
            route(&inner, &req("GET", "/v1/admin/swap"), now()).status,
            405
        );
        assert_eq!(route(&inner, &req("GET", "/nope"), now()).status, 404);
        // v2 takes the batch envelope, not a bare query object.
        let mut v2 = req("POST", "/v2/align/topk");
        assert_eq!(route(&inner, &v2, now()).status, 400);
        v2.body = br#"{"queries":[{"nodes":[0]}]}"#.to_vec();
        let reply = route(&inner, &v2, now());
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.starts_with("{\"results\":["), "{}", reply.body);
        let health = route(&inner, &req("GET", "/healthz"), now()).body;
        let doc = json::parse(&health).unwrap();
        assert_eq!(doc.get("source_nodes").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn swap_installs_next_generation_and_clears_cache() {
        let inner = test_inner();
        let (status, body) = topk_route2(&inner, br#"{"nodes":[0],"k":2}"#, Instant::now());
        assert_eq!(status, 200, "{body}");
        assert_eq!(inner.cache.len(), 1);
        assert_eq!(inner.generation().number, 1);
        // Write a fresh (different-data) artifact and swap to it.
        let m = Mat::new(3, 2, vec![0.0, 1.0, 1.0, 0.0, 0.5, 0.5]).unwrap();
        let artifact = Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap();
        let dir = std::env::temp_dir().join("galign-serve-swap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.galign");
        std::fs::write(&path, artifact.to_bytes()).unwrap();
        let body = format!("{{\"artifact\":\"{}\"}}", path.display());
        let reply = swap_route(&inner, body.as_bytes());
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"generation\":2"), "{}", reply.body);
        assert_eq!(inner.generation().number, 2);
        assert_eq!(inner.cache.len(), 0, "swap must clear cached hits");
        let doc = json::parse(&healthz2(&inner)).unwrap();
        assert_eq!(doc.get("generation").unwrap().as_usize(), Some(2));
        // Bad bodies and unreadable paths are 400s, not crashes.
        assert_eq!(swap_route(&inner, b"{}").status, 400);
        assert_eq!(
            swap_route(&inner, br#"{"artifact":"/no/such/file"}"#).status,
            400
        );
        assert_eq!(inner.generation().number, 2, "failed swaps install nothing");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn request_pinned_to_old_generation_cannot_poison_the_cache() {
        let inner = test_inner();
        // Pin a generation, then let a swap land "mid-request".
        let pinned = inner.generation();
        install_index(&inner, test_index());
        assert_eq!(inner.generation().number, 2);
        // The pinned request finishes and inserts under its own (old)
        // generation key...
        let reply = topk_route(&inner, &pinned, br#"{"nodes":[0],"k":2}"#, Instant::now());
        assert_eq!(reply.status, 200);
        assert_eq!(reply.generation, 1, "reply reports the generation it used");
        // ...so a post-swap request misses it and recomputes.
        let (hits_before, _) = inner.cache.stats();
        let reply2 = topk_route2(&inner, br#"{"nodes":[0],"k":2}"#, Instant::now());
        assert_eq!(reply2.0, 200);
        let (hits_after, misses) = inner.cache.stats();
        assert_eq!(hits_after, hits_before, "stale entry must not be served");
        assert_eq!(misses, 2);
    }

    #[test]
    fn shard_identity_guard_blocks_range_changes() {
        let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
        let parent = Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap();
        let shards = parent.split(2, None).unwrap();
        let idx = |a: &Artifact| TopkIndex::from_artifact(a.clone());
        // Same slice, fresh data: allowed. Different slice or shard/plain
        // mixing: refused.
        assert!(shard_identity_ok(&idx(&shards[0]), &idx(&shards[0])).is_ok());
        assert!(shard_identity_ok(&idx(&shards[0]), &idx(&shards[1])).is_err());
        assert!(shard_identity_ok(&idx(&shards[0]), &idx(&parent)).is_err());
        assert!(shard_identity_ok(&idx(&parent), &idx(&shards[0])).is_err());
        assert!(shard_identity_ok(&idx(&parent), &idx(&parent)).is_ok());
    }

    #[test]
    fn healthz_advertises_shard_manifest() {
        let m = Mat::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
        let parent = Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap();
        let checksum = parent.target_checksum();
        let shard = parent.split(3, None).unwrap().remove(1);
        let inner = test_inner();
        install_index(&inner, TopkIndex::from_artifact(shard));
        let doc = json::parse(&healthz2(&inner)).unwrap();
        let shard = doc.get("shard").expect("shard block");
        assert_eq!(shard.get("shard_id").unwrap().as_usize(), Some(1));
        assert_eq!(shard.get("num_shards").unwrap().as_usize(), Some(3));
        assert_eq!(shard.get("start").unwrap().as_usize(), Some(1));
        assert_eq!(shard.get("end").unwrap().as_usize(), Some(2));
        assert_eq!(
            shard.get("parent_checksum").unwrap().as_str(),
            Some(format!("{checksum:016x}").as_str())
        );
    }

    #[test]
    fn prometheus_format_renders_and_validates() {
        let inner = test_inner();
        galign_telemetry::counter_add("serve.route.metrics", 1);
        let req = Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: "format=prometheus".into(),
            headers: vec![],
            body: vec![],
        };
        let reply = route(&inner, &req, Instant::now());
        assert_eq!(reply.status, 200);
        assert_eq!(reply.content_type, galign_telemetry::prom::CONTENT_TYPE);
        galign_telemetry::prom::validate_exposition(&reply.body).expect("valid exposition");
    }

    #[test]
    fn flight_recorder_captures_routed_requests() {
        let inner = test_inner();
        let trace = galign_telemetry::TraceContext::root(galign_telemetry::TraceId::generate());
        let trace_id = trace.trace_id();
        let request = Request {
            method: "POST".into(),
            path: "/v1/align/topk".into(),
            query: String::new(),
            headers: vec![],
            body: br#"{"nodes":[0],"k":1}"#.to_vec(),
        };
        let started = Instant::now();
        let reply = {
            let _guard = trace.enter();
            route(&inner, &request, started)
        };
        assert_eq!(reply.status, 200);
        finish_trace(&inner, &trace, "POST", "/v1/align/topk", &reply, started);
        let rec = inner
            .flight
            .find(trace_id)
            .expect("flight recorder holds the trace");
        assert_eq!(rec.status, 200);
        assert_eq!(rec.name, "POST /v1/align/topk");
        assert!(
            rec.events.iter().any(|e| e.name == "parse"),
            "expected a parse stage span, got {:?}",
            rec.events.iter().map(|e| e.name).collect::<Vec<_>>()
        );
        // The debug endpoint serves the same record.
        let dump = inner.flight.to_json();
        assert!(dump.contains(&trace_id.to_hex()));
    }

    #[test]
    fn builder_overrides_defaults_and_old_name_still_compiles() {
        let cfg = ServerConfig::builder()
            .workers(2)
            .max_k(50)
            .deadline(Duration::from_secs(1))
            .batch_window(Duration::from_millis(1))
            .batch_cap(8)
            .max_connections(99)
            .ann_threshold(12)
            .generation_pointer("/tmp/galign-pointer")
            .build();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.max_k, 50);
        assert_eq!(cfg.batch_cap, 8);
        assert_eq!(cfg.max_connections, 99);
        assert_eq!(cfg.ann_threshold, Some(12));
        assert_eq!(
            cfg.generation_pointer.as_deref(),
            Some(std::path::Path::new("/tmp/galign-pointer"))
        );
        // Unset fields keep their defaults.
        assert_eq!(cfg.default_k, ServerConfig::default().default_k);
        // The historical type name is an alias, not a fork.
        let legacy: ServeConfig = cfg;
        assert_eq!(legacy.workers, 2);
    }

    #[test]
    fn v2_route_isolates_per_query_errors_and_matches_v1_bodies() {
        let inner = test_inner();
        let generation = inner.generation();
        let reply = batch::run_single(
            &inner,
            &generation,
            br#"{"queries":[{"nodes":[0,1],"k":2},{"nodes":[99],"k":1}]}"#,
            Instant::now(),
            true,
        );
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = json::parse(&reply.body).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].get("error").is_none());
        assert!(
            results[1]
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap()
                .contains("out of range"),
            "{}",
            reply.body
        );
        // The good slot is byte-identical to the v1 answer for the same
        // query (rendered through the same TopkResponse path).
        let (status, v1) = topk_route2(&inner, br#"{"nodes":[0,1],"k":2}"#, Instant::now());
        assert_eq!(status, 200);
        let needle = format!("{{\"results\":[{v1},");
        assert!(
            reply.body.starts_with(&needle),
            "v2 slot should embed the v1 body:\n{}\nvs\n{v1}",
            reply.body
        );
    }
}
