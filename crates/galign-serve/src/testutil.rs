//! A tiny deterministic xorshift64* generator for tests, examples and the
//! loadtest binary. The serving crate deliberately avoids the workspace's
//! `rand` dependency so it stays std-only.

/// Seeded xorshift64* PRNG. Not cryptographic; stable across platforms.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Creates a generator from a nonzero-ified seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Xorshift {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[-1, 1)`.
    pub fn f64_signed(&mut self) -> f64 {
        self.f64() * 2.0 - 1.0
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..1000 {
            let v = a.f64();
            assert_eq!(v, b.f64());
            assert!((0.0..1.0).contains(&v));
            assert!(a.below(7) < 7);
            assert!(b.below(7) < 7);
        }
        let mut c = Xorshift::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
