//! The top-k alignment query kernel.
//!
//! Since the `simblock` redesign this module holds **no scoring code of its
//! own**: queries are validated here and then delegated to the shared
//! blocked engine in [`galign_matrix::simblock`] — the same
//! [`SimPanel`] panel GEMM that backs
//! the batch pipeline's matching stage. Scores are θ-weighted sums of
//! per-layer dot products over row-L2-normalized embeddings — exactly the
//! aggregated alignment matrix `S = Σ_l θ⁽ˡ⁾ H_s⁽ˡ⁾ H_t⁽ˡ⁾ᵀ` (paper
//! Eq. 11–12), evaluated one source row at a time with bounded-heap
//! selection (`O(n log k)`), and query batches fan out across rayon
//! workers via [`galign_matrix::simblock::topk_rows`].

use crate::artifact::{Artifact, Mat};
use galign_matrix::simblock::{self, ScoreProvider, SimPanel};
use galign_matrix::Dense;
use std::fmt;

pub use galign_matrix::simblock::{select_topk, select_topk_bruteforce, Hit};

/// A rejected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A queried node id is not in the source network.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Source-network node count.
        nodes: usize,
    },
    /// `k` must be at least 1.
    ZeroK,
    /// A per-query θ override has the wrong number of weights.
    BadThetaLength {
        /// Weights supplied.
        got: usize,
        /// Layers in the index.
        want: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "node {node} out of range (source network has {nodes} nodes)"
                )
            }
            QueryError::ZeroK => write!(f, "k must be >= 1"),
            QueryError::BadThetaLength { got, want } => {
                write!(f, "theta has {got} weights but the index has {want} layers")
            }
        }
    }
}

impl std::error::Error for QueryError {}

fn mat_to_dense(m: Mat) -> Dense {
    let (rows, cols) = (m.rows(), m.cols());
    Dense::from_vec(rows, cols, m.into_vec()).expect("artifact matrices are shape-consistent")
}

/// An in-memory query index over a loaded [`Artifact`]: normalized
/// multi-order embeddings of both networks plus the default θ.
#[derive(Debug)]
pub struct TopkIndex {
    source: Vec<Dense>,
    target: Vec<Dense>,
    theta: Vec<f64>,
}

impl TopkIndex {
    /// Builds the index, row-normalizing the embeddings unless the
    /// artifact says they already are (so that every layer contributes
    /// cosine similarities).
    #[must_use]
    pub fn from_artifact(artifact: Artifact) -> Self {
        let Artifact {
            theta,
            source,
            target,
            rows_normalized,
        } = artifact;
        let convert = |mats: Vec<Mat>| -> Vec<Dense> {
            mats.into_iter()
                .map(|m| {
                    let d = mat_to_dense(m);
                    if rows_normalized {
                        d
                    } else {
                        d.normalize_rows()
                    }
                })
                .collect()
        };
        TopkIndex {
            source: convert(source),
            target: convert(target),
            theta,
        }
    }

    /// Source-network node count.
    #[must_use]
    pub fn source_nodes(&self) -> usize {
        self.source[0].rows()
    }

    /// Target-network node count.
    #[must_use]
    pub fn target_nodes(&self) -> usize {
        self.target[0].rows()
    }

    /// Number of embedding layers per side.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.theta.len()
    }

    /// The artifact's default layer weights.
    #[must_use]
    pub fn default_theta(&self) -> &[f64] {
        &self.theta
    }

    fn check(&self, nodes: &[usize], k: usize, theta: Option<&[f64]>) -> Result<(), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if let Some(t) = theta {
            if t.len() != self.theta.len() {
                return Err(QueryError::BadThetaLength {
                    got: t.len(),
                    want: self.theta.len(),
                });
            }
        }
        let nodes_total = self.source_nodes();
        for &n in nodes {
            if n >= nodes_total {
                return Err(QueryError::NodeOutOfRange {
                    node: n,
                    nodes: nodes_total,
                });
            }
        }
        Ok(())
    }

    /// The shared blocked scoring panel under a (validated) θ.
    fn panel<'a>(&'a self, theta: &'a [f64]) -> SimPanel<'a> {
        SimPanel::new(&self.source, &self.target, theta)
            .expect("artifact layers validated at load time")
    }

    /// Top-k alignment candidates of one source node, best first. Ties
    /// break toward the smaller target id. `k` is clamped to the target
    /// node count; `theta` of `None` uses the artifact default.
    ///
    /// # Errors
    /// [`QueryError`] on an out-of-range node, `k == 0`, or a θ override
    /// of the wrong length.
    pub fn topk(
        &self,
        node: usize,
        k: usize,
        theta: Option<&[f64]>,
    ) -> Result<Vec<Hit>, QueryError> {
        self.check(&[node], k, theta)?;
        let panel = self.panel(theta.unwrap_or(&self.theta));
        Ok(select_topk(&panel.score_row(node), k))
    }

    /// Top-k for a batch of source nodes, parallel across queries.
    ///
    /// # Errors
    /// [`QueryError`] if any node is out of range, `k == 0`, or the θ
    /// override has the wrong length — the whole batch is rejected before
    /// any scoring happens.
    pub fn topk_batch(
        &self,
        nodes: &[usize],
        k: usize,
        theta: Option<&[f64]>,
    ) -> Result<Vec<Vec<Hit>>, QueryError> {
        self.check(nodes, k, theta)?;
        let panel = self.panel(theta.unwrap_or(&self.theta));
        Ok(simblock::topk_rows(&panel, nodes, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;

    fn tiny_index() -> TopkIndex {
        // Two layers; identical source/target embeddings, so node i's best
        // match is target i with cosine 1.
        let data = vec![1.0, 0.0, 0.0, 1.0, 0.6, 0.8, -1.0, 0.5];
        let m = Mat::new(4, 2, data).unwrap();
        let artifact = Artifact::new(
            vec![0.5, 0.5],
            vec![m.clone(), m.clone()],
            vec![m.clone(), m],
            false,
        )
        .unwrap();
        TopkIndex::from_artifact(artifact)
    }

    #[test]
    fn identical_embeddings_rank_self_first() {
        let idx = tiny_index();
        for v in 0..4 {
            let hits = idx.topk(v, 1, None).unwrap();
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].target, v);
            assert!((hits[0].score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn k_clamped_and_sorted_descending() {
        let idx = tiny_index();
        let hits = idx.topk(0, 100, None).unwrap();
        assert_eq!(hits.len(), 4);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn theta_override_changes_scores() {
        let idx = tiny_index();
        // Zero out both layers: every score becomes 0 and ties break by id.
        let hits = idx.topk(2, 2, Some(&[0.0, 0.0])).unwrap();
        assert_eq!(hits[0].target, 0);
        assert_eq!(hits[1].target, 1);
        assert_eq!(hits[0].score, 0.0);
    }

    #[test]
    fn errors_are_specific() {
        let idx = tiny_index();
        assert_eq!(
            idx.topk(9, 1, None).unwrap_err(),
            QueryError::NodeOutOfRange { node: 9, nodes: 4 }
        );
        assert_eq!(idx.topk(0, 0, None).unwrap_err(), QueryError::ZeroK);
        assert_eq!(
            idx.topk(0, 1, Some(&[1.0])).unwrap_err(),
            QueryError::BadThetaLength { got: 1, want: 2 }
        );
        // Batch rejects before scoring anything.
        assert!(idx.topk_batch(&[0, 1, 99], 1, None).is_err());
    }

    #[test]
    fn batch_matches_single_queries() {
        let idx = tiny_index();
        let nodes = [3, 0, 2, 2, 1];
        let batch = idx.topk_batch(&nodes, 3, None).unwrap();
        assert_eq!(batch.len(), nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(batch[i], idx.topk(n, 3, None).unwrap());
        }
    }

    #[test]
    fn select_topk_ties_break_by_smaller_index() {
        let scores = [1.0, 3.0, 3.0, 0.5];
        let hits = select_topk(&scores, 2);
        assert_eq!(hits[0].target, 1);
        assert_eq!(hits[1].target, 2);
        assert_eq!(hits, select_topk_bruteforce(&scores, 2));
    }

    #[test]
    fn select_topk_empty_and_k_zero() {
        assert!(select_topk(&[], 3).is_empty());
        assert!(select_topk(&[1.0], 0).is_empty());
    }
}
