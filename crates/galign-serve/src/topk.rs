//! The top-k alignment query kernel.
//!
//! Scores are θ-weighted sums of per-layer dot products over
//! row-L2-normalized embeddings — exactly the aggregated alignment matrix
//! `S = Σ_l θ⁽ˡ⁾ H_s⁽ˡ⁾ H_t⁽ˡ⁾ᵀ` (paper Eq. 11–12) that the batch pipeline
//! materializes, evaluated one source row at a time. Selection is a
//! bounded min-heap (`O(n log k)` instead of a full `O(n log n)` sort),
//! and query batches fan out across threads (rayon under the default
//! `parallel` feature, `std::thread::scope` chunking otherwise).

use crate::artifact::{Artifact, Mat};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// One scored alignment candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Target-network node id.
    pub target: usize,
    /// Aggregated alignment score.
    pub score: f64,
}

/// A rejected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A queried node id is not in the source network.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Source-network node count.
        nodes: usize,
    },
    /// `k` must be at least 1.
    ZeroK,
    /// A per-query θ override has the wrong number of weights.
    BadThetaLength {
        /// Weights supplied.
        got: usize,
        /// Layers in the index.
        want: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "node {node} out of range (source network has {nodes} nodes)"
                )
            }
            QueryError::ZeroK => write!(f, "k must be >= 1"),
            QueryError::BadThetaLength { got, want } => {
                write!(f, "theta has {got} weights but the index has {want} layers")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// An in-memory query index over a loaded [`Artifact`]: normalized
/// multi-order embeddings of both networks plus the default θ.
#[derive(Debug)]
pub struct TopkIndex {
    source: Vec<Mat>,
    target: Vec<Mat>,
    theta: Vec<f64>,
}

impl TopkIndex {
    /// Builds the index, row-normalizing the embeddings unless the
    /// artifact says they already are (so that every layer contributes
    /// cosine similarities).
    #[must_use]
    pub fn from_artifact(artifact: Artifact) -> Self {
        let Artifact {
            theta,
            mut source,
            mut target,
            rows_normalized,
        } = artifact;
        if !rows_normalized {
            for m in source.iter_mut().chain(target.iter_mut()) {
                m.normalize_rows();
            }
        }
        TopkIndex {
            source,
            target,
            theta,
        }
    }

    /// Source-network node count.
    #[must_use]
    pub fn source_nodes(&self) -> usize {
        self.source[0].rows()
    }

    /// Target-network node count.
    #[must_use]
    pub fn target_nodes(&self) -> usize {
        self.target[0].rows()
    }

    /// Number of embedding layers per side.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.theta.len()
    }

    /// The artifact's default layer weights.
    #[must_use]
    pub fn default_theta(&self) -> &[f64] {
        &self.theta
    }

    fn check(&self, nodes: &[usize], k: usize, theta: Option<&[f64]>) -> Result<(), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if let Some(t) = theta {
            if t.len() != self.theta.len() {
                return Err(QueryError::BadThetaLength {
                    got: t.len(),
                    want: self.theta.len(),
                });
            }
        }
        let nodes_total = self.source_nodes();
        for &n in nodes {
            if n >= nodes_total {
                return Err(QueryError::NodeOutOfRange {
                    node: n,
                    nodes: nodes_total,
                });
            }
        }
        Ok(())
    }

    /// The full aggregated score row of a source node (layer-major
    /// accumulation, skipping zero-weight layers).
    fn score_row(&self, node: usize, theta: &[f64]) -> Vec<f64> {
        let n_t = self.target_nodes();
        let mut acc = vec![0.0; n_t];
        for (l, &w) in theta.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let sv = self.source[l].row(node);
            let t = &self.target[l];
            for (u, a) in acc.iter_mut().enumerate() {
                let mut dot = 0.0;
                for (x, y) in sv.iter().zip(t.row(u)) {
                    dot += x * y;
                }
                *a += w * dot;
            }
        }
        acc
    }

    /// Top-k alignment candidates of one source node, best first. Ties
    /// break toward the smaller target id. `k` is clamped to the target
    /// node count; `theta` of `None` uses the artifact default.
    ///
    /// # Errors
    /// [`QueryError`] on an out-of-range node, `k == 0`, or a θ override
    /// of the wrong length.
    pub fn topk(
        &self,
        node: usize,
        k: usize,
        theta: Option<&[f64]>,
    ) -> Result<Vec<Hit>, QueryError> {
        self.check(&[node], k, theta)?;
        Ok(self.topk_unchecked(node, k, theta.unwrap_or(&self.theta)))
    }

    fn topk_unchecked(&self, node: usize, k: usize, theta: &[f64]) -> Vec<Hit> {
        select_topk(&self.score_row(node, theta), k)
    }

    /// Top-k for a batch of source nodes, parallel across queries.
    ///
    /// # Errors
    /// [`QueryError`] if any node is out of range, `k == 0`, or the θ
    /// override has the wrong length — the whole batch is rejected before
    /// any scoring happens.
    pub fn topk_batch(
        &self,
        nodes: &[usize],
        k: usize,
        theta: Option<&[f64]>,
    ) -> Result<Vec<Vec<Hit>>, QueryError> {
        self.check(nodes, k, theta)?;
        let theta = theta.unwrap_or(&self.theta);
        Ok(self.batch_dispatch(nodes, k, theta))
    }

    #[cfg(feature = "parallel")]
    fn batch_dispatch(&self, nodes: &[usize], k: usize, theta: &[f64]) -> Vec<Vec<Hit>> {
        use rayon::prelude::*;
        nodes
            .par_iter()
            .map(|&n| self.topk_unchecked(n, k, theta))
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn batch_dispatch(&self, nodes: &[usize], k: usize, theta: &[f64]) -> Vec<Vec<Hit>> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(nodes.len())
            .max(1);
        if threads == 1 || nodes.len() < 2 {
            return nodes
                .iter()
                .map(|&n| self.topk_unchecked(n, k, theta))
                .collect();
        }
        let chunk = nodes.len().div_ceil(threads);
        let mut out: Vec<Vec<Hit>> = Vec::with_capacity(nodes.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|&n| self.topk_unchecked(n, k, theta))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("topk worker panicked"));
            }
        });
        out
    }
}

/// Heap-ordering wrapper: greater = better (higher score, then smaller
/// target id). `total_cmp` gives a total order even for NaN scores.
#[derive(Debug, PartialEq)]
struct Entry {
    score: f64,
    target: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.target.cmp(&self.target))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Partial selection: the `k` best scores (clamped to `scores.len()`),
/// best first, via a size-bounded min-heap.
#[must_use]
pub fn select_topk(scores: &[f64], k: usize) -> Vec<Hit> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::with_capacity(k + 1);
    for (target, &score) in scores.iter().enumerate() {
        heap.push(Reverse(Entry { score, target }));
        if heap.len() > k {
            heap.pop();
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|Reverse(e)| Hit {
            target: e.target,
            score: e.score,
        })
        .collect()
}

/// Reference implementation: full sort, same ordering contract as
/// [`select_topk`]. Public so the property tests and benches can share it.
#[must_use]
pub fn select_topk_bruteforce(scores: &[f64], k: usize) -> Vec<Hit> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
    idx.truncate(k);
    idx.into_iter()
        .map(|target| Hit {
            target,
            score: scores[target],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;

    fn tiny_index() -> TopkIndex {
        // Two layers; identical source/target embeddings, so node i's best
        // match is target i with cosine 1.
        let data = vec![1.0, 0.0, 0.0, 1.0, 0.6, 0.8, -1.0, 0.5];
        let m = Mat::new(4, 2, data).unwrap();
        let artifact = Artifact::new(
            vec![0.5, 0.5],
            vec![m.clone(), m.clone()],
            vec![m.clone(), m],
            false,
        )
        .unwrap();
        TopkIndex::from_artifact(artifact)
    }

    #[test]
    fn identical_embeddings_rank_self_first() {
        let idx = tiny_index();
        for v in 0..4 {
            let hits = idx.topk(v, 1, None).unwrap();
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].target, v);
            assert!((hits[0].score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn k_clamped_and_sorted_descending() {
        let idx = tiny_index();
        let hits = idx.topk(0, 100, None).unwrap();
        assert_eq!(hits.len(), 4);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn theta_override_changes_scores() {
        let idx = tiny_index();
        // Zero out both layers: every score becomes 0 and ties break by id.
        let hits = idx.topk(2, 2, Some(&[0.0, 0.0])).unwrap();
        assert_eq!(hits[0].target, 0);
        assert_eq!(hits[1].target, 1);
        assert_eq!(hits[0].score, 0.0);
    }

    #[test]
    fn errors_are_specific() {
        let idx = tiny_index();
        assert_eq!(
            idx.topk(9, 1, None).unwrap_err(),
            QueryError::NodeOutOfRange { node: 9, nodes: 4 }
        );
        assert_eq!(idx.topk(0, 0, None).unwrap_err(), QueryError::ZeroK);
        assert_eq!(
            idx.topk(0, 1, Some(&[1.0])).unwrap_err(),
            QueryError::BadThetaLength { got: 1, want: 2 }
        );
        // Batch rejects before scoring anything.
        assert!(idx.topk_batch(&[0, 1, 99], 1, None).is_err());
    }

    #[test]
    fn batch_matches_single_queries() {
        let idx = tiny_index();
        let nodes = [3, 0, 2, 2, 1];
        let batch = idx.topk_batch(&nodes, 3, None).unwrap();
        assert_eq!(batch.len(), nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(batch[i], idx.topk(n, 3, None).unwrap());
        }
    }

    #[test]
    fn select_topk_ties_break_by_smaller_index() {
        let scores = [1.0, 3.0, 3.0, 0.5];
        let hits = select_topk(&scores, 2);
        assert_eq!(hits[0].target, 1);
        assert_eq!(hits[1].target, 2);
        assert_eq!(hits, select_topk_bruteforce(&scores, 2));
    }

    #[test]
    fn select_topk_empty_and_k_zero() {
        assert!(select_topk(&[], 3).is_empty());
        assert!(select_topk(&[1.0], 0).is_empty());
    }
}
