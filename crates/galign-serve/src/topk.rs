//! The top-k alignment query kernel.
//!
//! Since the `simblock` redesign this module holds **no scoring code of its
//! own**: queries are validated here and then delegated to the shared
//! blocked engine in [`galign_matrix::simblock`] — the same
//! [`SimPanel`] panel GEMM that backs
//! the batch pipeline's matching stage. Scores are θ-weighted sums of
//! per-layer dot products over row-L2-normalized embeddings — exactly the
//! aggregated alignment matrix `S = Σ_l θ⁽ˡ⁾ H_s⁽ˡ⁾ H_t⁽ˡ⁾ᵀ` (paper
//! Eq. 11–12), evaluated one source row at a time with bounded-heap
//! selection (`O(n log k)`), and query batches fan out across rayon
//! workers via [`galign_matrix::simblock::topk_rows`].

use crate::artifact::{Artifact, Mat, ShardManifest};
pub use galign_index::Backend;
use galign_index::{AnnIndex, SearchStats, VectorSet};
use galign_matrix::dense::dot;
use galign_matrix::simblock::{self, GatheredPanel, ScoreProvider, SimPanel};
use galign_matrix::Dense;
use galign_telemetry::context;
use std::fmt;
use std::io;

pub use galign_matrix::simblock::{select_topk, select_topk_bruteforce, Hit};

/// Engine selection requested by a query (the HTTP `mode` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Always scan every target node (the PR-3 blocked panel path).
    Exact,
    /// Use the ANN index when one is attached (falls back to exact when
    /// it is not, or when a candidate set looks low-confidence).
    Ann,
    /// Use ANN only when an index is attached **and** the target network
    /// is at least [`TopkIndex::auto_threshold`] nodes — below that the
    /// exact scan is already fast and bit-exactness is free.
    #[default]
    Auto,
}

impl EngineMode {
    /// Parses the HTTP spelling (`"exact"` / `"ann"` / `"auto"`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<EngineMode> {
        match name {
            "exact" => Some(EngineMode::Exact),
            "ann" => Some(EngineMode::Ann),
            "auto" => Some(EngineMode::Auto),
            _ => None,
        }
    }

    /// The HTTP spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Exact => "exact",
            EngineMode::Ann => "ann",
            EngineMode::Auto => "auto",
        }
    }
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which engine actually answered a query (reported in responses and
/// telemetry; `Ann` still means ANN candidates exactly re-ranked through
/// `select_topk`, so scores are bit-identical to the exact engine's for
/// every hit both return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineUsed {
    /// Full exact scan.
    Exact,
    /// ANN candidate generation + exact re-rank.
    Ann,
}

impl EngineUsed {
    /// The HTTP spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineUsed::Exact => "exact",
            EngineUsed::Ann => "ann",
        }
    }
}

impl fmt::Display for EngineUsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// First-pass scan precision requested by a query (the HTTP `quant`
/// field / the `--quant` serve flag). Hits and scores are bit-identical
/// across all settings: a quantized scan only *shortlists* candidates
/// (with a certified error margin that provably covers the exact top-k),
/// and every shortlisted candidate is re-ranked through the exact f64
/// kernel. A quantized mode silently degrades to the f64 path when the
/// loaded artifact carries no matching panels — the results do not
/// change, only the memory traffic does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantMode {
    /// Full f64 scans (the default).
    #[default]
    Off,
    /// int8 first-pass scan over the artifact's int8 panels.
    Int8,
    /// f16 first-pass scan over the artifact's f16 panels.
    F16,
}

impl QuantMode {
    /// Parses the HTTP spelling (`"off"` / `"int8"` / `"f16"`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<QuantMode> {
        match name {
            "off" => Some(QuantMode::Off),
            "int8" => Some(QuantMode::Int8),
            "f16" => Some(QuantMode::F16),
            _ => None,
        }
    }

    /// The HTTP spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QuantMode::Off => "off",
            QuantMode::Int8 => "int8",
            QuantMode::F16 => "f16",
        }
    }

    /// Stable discriminant for cache and batch-grouping keys.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            QuantMode::Off => 0,
            QuantMode::Int8 => 1,
            QuantMode::F16 => 2,
        }
    }

    /// The panel encoding this request mode asks for (`None` for `Off`).
    #[must_use]
    pub fn panel_mode(self) -> Option<galign_quant::QuantMode> {
        match self {
            QuantMode::Off => None,
            QuantMode::Int8 => Some(galign_quant::QuantMode::Int8),
            QuantMode::F16 => Some(galign_quant::QuantMode::F16),
        }
    }
}

impl fmt::Display for QuantMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A rejected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A queried node id is not in the source network.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Source-network node count.
        nodes: usize,
    },
    /// `k` must be at least 1.
    ZeroK,
    /// A per-query θ override has the wrong number of weights.
    BadThetaLength {
        /// Weights supplied.
        got: usize,
        /// Layers in the index.
        want: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "node {node} out of range (source network has {nodes} nodes)"
                )
            }
            QueryError::ZeroK => write!(f, "k must be >= 1"),
            QueryError::BadThetaLength { got, want } => {
                write!(f, "theta has {got} weights but the index has {want} layers")
            }
        }
    }
}

impl std::error::Error for QueryError {}

fn mat_to_dense(m: Mat) -> Dense {
    let (rows, cols) = (m.rows(), m.cols());
    Dense::from_vec(rows, cols, m.into_vec()).expect("artifact matrices are shape-consistent")
}

/// Target-node count at which `mode: auto` switches from the exact scan
/// to the ANN engine (overridable per index).
pub const DEFAULT_AUTO_THRESHOLD: usize = 4096;

/// One query of a coalesced batch: a source node with its own `k`. All
/// queries of a batch share one θ and one engine routing decision — the
/// batch scheduler groups by those before calling the gathered kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowQuery {
    /// Source-network node id.
    pub node: usize,
    /// Hits requested for this query.
    pub k: usize,
}

/// Quantized target panel kept resident for first-pass scans, shared with
/// the ANN index (which walks the same rows during traversal).
struct QuantHandle {
    mode: galign_quant::QuantMode,
    target: std::sync::Arc<galign_quant::QuantizedPanel>,
}

/// An in-memory query index over a loaded [`Artifact`]: normalized
/// multi-order embeddings of both networks, the default θ, an optional
/// ANN index over the concatenated target rows, and the artifact's
/// quantized target panel when it carried one.
pub struct TopkIndex {
    source: Vec<Dense>,
    target: Vec<Dense>,
    theta: Vec<f64>,
    ann: Option<Box<dyn AnnIndex>>,
    auto_threshold: usize,
    shard: Option<ShardManifest>,
    quant: Option<QuantHandle>,
}

impl fmt::Debug for TopkIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TopkIndex")
            .field("source_nodes", &self.source_nodes())
            .field("target_nodes", &self.target_nodes())
            .field("layers", &self.theta.len())
            .field("ann", &self.ann.as_ref().map(|a| a.backend()))
            .field("auto_threshold", &self.auto_threshold)
            .field("quant", &self.quant.as_ref().map(|q| q.mode.name()))
            .finish()
    }
}

impl TopkIndex {
    /// Builds the index, row-normalizing the embeddings unless the
    /// artifact says they already are (so that every layer contributes
    /// cosine similarities). An ANN index embedded in the artifact is
    /// re-attached; if its blob fails validation the server degrades to
    /// exact-only mode (with a warning) rather than refusing to start.
    #[must_use]
    pub fn from_artifact(artifact: Artifact) -> Self {
        let Artifact {
            theta,
            source,
            target,
            rows_normalized,
            index,
            manifest,
            quant,
        } = artifact;
        let convert = |mats: Vec<Mat>| -> Vec<Dense> {
            mats.into_iter()
                .map(|m| {
                    let d = mat_to_dense(m);
                    if rows_normalized {
                        d
                    } else {
                        d.normalize_rows()
                    }
                })
                .collect()
        };
        // The panels were encoded over the rows exactly as stored; if the
        // rows get renormalized here the panels no longer describe them,
        // so quantized scans must be disabled rather than serve margins
        // that certify the wrong vectors.
        let quant = match quant {
            Some(q) if rows_normalized => Some(QuantHandle {
                mode: q.mode,
                target: std::sync::Arc::new(q.target),
            }),
            Some(_) => {
                galign_telemetry::info!(
                    "topk",
                    "artifact rows are not pre-normalized; ignoring its quantized panels"
                );
                None
            }
            None => None,
        };
        let mut idx = TopkIndex {
            source: convert(source),
            target: convert(target),
            theta,
            ann: None,
            auto_threshold: DEFAULT_AUTO_THRESHOLD,
            shard: manifest,
            quant,
        };
        if let Some(bytes) = index {
            if let Err(e) = idx.attach_index_bytes(&bytes) {
                galign_telemetry::info!(
                    "topk",
                    "embedded ANN index rejected ({e}); serving exact-only"
                );
            }
        }
        idx
    }

    /// Source-network node count.
    #[must_use]
    pub fn source_nodes(&self) -> usize {
        self.source[0].rows()
    }

    /// Target-network node count.
    #[must_use]
    pub fn target_nodes(&self) -> usize {
        self.target[0].rows()
    }

    /// Number of embedding layers per side.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.theta.len()
    }

    /// The artifact's default layer weights.
    #[must_use]
    pub fn default_theta(&self) -> &[f64] {
        &self.theta
    }

    /// Shard placement metadata, when this index was loaded from a shard
    /// artifact (target rows are the global id range
    /// `[manifest.start, manifest.end)` of the split parent). The data
    /// path ignores it — shard-local target ids are what queries see; the
    /// router translates them back to global ids.
    #[must_use]
    pub fn shard_manifest(&self) -> Option<&ShardManifest> {
        self.shard.as_ref()
    }

    /// Whether an ANN index is attached.
    #[must_use]
    pub fn has_ann(&self) -> bool {
        self.ann.is_some()
    }

    /// Backend of the attached ANN index, if any.
    #[must_use]
    pub fn ann_backend(&self) -> Option<Backend> {
        self.ann.as_ref().map(|a| a.backend())
    }

    /// The quantized scan mode this index can actually serve — the
    /// encoding of the artifact's resident panels — or `None` when the
    /// artifact carried no (usable) quantized section.
    #[must_use]
    pub fn quant_available(&self) -> Option<QuantMode> {
        self.quant.as_ref().map(|q| match q.mode {
            galign_quant::QuantMode::Int8 => QuantMode::Int8,
            galign_quant::QuantMode::F16 => QuantMode::F16,
        })
    }

    /// Resident bytes of the f64 embedding rows (both sides, all layers).
    #[must_use]
    pub fn f64_resident_bytes(&self) -> usize {
        self.source
            .iter()
            .chain(&self.target)
            .map(|d| d.rows() * d.cols() * std::mem::size_of::<f64>())
            .sum()
    }

    /// Resident bytes of the quantized target panel (0 without one).
    #[must_use]
    pub fn quant_resident_bytes(&self) -> usize {
        self.quant.as_ref().map_or(0, |q| q.target.resident_bytes())
    }

    /// The panel a request-level `quant` mode resolves to: `Some` only
    /// when a panel is resident *and* its encoding matches the request
    /// (asking for `int8` against an `f16` artifact degrades to f64 —
    /// results are bit-identical either way).
    fn effective_quant(&self, requested: QuantMode) -> Option<&QuantHandle> {
        let want = requested.panel_mode()?;
        let q = self.quant.as_ref()?;
        (q.mode == want).then_some(q)
    }

    /// The scan mode a request-level `quant` actually resolves to on this
    /// index: the request's own mode when matching panels are resident,
    /// `Off` when it degrades to the f64 path. Deterministic per request,
    /// so the batch planner can key caching and grouping on it.
    #[must_use]
    pub fn effective_quant_mode(&self, requested: QuantMode) -> QuantMode {
        if self.effective_quant(requested).is_some() {
            requested
        } else {
            QuantMode::Off
        }
    }

    /// Hands the resident panel to the ANN index so traversal can walk
    /// quantized rows. Backends that cannot (or a shape mismatch) only
    /// cost a log line — searches keep working on f64 vectors.
    fn attach_quant_to_ann(&mut self) {
        if let (Some(ann), Some(q)) = (self.ann.as_mut(), self.quant.as_ref()) {
            if let Err(e) = ann.attach_quant(std::sync::Arc::clone(&q.target)) {
                galign_telemetry::info!("topk", "quantized ANN traversal unavailable: {e}");
            }
        }
    }

    /// The `mode: auto` switchover point (target nodes).
    #[must_use]
    pub fn auto_threshold(&self) -> usize {
        self.auto_threshold
    }

    /// Overrides the `mode: auto` switchover point.
    pub fn set_auto_threshold(&mut self, nodes: usize) {
        self.auto_threshold = nodes;
    }

    /// The concatenated target rows the ANN index is built over: one
    /// `Σ_l dim_l` vector per target node, layers in index order,
    /// **unscaled** — θ multiplies the query side only (see
    /// [`TopkIndex::query_vector`]), so per-query θ overrides need no
    /// index rebuild. Rows are L2-normalised per layer, so every
    /// concatenated vector has the same norm (√L up to zero rows) and
    /// inner-product order equals cosine order.
    #[must_use]
    pub fn target_vector_set(&self) -> VectorSet {
        let n = self.target_nodes();
        let dim: usize = self.target.iter().map(Dense::cols).sum();
        let mut data = Vec::with_capacity(n * dim);
        for u in 0..n {
            for layer in &self.target {
                data.extend_from_slice(layer.row(u));
            }
        }
        VectorSet::new(n, dim, data).expect("layer shapes validated at load")
    }

    /// The ANN query vector of a source node under `theta`: the θ-scaled
    /// concatenation of its per-layer rows, so that
    /// `⟨query, target⟩ = Σ_l θ_l ⟨s_l, t_l⟩` — the exact serving score.
    #[must_use]
    pub fn query_vector(&self, node: usize, theta: &[f64]) -> Vec<f64> {
        let dim: usize = self.source.iter().map(Dense::cols).sum();
        let mut q = Vec::with_capacity(dim);
        for (layer, &w) in self.source.iter().zip(theta) {
            q.extend(layer.row(node).iter().map(|&v| w * v));
        }
        q
    }

    /// Builds an ANN index over the target vectors with the backend's
    /// default parameters and attaches it.
    ///
    /// # Errors
    /// `InvalidData` when the backend rejects the build inputs.
    pub fn build_ann(&mut self, backend: Backend) -> io::Result<()> {
        let vectors = self.target_vector_set();
        let n = vectors.len();
        let built: Box<dyn AnnIndex> = match backend {
            Backend::Hnsw => Box::new(
                galign_index::HnswIndex::build(vectors, galign_index::HnswParams::default())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            ),
            Backend::Ivf => Box::new(
                galign_index::IvfIndex::build(vectors, galign_index::IvfParams::default_for(n))
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            ),
        };
        self.ann = Some(built);
        self.attach_quant_to_ann();
        Ok(())
    }

    /// Deserializes a `galign-index` blob (e.g. the artifact's embedded
    /// index section) and attaches it, verifying that it was built over
    /// exactly this index's target vectors.
    ///
    /// # Errors
    /// `InvalidData` when the blob is corrupt or was built over different
    /// vectors.
    pub fn attach_index_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        let ann = galign_index::load(bytes, self.target_vector_set())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.ann = Some(ann);
        self.attach_quant_to_ann();
        Ok(())
    }

    /// Serializes the attached ANN index (for embedding into an artifact).
    #[must_use]
    pub fn index_bytes(&self) -> Option<Vec<u8>> {
        self.ann.as_ref().map(|a| a.to_bytes())
    }

    /// Whether a query under `mode` would route to the ANN engine (before
    /// any low-confidence fallback). Deterministic per request, so cache
    /// keys can depend on it.
    #[must_use]
    pub fn would_use_ann(&self, mode: EngineMode) -> bool {
        self.pick_ann(mode).is_some()
    }

    fn pick_ann(&self, mode: EngineMode) -> Option<&dyn AnnIndex> {
        let ann = self.ann.as_deref()?;
        match mode {
            EngineMode::Exact => None,
            EngineMode::Ann => Some(ann),
            EngineMode::Auto => (self.target_nodes() >= self.auto_threshold).then_some(ann),
        }
    }

    /// Exact serving score of one (source, target) pair — the same FP
    /// operations in the same order as `SimPanel::score_block` (zero
    /// init, then `+= θ_l·dot` per layer in index order, skipping
    /// zero-weight layers), so re-ranked ANN scores are bit-identical to
    /// the exact engine's.
    fn exact_score(&self, v: usize, u: usize, theta: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (l, &w) in theta.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            acc += w * dot(self.source[l].row(v), self.target[l].row(u));
        }
        acc
    }

    /// ANN candidates + exact re-rank for one node. `None` means the
    /// candidate set was low-confidence (fewer candidates than requested
    /// hits) and the caller should fall back to the exact scan.
    fn ann_topk(
        &self,
        ann: &dyn AnnIndex,
        node: usize,
        k: usize,
        theta: &[f64],
        quantized: bool,
    ) -> Option<Vec<Hit>> {
        let q = self.query_vector(node, theta);
        let mut stats = SearchStats::default();
        let st = context::stage("ann_search");
        let cands = if quantized {
            ann.search_quant(&q, k, &mut stats)
        } else {
            ann.search(&q, k, &mut stats)
        };
        st.finish_with(vec![
            ("candidates", cands.len().to_string()),
            ("distance_evals", stats.distance_evals.to_string()),
        ]);
        context::annotate("ann_candidates", cands.len() as u64);
        context::annotate("distance_evals", stats.distance_evals);
        if cands.len() < k.min(self.target_nodes()) {
            if galign_telemetry::metrics_enabled() {
                galign_telemetry::counter_add("serve.index.fallbacks", 1);
            }
            return None;
        }
        // Re-rank in ascending-candidate-id order so select_topk's tie
        // contract (descending score, then ascending index) maps straight
        // back to ascending target id — identical to the exact engine.
        let st = context::stage("exact_rerank");
        let mut ids: Vec<usize> = cands.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        let scores: Vec<f64> = ids
            .iter()
            .map(|&u| self.exact_score(node, u, theta))
            .collect();
        st.finish_with(vec![("evals", ids.len().to_string())]);
        context::annotate("distance_evals", ids.len() as u64);
        Some(
            select_topk(&scores, k)
                .into_iter()
                .map(|h| Hit {
                    target: ids[h.target],
                    score: h.score,
                })
                .collect(),
        )
    }

    /// Validates a query without running it — the same checks (and the
    /// same error wording) every query path applies before scoring. The
    /// batch scheduler validates up front so a grouped gathered compute
    /// can never fail mid-flush.
    ///
    /// # Errors
    /// [`QueryError`] on an out-of-range node, `k == 0`, or a θ override
    /// of the wrong length.
    pub fn validate(
        &self,
        nodes: &[usize],
        k: usize,
        theta: Option<&[f64]>,
    ) -> Result<(), QueryError> {
        self.check(nodes, k, theta)
    }

    fn check(&self, nodes: &[usize], k: usize, theta: Option<&[f64]>) -> Result<(), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if let Some(t) = theta {
            if t.len() != self.theta.len() {
                return Err(QueryError::BadThetaLength {
                    got: t.len(),
                    want: self.theta.len(),
                });
            }
        }
        let nodes_total = self.source_nodes();
        for &n in nodes {
            if n >= nodes_total {
                return Err(QueryError::NodeOutOfRange {
                    node: n,
                    nodes: nodes_total,
                });
            }
        }
        Ok(())
    }

    /// The shared blocked scoring panel under a (validated) θ.
    fn panel<'a>(&'a self, theta: &'a [f64]) -> SimPanel<'a> {
        SimPanel::new(&self.source, &self.target, theta)
            .expect("artifact layers validated at load time")
    }

    /// Top-k alignment candidates of one source node, best first. Ties
    /// break toward the smaller target id. `k` is clamped to the target
    /// node count; `theta` of `None` uses the artifact default.
    ///
    /// # Errors
    /// [`QueryError`] on an out-of-range node, `k == 0`, or a θ override
    /// of the wrong length.
    pub fn topk(
        &self,
        node: usize,
        k: usize,
        theta: Option<&[f64]>,
    ) -> Result<Vec<Hit>, QueryError> {
        self.check(&[node], k, theta)?;
        let panel = self.panel(theta.unwrap_or(&self.theta));
        Ok(select_topk(&panel.score_row(node), k))
    }

    /// Top-k for a batch of source nodes, parallel across queries.
    ///
    /// # Errors
    /// [`QueryError`] if any node is out of range, `k == 0`, or the θ
    /// override has the wrong length — the whole batch is rejected before
    /// any scoring happens.
    pub fn topk_batch(
        &self,
        nodes: &[usize],
        k: usize,
        theta: Option<&[f64]>,
    ) -> Result<Vec<Vec<Hit>>, QueryError> {
        self.check(nodes, k, theta)?;
        let panel = self.panel(theta.unwrap_or(&self.theta));
        Ok(simblock::topk_rows(&panel, nodes, k))
    }

    /// [`TopkIndex::topk`] with explicit engine selection; reports which
    /// engine actually answered (ANN falls back to exact when no index is
    /// attached or the candidate set is low-confidence).
    ///
    /// # Errors
    /// Same as [`TopkIndex::topk`].
    pub fn topk_with_mode(
        &self,
        node: usize,
        k: usize,
        theta: Option<&[f64]>,
        mode: EngineMode,
    ) -> Result<(Vec<Hit>, EngineUsed), QueryError> {
        self.topk_with_opts(node, k, theta, mode, QuantMode::Off)
    }

    /// [`TopkIndex::topk_with_mode`] plus first-pass quantization. Under a
    /// quantized mode the exact scan shortlists candidates on the resident
    /// panel (certified margins, see `galign-quant`) and re-ranks the
    /// shortlist through the exact kernel, and ANN traversal walks
    /// quantized rows with the exact re-rank unchanged — hits and scores
    /// stay bit-identical to [`QuantMode::Off`].
    ///
    /// # Errors
    /// Same as [`TopkIndex::topk`].
    pub fn topk_with_opts(
        &self,
        node: usize,
        k: usize,
        theta: Option<&[f64]>,
        mode: EngineMode,
        quant: QuantMode,
    ) -> Result<(Vec<Hit>, EngineUsed), QueryError> {
        self.check(&[node], k, theta)?;
        let th = theta.unwrap_or(&self.theta);
        let quantized = self.effective_quant(quant);
        if let Some(ann) = self.pick_ann(mode) {
            if let Some(hits) = self.ann_topk(ann, node, k, th, quantized.is_some()) {
                return Ok((hits, EngineUsed::Ann));
            }
        }
        let panel = self.panel(th);
        let st = context::stage("exact_scan");
        let hits = match quantized {
            Some(q) => {
                if galign_telemetry::metrics_enabled() {
                    galign_telemetry::counter_add("serve.quant.scans", 1);
                }
                panel
                    .topk_row_quantized(&q.target, node, k)
                    .expect("resident panel validated against the target rows at load")
            }
            None => select_topk(&panel.score_row(node), k),
        };
        st.finish_with(vec![("rows", "1".to_string())]);
        context::annotate("distance_evals", self.target_nodes() as u64);
        Ok((hits, EngineUsed::Exact))
    }

    /// [`TopkIndex::topk_batch`] with explicit engine selection. Each
    /// query reports its own engine, because a low-confidence ANN
    /// candidate set falls back to exact per node.
    ///
    /// # Errors
    /// Same as [`TopkIndex::topk_batch`] — the whole batch is rejected
    /// before any scoring happens.
    pub fn topk_batch_with_mode(
        &self,
        nodes: &[usize],
        k: usize,
        theta: Option<&[f64]>,
        mode: EngineMode,
    ) -> Result<Vec<(Vec<Hit>, EngineUsed)>, QueryError> {
        self.topk_batch_with_opts(nodes, k, theta, mode, QuantMode::Off)
    }

    /// [`TopkIndex::topk_batch_with_mode`] plus first-pass quantization
    /// (see [`TopkIndex::topk_with_opts`] — bit-identical results).
    ///
    /// # Errors
    /// Same as [`TopkIndex::topk_batch`] — the whole batch is rejected
    /// before any scoring happens.
    pub fn topk_batch_with_opts(
        &self,
        nodes: &[usize],
        k: usize,
        theta: Option<&[f64]>,
        mode: EngineMode,
        quant: QuantMode,
    ) -> Result<Vec<(Vec<Hit>, EngineUsed)>, QueryError> {
        self.check(nodes, k, theta)?;
        let th = theta.unwrap_or(&self.theta);
        let quantized = self.effective_quant(quant);
        let Some(ann) = self.pick_ann(mode) else {
            let panel = self.panel(th);
            let st = context::stage("exact_scan");
            let rows = match quantized {
                Some(q) => {
                    if galign_telemetry::metrics_enabled() {
                        galign_telemetry::counter_add("serve.quant.scans", nodes.len() as u64);
                    }
                    panel
                        .topk_rows_quantized(&q.target, nodes, k)
                        .expect("resident panel validated against the target rows at load")
                }
                None => simblock::topk_rows(&panel, nodes, k),
            };
            st.finish_with(vec![("rows", nodes.len().to_string())]);
            context::annotate("distance_evals", (nodes.len() * self.target_nodes()) as u64);
            return Ok(rows
                .into_iter()
                .map(|hits| (hits, EngineUsed::Exact))
                .collect());
        };
        Ok(nodes
            .iter()
            .map(
                |&node| match self.ann_topk(ann, node, k, th, quantized.is_some()) {
                    Some(hits) => (hits, EngineUsed::Ann),
                    None => {
                        let panel = self.panel(th);
                        let st = context::stage("exact_scan");
                        let hits = match quantized {
                            Some(q) => {
                                if galign_telemetry::metrics_enabled() {
                                    galign_telemetry::counter_add("serve.quant.scans", 1);
                                }
                                panel
                                    .topk_row_quantized(&q.target, node, k)
                                    .expect("resident panel validated at load")
                            }
                            None => select_topk(&panel.score_row(node), k),
                        };
                        st.finish_with(vec![("rows", "1".to_string())]);
                        context::annotate("distance_evals", self.target_nodes() as u64);
                        (hits, EngineUsed::Exact)
                    }
                },
            )
            .collect())
    }

    fn check_queries(
        &self,
        queries: &[RowQuery],
        theta: Option<&[f64]>,
    ) -> Result<Vec<usize>, QueryError> {
        let nodes: Vec<usize> = queries.iter().map(|q| q.node).collect();
        if queries.iter().any(|q| q.k == 0) {
            return Err(QueryError::ZeroK);
        }
        self.check(&nodes, 1, theta)?;
        Ok(nodes)
    }

    /// Coalesced exact top-k: the whole batch is gathered into one
    /// query-block × target-panel GEMM sweep
    /// ([`galign_matrix::simblock::GatheredPanel`]) with per-query `k`
    /// selection. Bit-identical to calling [`TopkIndex::topk`] per query.
    ///
    /// # Errors
    /// [`QueryError`] if any node is out of range, any `k == 0`, or the θ
    /// override has the wrong length — the whole batch is rejected before
    /// any scoring happens.
    pub fn topk_gathered(
        &self,
        queries: &[RowQuery],
        theta: Option<&[f64]>,
    ) -> Result<Vec<Vec<Hit>>, QueryError> {
        let nodes = self.check_queries(queries, theta)?;
        let th = theta.unwrap_or(&self.theta);
        Ok(self.gathered_exact(queries, &nodes, th))
    }

    fn gathered_exact(&self, queries: &[RowQuery], nodes: &[usize], th: &[f64]) -> Vec<Vec<Hit>> {
        let panel = GatheredPanel::new(&self.source, &self.target, th, nodes)
            .expect("queries validated before gathering");
        let ks: Vec<usize> = queries.iter().map(|q| q.k).collect();
        let st = context::stage("exact_scan");
        let rows = simblock::topk_rows_per_k(&panel, &ks);
        st.finish_with(vec![("rows", nodes.len().to_string())]);
        context::annotate("distance_evals", (nodes.len() * self.target_nodes()) as u64);
        rows
    }

    /// Quantized counterpart of [`TopkIndex::gathered_exact`]: per-query
    /// certified shortlist + exact re-rank on the shared panel. The
    /// shortlist is query-specific, so there is no gathered GEMM to share
    /// — the win is the panel's memory traffic, not batching.
    fn quant_exact(&self, q: &QuantHandle, queries: &[RowQuery], th: &[f64]) -> Vec<Vec<Hit>> {
        let panel = self.panel(th);
        let st = context::stage("exact_scan");
        if galign_telemetry::metrics_enabled() {
            galign_telemetry::counter_add("serve.quant.scans", queries.len() as u64);
        }
        let rows: Vec<Vec<Hit>> = queries
            .iter()
            .map(|rq| {
                panel
                    .topk_row_quantized(&q.target, rq.node, rq.k)
                    .expect("resident panel validated against the target rows at load")
            })
            .collect();
        st.finish_with(vec![("rows", queries.len().to_string())]);
        context::annotate(
            "distance_evals",
            (queries.len() * self.target_nodes()) as u64,
        );
        rows
    }

    /// Coalesced top-k with engine selection: the batched counterpart of
    /// [`TopkIndex::topk_batch_with_mode`], bit-identical to it query for
    /// query. On the ANN path every query keeps its *own* candidate set
    /// (searches are per-query, exactly as in the sequential path), but
    /// the exact re-rank is batched: the union of all candidate ids
    /// ([`galign_index::union_candidate_ids`]) is gathered once into a
    /// contiguous per-layer block and every query re-ranks its candidates
    /// inside that block. Low-confidence candidate sets fall back to the
    /// exact engine, pooled into one gathered GEMM sweep.
    ///
    /// # Errors
    /// Same as [`TopkIndex::topk_gathered`].
    pub fn topk_gathered_with_mode(
        &self,
        queries: &[RowQuery],
        theta: Option<&[f64]>,
        mode: EngineMode,
    ) -> Result<Vec<(Vec<Hit>, EngineUsed)>, QueryError> {
        self.topk_gathered_with_opts(queries, theta, mode, QuantMode::Off)
    }

    /// [`TopkIndex::topk_gathered_with_mode`] plus first-pass quantization
    /// (see [`TopkIndex::topk_with_opts`] — bit-identical results; under a
    /// quantized mode the pooled exact scans become per-query certified
    /// shortlists and ANN searches walk quantized rows).
    ///
    /// # Errors
    /// Same as [`TopkIndex::topk_gathered`].
    pub fn topk_gathered_with_opts(
        &self,
        queries: &[RowQuery],
        theta: Option<&[f64]>,
        mode: EngineMode,
        quant: QuantMode,
    ) -> Result<Vec<(Vec<Hit>, EngineUsed)>, QueryError> {
        let nodes = self.check_queries(queries, theta)?;
        let th = theta.unwrap_or(&self.theta);
        let quantized = self.effective_quant(quant);
        let Some(ann) = self.pick_ann(mode) else {
            let rows = match quantized {
                Some(q) => self.quant_exact(q, queries, th),
                None => self.gathered_exact(queries, &nodes, th),
            };
            return Ok(rows
                .into_iter()
                .map(|hits| (hits, EngineUsed::Exact))
                .collect());
        };
        // Per-query candidate generation: identical searches (and thus
        // identical candidate sets) to the sequential path.
        let st = context::stage("ann_search");
        let mut confident: Vec<(usize, Vec<galign_index::Candidate>)> = Vec::new();
        let mut fallback: Vec<usize> = Vec::new();
        let mut total_cands = 0u64;
        let mut total_evals = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let qv = self.query_vector(q.node, th);
            let mut stats = SearchStats::default();
            let cands = if quantized.is_some() {
                ann.search_quant(&qv, q.k, &mut stats)
            } else {
                ann.search(&qv, q.k, &mut stats)
            };
            total_cands += cands.len() as u64;
            total_evals += stats.distance_evals;
            if cands.len() < q.k.min(self.target_nodes()) {
                if galign_telemetry::metrics_enabled() {
                    galign_telemetry::counter_add("serve.index.fallbacks", 1);
                }
                fallback.push(i);
            } else {
                confident.push((i, cands));
            }
        }
        st.finish_with(vec![
            ("queries", queries.len().to_string()),
            ("candidates", total_cands.to_string()),
            ("distance_evals", total_evals.to_string()),
        ]);
        context::annotate("ann_candidates", total_cands);
        context::annotate("distance_evals", total_evals);

        let mut out: Vec<Option<(Vec<Hit>, EngineUsed)>> = vec![None; queries.len()];
        if !confident.is_empty() {
            // Shared-candidate batched re-rank: gather the union's target
            // rows once (cache locality for every query in the batch), then
            // score each query only against its own candidates — selection
            // stays restricted per query, so results match the sequential
            // re-rank bit for bit.
            let union: Vec<usize> = galign_index::union_candidate_ids(
                &confident.iter().map(|(_, c)| c.clone()).collect::<Vec<_>>(),
            );
            let gathered: Vec<Dense> = self
                .target
                .iter()
                .map(|layer| {
                    let mut data = Vec::with_capacity(union.len() * layer.cols());
                    for &u in &union {
                        data.extend_from_slice(layer.row(u));
                    }
                    Dense::from_vec(union.len(), layer.cols(), data)
                        .expect("gathered candidate rows keep the layer dimension")
                })
                .collect();
            let st = context::stage("exact_rerank");
            let mut evals = 0u64;
            for (i, cands) in confident {
                let node = queries[i].node;
                // Ascending-id order so select_topk's tie contract maps
                // straight back to target ids — identical to ann_topk.
                let mut ids: Vec<usize> = cands.iter().map(|c| c.id).collect();
                ids.sort_unstable();
                ids.dedup();
                let scores: Vec<f64> = ids
                    .iter()
                    .map(|&u| {
                        let pos = union.binary_search(&u).expect("candidate in union");
                        let mut acc = 0.0;
                        for (l, &w) in th.iter().enumerate() {
                            if w == 0.0 {
                                continue;
                            }
                            acc += w * dot(self.source[l].row(node), gathered[l].row(pos));
                        }
                        acc
                    })
                    .collect();
                evals += ids.len() as u64;
                let hits = select_topk(&scores, queries[i].k)
                    .into_iter()
                    .map(|h| Hit {
                        target: ids[h.target],
                        score: h.score,
                    })
                    .collect();
                out[i] = Some((hits, EngineUsed::Ann));
            }
            st.finish_with(vec![("evals", evals.to_string())]);
            context::annotate("distance_evals", evals);
        }
        if !fallback.is_empty() {
            let fb_queries: Vec<RowQuery> = fallback.iter().map(|&i| queries[i]).collect();
            let fb_nodes: Vec<usize> = fb_queries.iter().map(|q| q.node).collect();
            let hits = match quantized {
                Some(q) => self.quant_exact(q, &fb_queries, th),
                None => self.gathered_exact(&fb_queries, &fb_nodes, th),
            };
            for (&i, h) in fallback.iter().zip(hits) {
                out[i] = Some((h, EngineUsed::Exact));
            }
        }
        Ok(out
            .into_iter()
            .map(|slot| slot.expect("every query answered"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;

    fn tiny_index() -> TopkIndex {
        // Two layers; identical source/target embeddings, so node i's best
        // match is target i with cosine 1.
        let data = vec![1.0, 0.0, 0.0, 1.0, 0.6, 0.8, -1.0, 0.5];
        let m = Mat::new(4, 2, data).unwrap();
        let artifact = Artifact::new(
            vec![0.5, 0.5],
            vec![m.clone(), m.clone()],
            vec![m.clone(), m],
            false,
        )
        .unwrap();
        TopkIndex::from_artifact(artifact)
    }

    #[test]
    fn identical_embeddings_rank_self_first() {
        let idx = tiny_index();
        for v in 0..4 {
            let hits = idx.topk(v, 1, None).unwrap();
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].target, v);
            assert!((hits[0].score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn k_clamped_and_sorted_descending() {
        let idx = tiny_index();
        let hits = idx.topk(0, 100, None).unwrap();
        assert_eq!(hits.len(), 4);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn theta_override_changes_scores() {
        let idx = tiny_index();
        // Zero out both layers: every score becomes 0 and ties break by id.
        let hits = idx.topk(2, 2, Some(&[0.0, 0.0])).unwrap();
        assert_eq!(hits[0].target, 0);
        assert_eq!(hits[1].target, 1);
        assert_eq!(hits[0].score, 0.0);
    }

    #[test]
    fn errors_are_specific() {
        let idx = tiny_index();
        assert_eq!(
            idx.topk(9, 1, None).unwrap_err(),
            QueryError::NodeOutOfRange { node: 9, nodes: 4 }
        );
        assert_eq!(idx.topk(0, 0, None).unwrap_err(), QueryError::ZeroK);
        assert_eq!(
            idx.topk(0, 1, Some(&[1.0])).unwrap_err(),
            QueryError::BadThetaLength { got: 1, want: 2 }
        );
        // Batch rejects before scoring anything.
        assert!(idx.topk_batch(&[0, 1, 99], 1, None).is_err());
    }

    #[test]
    fn batch_matches_single_queries() {
        let idx = tiny_index();
        let nodes = [3, 0, 2, 2, 1];
        let batch = idx.topk_batch(&nodes, 3, None).unwrap();
        assert_eq!(batch.len(), nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(batch[i], idx.topk(n, 3, None).unwrap());
        }
    }

    #[test]
    fn engine_mode_parsing() {
        assert_eq!(EngineMode::from_name("exact"), Some(EngineMode::Exact));
        assert_eq!(EngineMode::from_name("ann"), Some(EngineMode::Ann));
        assert_eq!(EngineMode::from_name("auto"), Some(EngineMode::Auto));
        assert_eq!(EngineMode::from_name("fast"), None);
        assert_eq!(EngineMode::default(), EngineMode::Auto);
        assert_eq!(EngineUsed::Ann.name(), "ann");
    }

    #[test]
    fn ann_mode_without_index_serves_exact() {
        let idx = tiny_index();
        assert!(!idx.has_ann());
        let (hits, engine) = idx.topk_with_mode(0, 2, None, EngineMode::Ann).unwrap();
        assert_eq!(engine, EngineUsed::Exact);
        assert_eq!(hits, idx.topk(0, 2, None).unwrap());
    }

    #[test]
    fn ann_rerank_is_bit_identical_to_exact() {
        let mut idx = tiny_index();
        idx.build_ann(Backend::Ivf).unwrap();
        assert_eq!(idx.ann_backend(), Some(Backend::Ivf));
        for node in 0..4 {
            let exact = idx.topk(node, 4, None).unwrap();
            let (ann, engine) = idx.topk_with_mode(node, 4, None, EngineMode::Ann).unwrap();
            assert_eq!(engine, EngineUsed::Ann);
            // Tiny n: the candidate set covers everything, so hits AND
            // bit-level scores must agree exactly.
            assert_eq!(ann.len(), exact.len());
            for (a, e) in ann.iter().zip(&exact) {
                assert_eq!(a.target, e.target);
                assert_eq!(a.score.to_bits(), e.score.to_bits());
            }
        }
    }

    #[test]
    fn auto_mode_respects_threshold() {
        let mut idx = tiny_index();
        idx.build_ann(Backend::Hnsw).unwrap();
        // Default threshold (4096) far exceeds 4 target nodes: exact.
        assert!(!idx.would_use_ann(EngineMode::Auto));
        let (_, engine) = idx.topk_with_mode(0, 2, None, EngineMode::Auto).unwrap();
        assert_eq!(engine, EngineUsed::Exact);
        idx.set_auto_threshold(1);
        assert!(idx.would_use_ann(EngineMode::Auto));
        let (_, engine) = idx.topk_with_mode(0, 2, None, EngineMode::Auto).unwrap();
        assert_eq!(engine, EngineUsed::Ann);
        // Exact mode never routes to ANN.
        assert!(!idx.would_use_ann(EngineMode::Exact));
    }

    #[test]
    fn theta_override_works_through_ann() {
        let mut idx = tiny_index();
        idx.build_ann(Backend::Ivf).unwrap();
        idx.set_auto_threshold(1);
        // θ scales the query vector only, so overrides need no rebuild.
        let exact = idx.topk(1, 3, Some(&[1.0, 0.0])).unwrap();
        let (ann, _) = idx
            .topk_with_mode(1, 3, Some(&[1.0, 0.0]), EngineMode::Ann)
            .unwrap();
        for (a, e) in ann.iter().zip(&exact) {
            assert_eq!(a.target, e.target);
            assert_eq!(a.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn batch_with_mode_matches_single_queries() {
        let mut idx = tiny_index();
        idx.build_ann(Backend::Ivf).unwrap();
        idx.set_auto_threshold(1);
        let nodes = [3, 0, 2];
        let batch = idx
            .topk_batch_with_mode(&nodes, 2, None, EngineMode::Auto)
            .unwrap();
        for (i, &n) in nodes.iter().enumerate() {
            let (hits, engine) = idx.topk_with_mode(n, 2, None, EngineMode::Auto).unwrap();
            assert_eq!(batch[i].0, hits);
            assert_eq!(batch[i].1, engine);
        }
    }

    #[test]
    fn index_bytes_roundtrip_through_artifact() {
        let mut idx = tiny_index();
        idx.build_ann(Backend::Hnsw).unwrap();
        let blob = idx.index_bytes().unwrap();
        let mut fresh = tiny_index();
        fresh.attach_index_bytes(&blob).unwrap();
        assert_eq!(fresh.ann_backend(), Some(Backend::Hnsw));
        // A blob from different vectors is rejected and leaves the index
        // without an ANN attachment.
        let mut other = {
            let data = vec![0.0, 1.0, 1.0, 0.0, 0.8, 0.6, 0.5, -1.0];
            let m = Mat::new(4, 2, data).unwrap();
            let artifact = Artifact::new(
                vec![0.5, 0.5],
                vec![m.clone(), m.clone()],
                vec![m.clone(), m],
                false,
            )
            .unwrap();
            TopkIndex::from_artifact(artifact)
        };
        assert!(other.attach_index_bytes(&blob).is_err());
        assert!(!other.has_ann());
    }

    #[test]
    fn gathered_exact_is_bit_identical_to_sequential() {
        let idx = tiny_index();
        // Repeats, ties (nodes 0/1 are orthogonal basis rows), mixed k.
        let queries = [
            RowQuery { node: 3, k: 1 },
            RowQuery { node: 0, k: 4 },
            RowQuery { node: 2, k: 2 },
            RowQuery { node: 0, k: 2 },
            RowQuery { node: 1, k: 100 },
        ];
        let batch = idx.topk_gathered(&queries, None).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (got, q) in batch.iter().zip(&queries) {
            let want = idx.topk(q.node, q.k, None).unwrap();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.target, w.target);
                assert_eq!(g.score.to_bits(), w.score.to_bits());
            }
        }
        // θ overrides flow through unchanged.
        let th = [1.0, 0.0];
        let batch = idx.topk_gathered(&queries, Some(&th)).unwrap();
        for (got, q) in batch.iter().zip(&queries) {
            let want = idx.topk(q.node, q.k, Some(&th)).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.target, w.target);
                assert_eq!(g.score.to_bits(), w.score.to_bits());
            }
        }
        // Whole batch rejected on any bad query.
        assert_eq!(
            idx.topk_gathered(&[RowQuery { node: 0, k: 0 }], None)
                .unwrap_err(),
            QueryError::ZeroK
        );
        assert_eq!(
            idx.topk_gathered(&[RowQuery { node: 9, k: 1 }], None)
                .unwrap_err(),
            QueryError::NodeOutOfRange { node: 9, nodes: 4 }
        );
    }

    #[test]
    fn gathered_with_mode_matches_sequential_per_engine() {
        let mut idx = tiny_index();
        idx.build_ann(Backend::Ivf).unwrap();
        idx.set_auto_threshold(1);
        let queries = [
            RowQuery { node: 3, k: 2 },
            // k > target count: the per-query search comes back clamped,
            // which is still >= k.min(target_nodes) so it stays on ANN —
            // same decision the sequential path makes.
            RowQuery { node: 0, k: 9 },
            RowQuery { node: 2, k: 4 },
            RowQuery { node: 3, k: 1 },
        ];
        for mode in [EngineMode::Exact, EngineMode::Ann, EngineMode::Auto] {
            let batch = idx.topk_gathered_with_mode(&queries, None, mode).unwrap();
            for (i, q) in queries.iter().enumerate() {
                let (hits, engine) = idx.topk_with_mode(q.node, q.k, None, mode).unwrap();
                assert_eq!(batch[i].1, engine, "engine for query {i} under {mode}");
                assert_eq!(batch[i].0.len(), hits.len());
                for (g, w) in batch[i].0.iter().zip(&hits) {
                    assert_eq!(g.target, w.target);
                    assert_eq!(g.score.to_bits(), w.score.to_bits());
                }
            }
        }
        // θ override through the gathered ANN re-rank.
        let th = [0.0, 1.0];
        let batch = idx
            .topk_gathered_with_mode(&queries, Some(&th), EngineMode::Ann)
            .unwrap();
        for (i, q) in queries.iter().enumerate() {
            let (hits, _) = idx
                .topk_with_mode(q.node, q.k, Some(&th), EngineMode::Ann)
                .unwrap();
            for (g, w) in batch[i].0.iter().zip(&hits) {
                assert_eq!(g.target, w.target);
                assert_eq!(g.score.to_bits(), w.score.to_bits());
            }
        }
    }

    fn tiny_artifact() -> Artifact {
        let data = vec![1.0, 0.0, 0.0, 1.0, 0.6, 0.8, -1.0, 0.5];
        let m = Mat::new(4, 2, data).unwrap();
        Artifact::new(
            vec![0.5, 0.5],
            vec![m.clone(), m.clone()],
            vec![m.clone(), m],
            false,
        )
        .unwrap()
    }

    fn assert_hits_bitwise(got: &[Hit], want: &[Hit]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.target, w.target);
            assert_eq!(g.score.to_bits(), w.score.to_bits());
        }
    }

    #[test]
    fn quant_modes_parse_and_tag() {
        assert_eq!(QuantMode::from_name("off"), Some(QuantMode::Off));
        assert_eq!(QuantMode::from_name("int8"), Some(QuantMode::Int8));
        assert_eq!(QuantMode::from_name("f16"), Some(QuantMode::F16));
        assert_eq!(QuantMode::from_name("int4"), None);
        assert_eq!(QuantMode::default(), QuantMode::Off);
        assert_eq!(QuantMode::Int8.tag(), 1);
        assert_eq!(QuantMode::F16.name(), "f16");
    }

    #[test]
    fn quantized_scans_are_bit_identical_across_engines() {
        for (gmode, smode) in [
            (galign_quant::QuantMode::Int8, QuantMode::Int8),
            (galign_quant::QuantMode::F16, QuantMode::F16),
        ] {
            let artifact = tiny_artifact().with_quant(gmode, true).unwrap();
            let mut idx = TopkIndex::from_artifact(artifact);
            assert_eq!(idx.quant_available(), Some(smode));
            assert!(idx.quant_resident_bytes() > 0);
            assert!(idx.f64_resident_bytes() > 0);
            idx.build_ann(Backend::Ivf).unwrap();
            for node in 0..4 {
                for k in [1, 2, 4, 9] {
                    let exact = idx.topk(node, k, None).unwrap();
                    for mode in [EngineMode::Exact, EngineMode::Ann, EngineMode::Auto] {
                        let (hits, _) = idx.topk_with_opts(node, k, None, mode, smode).unwrap();
                        assert_hits_bitwise(&hits, &exact);
                        // The other panel encoding degrades to f64 —
                        // results must still match bit for bit.
                        let other = match smode {
                            QuantMode::Int8 => QuantMode::F16,
                            _ => QuantMode::Int8,
                        };
                        let (hits, _) = idx.topk_with_opts(node, k, None, mode, other).unwrap();
                        assert_hits_bitwise(&hits, &exact);
                    }
                }
            }
            // Batched and gathered quantized paths match per-query results.
            let nodes = [3, 0, 2, 2];
            let batch = idx
                .topk_batch_with_opts(&nodes, 3, None, EngineMode::Exact, smode)
                .unwrap();
            for (i, &n) in nodes.iter().enumerate() {
                assert_hits_bitwise(&batch[i].0, &idx.topk(n, 3, None).unwrap());
            }
            let queries = [
                RowQuery { node: 3, k: 1 },
                RowQuery { node: 0, k: 4 },
                RowQuery { node: 1, k: 100 },
            ];
            for mode in [EngineMode::Exact, EngineMode::Ann, EngineMode::Auto] {
                let gathered = idx
                    .topk_gathered_with_opts(&queries, None, mode, smode)
                    .unwrap();
                for (i, q) in queries.iter().enumerate() {
                    let (want, engine) =
                        idx.topk_with_opts(q.node, q.k, None, mode, smode).unwrap();
                    assert_eq!(gathered[i].1, engine);
                    assert_hits_bitwise(&gathered[i].0, &want);
                }
            }
        }
    }

    #[test]
    fn quant_primary_artifact_serves_bit_identically_through_bytes() {
        let primary = tiny_artifact()
            .with_quant(galign_quant::QuantMode::Int8, false)
            .unwrap();
        let reloaded = Artifact::from_bytes(&primary.to_bytes()).unwrap();
        let idx = TopkIndex::from_artifact(reloaded);
        assert_eq!(idx.quant_available(), Some(QuantMode::Int8));
        for node in 0..4 {
            let exact = idx.topk(node, 4, None).unwrap();
            let (hits, _) = idx
                .topk_with_opts(node, 4, None, EngineMode::Exact, QuantMode::Int8)
                .unwrap();
            assert_hits_bitwise(&hits, &exact);
        }
    }

    #[test]
    fn unnormalized_artifact_disables_quant_panels() {
        let mut artifact = tiny_artifact()
            .with_quant(galign_quant::QuantMode::Int8, true)
            .unwrap();
        // Forge the flag off: the index renormalizes rows at load, so the
        // panels no longer describe them and must be dropped.
        artifact.rows_normalized = false;
        let idx = TopkIndex::from_artifact(artifact);
        assert_eq!(idx.quant_available(), None);
        assert_eq!(idx.quant_resident_bytes(), 0);
        // Quantized requests silently serve the f64 path.
        let (hits, _) = idx
            .topk_with_opts(0, 2, None, EngineMode::Exact, QuantMode::Int8)
            .unwrap();
        assert_hits_bitwise(&hits, &idx.topk(0, 2, None).unwrap());
    }

    #[test]
    fn select_topk_ties_break_by_smaller_index() {
        let scores = [1.0, 3.0, 3.0, 0.5];
        let hits = select_topk(&scores, 2);
        assert_eq!(hits[0].target, 1);
        assert_eq!(hits[1].target, 2);
        assert_eq!(hits, select_topk_bruteforce(&scores, 2));
    }

    #[test]
    fn select_topk_empty_and_k_zero() {
        assert!(select_topk(&[], 3).is_empty());
        assert!(select_topk(&[1.0], 0).is_empty());
    }
}
