//! ANN engine equivalence guarantees.
//!
//! The ANN engine is allowed to *miss* targets (that is what recall
//! measures) but never to *mis-score* one: every hit it returns is
//! re-ranked through the exact `select_topk` kernel, so its score must be
//! bit-identical to what the exact engine computes for the same
//! `(node, target)` pair. Two tests pin that contract:
//!
//! * a property test over random multi-order artifacts, both backends and
//!   random θ overrides, asserting bit-identical scores for every hit the
//!   engines share (and, stronger, against the full exact ranking);
//! * a recall floor — recall@10 ≥ 0.95 on a seeded clustered fixture of
//!   n = 2000 nodes with 64 concatenated dimensions (2 layers × 32),
//!   mirroring the shape of trained GAlign multi-order embeddings.

use std::collections::HashMap;

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::topk::{Backend, EngineMode, TopkIndex};
use proptest::prelude::*;

/// xorshift64* — deterministic fixtures without external RNG deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

/// Random (unnormalized) layer matrices; `TopkIndex::from_artifact`
/// row-normalizes them, exactly as serving does for trained embeddings.
fn random_layers(rng: &mut Rng, n: usize, dims: &[usize]) -> Vec<Mat> {
    dims.iter()
        .map(|&d| {
            let data: Vec<f64> = (0..n * d).map(|_| rng.signed_unit()).collect();
            Mat::new(n, d, data).expect("shape by construction")
        })
        .collect()
}

/// Clustered layer matrices: `clusters` random centers, every node a
/// center plus bounded noise, cluster assignment shared across layers
/// (node identity, not the layer, decides the neighborhood — the shape
/// trained multi-order GCN embeddings take). Uniform random points in
/// d = 64 concentrate distances and carry no recoverable neighborhood
/// structure, which is the known worst case for any ANN method, so the
/// recall floor is pinned on data shaped like the actual workload.
fn clustered_layers(
    rng: &mut Rng,
    n: usize,
    dims: &[usize],
    clusters: usize,
    noise: f64,
) -> Vec<Mat> {
    let centers: Vec<Vec<Vec<f64>>> = dims
        .iter()
        .map(|&d| {
            (0..clusters)
                .map(|_| (0..d).map(|_| rng.signed_unit()).collect())
                .collect()
        })
        .collect();
    dims.iter()
        .enumerate()
        .map(|(l, &d)| {
            let mut data = Vec::with_capacity(n * d);
            for node in 0..n {
                let c = &centers[l][node % clusters];
                data.extend(c.iter().map(|&v| v + noise * rng.signed_unit()));
            }
            Mat::new(n, d, data).expect("shape by construction")
        })
        .collect()
}

fn backend_of(tag: u32) -> Backend {
    if tag == 0 {
        Backend::Hnsw
    } else {
        Backend::Ivf
    }
}

proptest! {
    #[test]
    fn prop_ann_hits_score_bit_identical_to_exact(
        seed in 0u64..24,
        n in 8usize..72,
        k in 1usize..8,
        backend_tag in 0u32..2,
    ) {
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9) + 1);
        let dims = [5usize, 3];
        let target = random_layers(&mut rng, n, &dims);
        let source = random_layers(&mut rng, n, &dims);
        let theta: Vec<f64> = (0..dims.len())
            .map(|_| 0.1 + 0.9 * (rng.signed_unit().abs()))
            .collect();
        let artifact = Artifact::new(vec![1.0, 1.0], source, target, false)
            .expect("valid artifact");
        let mut index = TopkIndex::from_artifact(artifact);
        index.build_ann(backend_of(backend_tag)).expect("build succeeds");

        for node in [0, n / 2, n - 1] {
            // The full exact ranking: one canonical score per target.
            let exact_all = index.topk(node, n, Some(&theta)).expect("exact query");
            let canonical: HashMap<usize, u64> =
                exact_all.iter().map(|h| (h.target, h.score.to_bits())).collect();
            let (ann, _used) = index
                .topk_with_mode(node, k, Some(&theta), EngineMode::Ann)
                .expect("ann query");
            prop_assert!(ann.len() <= k);
            for h in &ann {
                // Bit-identical, not approximately equal: the ANN path
                // re-scores through the very same FP operation sequence.
                prop_assert_eq!(h.score.to_bits(), canonical[&h.target]);
            }
            // Result order obeys the select_topk contract: descending
            // score, ties broken by ascending target id.
            for w in ann.windows(2) {
                prop_assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].target < w[1].target),
                    "order violated: {:?} before {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn recall_at_10_meets_floor_on_seeded_multiorder_embeddings() {
    const N: usize = 2000;
    const K: usize = 10;
    const QUERIES: usize = 100;
    const CLUSTERS: usize = 40;
    const NOISE: f64 = 0.25;
    const DIMS: [usize; 2] = [32, 32]; // 64 concatenated dims

    let mut rng = Rng::new(0xa11e_2000);
    let target = clustered_layers(&mut rng, N, &DIMS, CLUSTERS, NOISE);
    // Sources sit near the targets (aligned networks produce nearby
    // multi-order embeddings), so the exact top-10 is a meaningful
    // neighborhood rather than an arbitrary cut of a flat ranking.
    let source: Vec<Mat> = target
        .iter()
        .map(|m| {
            let (rows, cols) = (m.rows(), m.cols());
            let data: Vec<f64> = (0..rows)
                .flat_map(|r| {
                    m.row(r)
                        .iter()
                        .map(|&v| v + 0.05 * rng.signed_unit())
                        .collect::<Vec<_>>()
                })
                .collect();
            Mat::new(rows, cols, data).expect("shape preserved")
        })
        .collect();

    for backend in [Backend::Hnsw, Backend::Ivf] {
        let artifact = Artifact::new(vec![1.0, 1.0], source.clone(), target.clone(), false)
            .expect("valid artifact");
        let mut index = TopkIndex::from_artifact(artifact);
        index.build_ann(backend).expect("build succeeds");

        let mut found = 0usize;
        let mut total = 0usize;
        for q in 0..QUERIES {
            let node = q * (N / QUERIES);
            let exact = index.topk(node, K, None).expect("exact query");
            let (ann, _) = index
                .topk_with_mode(node, K, None, EngineMode::Ann)
                .expect("ann query");
            let truth: Vec<usize> = exact.iter().map(|h| h.target).collect();
            found += ann.iter().filter(|h| truth.contains(&h.target)).count();
            total += exact.len();
        }
        let recall = found as f64 / total as f64;
        assert!(
            recall >= 0.95,
            "{backend}: recall@{K} = {recall:.4} below the 0.95 floor"
        );
    }
}
