//! Batched-serving equivalence: the `/v2/align/topk` envelope and the
//! coalescing batch scheduler must be invisible in the bytes. Three
//! layers of evidence:
//!
//! 1. **Kernel**: `topk_gathered_with_mode` over a multi-query batch is
//!    bit-identical (targets, score bits, engine choice) to the
//!    single-query path, on random embeddings with deliberate score ties
//!    and across exact/ANN/auto engines — property-tested with the
//!    crate's deterministic xorshift.
//! 2. **Wire**: a live server's `/v2` response is byte-for-byte
//!    `{"results":[...]}` over the exact bodies `/v1` returns for the
//!    same queries — including per-query θ overrides, per-query engine
//!    modes, and per-query validation errors.
//! 3. **Coalescing**: a concurrent burst against a widened batch window
//!    answers every request with the same bytes the quiet sequential
//!    server produced.
//!
//! Plus the window/deadline composition: a coalescing window configured
//! beyond the compute deadline turns requests into deadline 503s rather
//! than silently stretching the latency contract.

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::client::{Client, ClientConfig};
use galign_serve::server::{ServeConfig, Server, ServerHandle};
use galign_serve::testutil::Xorshift;
use galign_serve::topk::{Backend, EngineMode, RowQuery, TopkIndex};
use std::time::Duration;

/// Random target embeddings with duplicated rows, so tied scores (the
/// hard case for top-k ordering) appear in every instance.
fn random_tied_index(rng: &mut Xorshift, with_ann: bool) -> TopkIndex {
    let layers = 1 + rng.below(2);
    let n_s = 3 + rng.below(12);
    let n_t = 6 + rng.below(24);
    let theta: Vec<f64> = (0..layers).map(|_| 0.1 + rng.f64()).collect();
    let mut source = Vec::new();
    let mut target = Vec::new();
    for _ in 0..layers {
        let d = 2 + rng.below(5);
        source.push(Mat::new(
            n_s,
            d,
            (0..n_s * d).map(|_| rng.f64_signed()).collect(),
        ));
        let mut rows: Vec<Vec<f64>> = (0..n_t)
            .map(|_| (0..d).map(|_| rng.f64_signed()).collect())
            .collect();
        // Duplicate ~1/3 of the rows onto earlier ones: identical rows
        // score identically for every query, forcing tie-breaks.
        for _ in 0..n_t / 3 {
            let src = rng.below(n_t);
            let dst = (src + 1 + rng.below(n_t - 1)) % n_t;
            rows[dst] = rows[src].clone();
        }
        target.push(Mat::new(n_t, d, rows.into_iter().flatten().collect()));
    }
    let artifact = Artifact::new(
        theta,
        source.into_iter().collect::<Result<_, _>>().unwrap(),
        target.into_iter().collect::<Result<_, _>>().unwrap(),
        false,
    )
    .unwrap();
    let mut index = TopkIndex::from_artifact(artifact);
    if with_ann {
        index.build_ann(Backend::Hnsw).expect("ann build");
    }
    index
}

#[test]
fn gathered_batches_match_single_queries_bitwise() {
    let mut rng = Xorshift::new(0xBA7C);
    for case in 0..30 {
        let with_ann = case % 2 == 1;
        let index = random_tied_index(&mut rng, with_ann);
        let theta: Option<Vec<f64>> = if rng.below(2) == 0 {
            None
        } else {
            Some((0..index.num_layers()).map(|_| rng.f64()).collect())
        };
        let modes: &[EngineMode] = if with_ann {
            &[EngineMode::Exact, EngineMode::Ann, EngineMode::Auto]
        } else {
            &[EngineMode::Exact, EngineMode::Auto]
        };
        for &mode in modes {
            let queries: Vec<RowQuery> = (0..1 + rng.below(7))
                .map(|_| RowQuery {
                    node: rng.below(index.source_nodes()),
                    k: 1 + rng.below(index.target_nodes() + 2),
                })
                .collect();
            let batched = index
                .topk_gathered_with_mode(&queries, theta.as_deref(), mode)
                .unwrap();
            assert_eq!(batched.len(), queries.len());
            for (q, (hits, used)) in queries.iter().zip(&batched) {
                let (single, used_single) = index
                    .topk_with_mode(q.node, q.k, theta.as_deref(), mode)
                    .unwrap();
                assert_eq!(
                    *used, used_single,
                    "case {case}: engine drifted for node {} k {}",
                    q.node, q.k
                );
                assert_eq!(hits.len(), single.len(), "case {case}");
                for (b, s) in hits.iter().zip(&single) {
                    assert_eq!(b.target, s.target, "case {case} node {}", q.node);
                    assert_eq!(
                        b.score.to_bits(),
                        s.score.to_bits(),
                        "case {case}: score bits drifted at target {}",
                        b.target
                    );
                }
            }
        }
    }
}

/// A small fixture with ties and an ANN index, served over real TCP.
fn demo_index() -> TopkIndex {
    // Rows 2 and 3 are identical: every query ties them, so the wire
    // bytes also pin the tie contract (ascending target id).
    let l0 = Mat::new(
        6,
        3,
        vec![
            1.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, //
            0.6, 0.8, 0.0, //
            0.6, 0.8, 0.0, //
            0.0, 0.0, 1.0, //
            0.5, 0.5, 0.5,
        ],
    )
    .unwrap();
    let src = Mat::new(
        4,
        3,
        vec![
            1.0, 0.1, 0.0, //
            0.0, 0.9, 0.2, //
            0.3, 0.3, 0.9, //
            0.7, 0.0, 0.7,
        ],
    )
    .unwrap();
    let artifact = Artifact::new(vec![1.0], vec![src], vec![l0], false).unwrap();
    let mut index = TopkIndex::from_artifact(artifact);
    index.build_ann(Backend::Hnsw).expect("ann build");
    index
}

fn start(cfg: ServeConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", demo_index(), cfg)
        .expect("bind ephemeral port")
        .spawn()
}

fn plain_client(addr: &str) -> Client {
    Client::with_config(
        addr,
        ClientConfig {
            max_retries: 0,
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn v2_over_http_is_byte_concatenation_of_v1_bodies() {
    let handle = start(ServeConfig::default());
    let addr = handle.addr().to_string();
    let client = plain_client(&addr);

    // A deliberately mixed batch: defaults, multi-node, per-query θ,
    // per-query engine mode, and two invalid queries (bad k, bad node).
    let queries = [
        r#"{"nodes":[0],"k":3}"#,
        r#"{"nodes":[1,2],"k":2,"mode":"exact"}"#,
        r#"{"nodes":[3],"k":4,"theta":[0.5],"mode":"ann"}"#,
        r#"{"node":2,"mode":"auto"}"#,
        r#"{"nodes":[0],"k":0}"#,
        r#"{"nodes":[99],"k":1}"#,
    ];
    let mut v1_bodies = Vec::new();
    for q in &queries {
        let resp = client.post_json("/v1/align/topk", q).unwrap();
        v1_bodies.push(resp.body_str());
    }
    let envelope = format!("{{\"queries\":[{}]}}", queries.join(","));
    let resp = client.post_json("/v2/align/topk", &envelope).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(
        resp.body_str(),
        format!("{{\"results\":[{}]}}", v1_bodies.join(",")),
        "a /v2 response must embed the exact /v1 bodies"
    );

    // Envelope-level failures stay whole-request 400s.
    let resp = client
        .post_json("/v2/align/topk", r#"{"nodes":[0]}"#)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("queries"), "{}", resp.body_str());
    handle.shutdown().unwrap();
}

#[test]
fn coalesced_bursts_answer_with_sequential_bytes() {
    // A wide window plus a concurrent burst makes multi-job flushes all
    // but certain; the assertion is that they are invisible.
    let handle = start(ServeConfig {
        workers: 2,
        batch_window: Duration::from_millis(5),
        batch_cap: 64,
        queue_depth: 256,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    let bodies: Vec<String> = (0..6)
        .map(|i| format!("{{\"nodes\":[{}],\"k\":{}}}", i % 4, 1 + i % 5))
        .collect();
    // Sequential reference, one quiet request at a time.
    let client = plain_client(&addr);
    let reference: Vec<String> = bodies
        .iter()
        .map(|b| {
            let resp = client.post_json("/v1/align/topk", b).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body_str());
            resp.body_str()
        })
        .collect();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let addr = addr.clone();
            let bodies = bodies.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let client = Client::with_config(
                    &addr,
                    ClientConfig {
                        max_retries: 5,
                        jitter_seed: 0xB00 + t as u64,
                        ..ClientConfig::default()
                    },
                )
                .unwrap();
                let mut rng = Xorshift::new(0xC0A1 + t as u64);
                for _ in 0..20 {
                    let i = rng.below(bodies.len());
                    let resp = client.post_json("/v1/align/topk", &bodies[i]).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body_str());
                    assert_eq!(
                        resp.body_str(),
                        reference[i],
                        "coalesced response drifted from the sequential bytes"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("burst thread");
    }
    handle.shutdown().unwrap();
}

#[test]
fn window_beyond_deadline_becomes_a_deadline_503() {
    // A lone request sits in the coalescer for the full window; with the
    // window configured past the compute deadline, flush-time deadline
    // enforcement must turn it into a labelled 503, not a late answer.
    let handle = start(ServeConfig {
        workers: 1,
        batch_window: Duration::from_millis(150),
        deadline: Duration::from_millis(30),
        retry_after_secs: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();
    let client = plain_client(&addr);
    let resp = client
        .post_json("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
        .unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("deadline"),
        "expected a deadline shed, got: {}",
        resp.body_str()
    );
    assert_eq!(
        resp.retry_after_secs(),
        Some(2.0),
        "deadline 503s carry Retry-After"
    );
    handle.shutdown().unwrap();
}
