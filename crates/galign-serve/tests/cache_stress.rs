//! Concurrent stress test for the sharded LRU cache (loom-free: plain
//! threads, high contention, deterministic per-key canonical values).
//!
//! The invariant under test is *result consistency*: the cache may evict
//! whatever it likes under churn, but a hit must always return exactly
//! the value that belongs to that key — never a torn value, never
//! another key's result, and never a value that aliases across the
//! engine dimension of the key (exact vs ANN entries must stay
//! separate even when node/k/θ coincide).

use galign_serve::cache::{CachedHits, QueryKey, ShardedCache};
use galign_serve::topk::Hit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 20_000;
const KEYSPACE: usize = 256;
const CAPACITY: usize = 64; // far below KEYSPACE: constant eviction churn

/// The one legitimate value of a key — any hit must return exactly this.
/// The engine flag flips the scores so exact/ANN aliasing is detectable,
/// and the node id is woven into every field so cross-key mixups are too.
fn canonical(node: usize, k: usize, ann: bool) -> CachedHits {
    let flip = if ann { -1.0 } else { 1.0 };
    Arc::new(
        (0..k)
            .map(|i| Hit {
                target: node * 1000 + i,
                score: flip * (node as f64 + i as f64 / 16.0),
            })
            .collect::<Vec<_>>(),
    )
}

fn make_key(node: usize, ann: bool) -> (QueryKey, CachedHits) {
    let k = 1 + node % 7;
    // A third of the keyspace carries a θ override; bit-exact θ equality
    // is part of key identity.
    let theta = [0.5, 0.25 + node as f64 / KEYSPACE as f64];
    let key = if node.is_multiple_of(3) {
        QueryKey::with_engine(node, k, Some(&theta), ann)
    } else {
        QueryKey::with_engine(node, k, None, ann)
    };
    (key, canonical(node, k, ann))
}

/// xorshift64* per-thread op stream.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

#[test]
fn concurrent_hits_always_return_the_canonical_value() {
    let cache = ShardedCache::new(CAPACITY, 4);
    let observed_hits = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let observed_hits = &observed_hits;
            scope.spawn(move || {
                let mut rng = 0x5eed_0000 + t as u64;
                for _ in 0..OPS_PER_THREAD {
                    let r = next(&mut rng);
                    let node = (r % KEYSPACE as u64) as usize;
                    let ann = r & (1 << 40) != 0;
                    let (key, want) = make_key(node, ann);
                    if r & (1 << 41) != 0 {
                        cache.insert(key, Arc::clone(&want));
                    } else if let Some(got) = cache.get(&key) {
                        observed_hits.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(
                            got.as_slice(),
                            want.as_slice(),
                            "hit for node {node} (ann={ann}) returned a foreign value"
                        );
                    }
                }
            });
        }
    });
    // Sanity on the workload itself: with a 256-key space over a 64-entry
    // cache and ~80k gets, a churn-free run would be suspicious. The
    // invariant above is the real assertion; this guards against the
    // test silently degenerating (e.g. all gets missing).
    let (hits, misses) = cache.stats();
    assert_eq!(
        observed_hits.load(Ordering::Relaxed),
        hits,
        "every observed hit must be counted"
    );
    assert!(hits > 0, "stress produced no hits: nothing was verified");
    assert!(misses > 0, "stress produced no misses: no eviction churn");
    assert!(
        cache.len() <= CAPACITY.div_ceil(4) * 4,
        "cache grew past its sharded capacity: {}",
        cache.len()
    );
}

#[test]
fn exact_and_ann_entries_never_alias() {
    // Same node/k/θ, different engine route: both entries must coexist
    // and each get must see its own engine's value.
    let cache = ShardedCache::new(CAPACITY, 2);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let cache = &cache;
            scope.spawn(move || {
                let ann = t % 2 == 0;
                for round in 0..5_000 {
                    let node = round % 8;
                    let (key, want) = make_key(node, ann);
                    cache.insert(key.clone(), Arc::clone(&want));
                    let got = cache.get(&key).expect("just inserted, capacity > keyspace");
                    assert_eq!(
                        got.as_slice(),
                        want.as_slice(),
                        "engine route leaked between cache entries (ann={ann})"
                    );
                }
            });
        }
    });
    // Both routes of node 0 are present as distinct entries.
    let (exact_key, exact_want) = make_key(0, false);
    let (ann_key, ann_want) = make_key(0, true);
    assert_ne!(exact_key, ann_key);
    assert_eq!(
        cache.get(&exact_key).expect("exact entry").as_slice(),
        exact_want.as_slice()
    );
    assert_eq!(
        cache.get(&ann_key).expect("ann entry").as_slice(),
        ann_want.as_slice()
    );
}
