//! Deadline propagation between a caller and the serve tier, without
//! failpoints: a request advertising its remaining budget via
//! `x-galign-deadline-ms` gets a per-request deadline clamped to that
//! budget, so a job whose caller has already given up is shed with a
//! labelled `503 + Retry-After` at flush time instead of computing an
//! answer nobody is waiting for. The client side is covered too: a
//! deadline-carrying request stamps the header with its *remaining*
//! milliseconds, and an already-expired deadline fails fast without
//! touching the network.

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::client::{Client, ClientConfig};
use galign_serve::server::{ServeConfig, Server, ServerHandle, DEADLINE_HEADER};
use galign_serve::topk::TopkIndex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn test_server(cfg: ServeConfig) -> ServerHandle {
    let m = Mat::new(4, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7, 0.5, 0.5]).unwrap();
    let index = TopkIndex::from_artifact(
        Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap(),
    );
    Server::bind("127.0.0.1:0", index, cfg).unwrap().spawn()
}

/// One raw request with an optional extra header line; returns
/// (status, full response text). Raw sockets keep the test independent
/// of the client's own header stamping.
fn raw_request(addr: SocketAddr, extra_header: Option<&str>) -> (u16, String) {
    let body = r#"{"nodes":[0],"k":1}"#;
    let extra = extra_header.map_or(String::new(), |h| format!("{h}\r\n"));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST /v1/align/topk HTTP/1.1\r\nhost: test\r\n{extra}content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, text)
}

#[test]
fn zero_advertised_budget_is_shed_at_flush_time() {
    let handle = test_server(ServeConfig {
        retry_after_secs: 2,
        ..ServeConfig::default()
    });
    let (status, text) = raw_request(handle.addr(), Some("x-galign-deadline-ms: 0"));
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("deadline"), "{text}");
    assert!(
        text.to_ascii_lowercase().contains("retry-after: 2"),
        "deadline 503s carry Retry-After: {text}"
    );
    handle.shutdown().unwrap();
}

#[test]
fn generous_or_absent_budget_serves_normally() {
    let handle = test_server(ServeConfig::default());
    let (status, text) = raw_request(handle.addr(), Some("x-galign-deadline-ms: 60000"));
    assert_eq!(status, 200, "{text}");
    let (status, text) = raw_request(handle.addr(), None);
    assert_eq!(status, 200, "{text}");
    // Malformed budgets are ignored, not treated as zero.
    let (status, text) = raw_request(handle.addr(), Some("x-galign-deadline-ms: soon"));
    assert_eq!(status, 200, "{text}");
    handle.shutdown().unwrap();
}

#[test]
fn client_stamps_remaining_budget_on_the_wire() {
    // A hand-rolled single-shot server captures the raw request bytes.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let capture = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 4096];
        let mut req = Vec::new();
        // Read until the (empty) body has arrived: headers end + body.
        while !String::from_utf8_lossy(&req).contains("\r\n\r\n") {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "client hung up before sending a full request");
            req.extend_from_slice(&buf[..n]);
        }
        stream
            .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}")
            .unwrap();
        String::from_utf8_lossy(&req).into_owned()
    });

    let client = Client::with_config(
        &addr.to_string(),
        ClientConfig {
            max_retries: 0,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(1);
    let resp = client
        .post_json_with_deadline("/v1/align/topk", "{}", Some(deadline))
        .expect("request should reach the capture server");
    assert_eq!(resp.status, 200);

    let req = capture.join().unwrap();
    let line = req
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with(DEADLINE_HEADER))
        .unwrap_or_else(|| panic!("request must carry {DEADLINE_HEADER}: {req}"));
    let ms: u64 = line
        .split(':')
        .nth(1)
        .and_then(|v| v.trim().parse().ok())
        .expect("budget must be an integer");
    assert!(
        ms > 0 && ms <= 1000,
        "stamped budget must be the remaining time, got {ms}ms"
    );
}

#[test]
fn expired_deadline_fails_fast_without_an_attempt() {
    // Bound but never accepted: if the client attempted the request it
    // would connect and block, so an instant TimedOut proves the loop
    // checked the deadline first.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = Client::with_config(&addr.to_string(), ClientConfig::default()).unwrap();
    let started = Instant::now();
    let err = client
        .post_json_with_deadline("/v1/align/topk", "{}", Some(Instant::now()))
        .expect_err("expired deadline must not produce a response");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "deadline check must not sleep through retries"
    );
}
