//! Hot artifact swap under sustained load: a serve node watching a
//! generation pointer file must swap its `TopkIndex` atomically —
//! zero dropped or errored requests, and every response consistent
//! with exactly one generation (the `x-galign-generation` header says
//! which, and the body must be that generation's answer, never a blend).

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::server::{ServeConfig, Server, ServerHandle, GENERATION_HEADER};
use galign_serve::topk::TopkIndex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn artifact(seed: u64) -> Artifact {
    let mut rng = Rng(seed | 1);
    let mk = |n: usize, d: usize, rng: &mut Rng| {
        Mat::new(n, d, (0..n * d).map(|_| rng.signed_unit()).collect()).unwrap()
    };
    let source = mk(5, 4, &mut rng);
    let target = mk(9, 4, &mut rng);
    Artifact::new(vec![1.0], vec![source], vec![target], false).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("galign-hot-swap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const QUERY: &str = r#"{"nodes": [0, 1, 2, 3, 4], "k": 6}"#;

/// One request; returns (status, generation header value, body).
fn query(addr: SocketAddr) -> (u16, u64, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST /v1/align/topk HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{QUERY}",
        QUERY.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("headerless response: {response:?}"));
    let generation = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case(GENERATION_HEADER)
                .then(|| value.trim().parse::<u64>().ok())?
        })
        .unwrap_or_else(|| panic!("no generation header: {head:?}"));
    (status, generation, body.to_string())
}

/// The expected body for an artifact: ask a throwaway server holding it.
fn expected_body(a: &Artifact) -> String {
    let single = Server::bind(
        "127.0.0.1:0",
        TopkIndex::from_artifact(a.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind reference node")
    .spawn();
    let (status, _, body) = query(single.addr());
    assert_eq!(status, 200, "{body}");
    single.shutdown().expect("reference shutdown");
    body
}

fn start_watching_server(a: &Artifact, pointer: &Path) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        TopkIndex::from_artifact(a.clone()),
        ServeConfig {
            workers: 3,
            generation_pointer: Some(pointer.to_path_buf()),
            generation_poll: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    )
    .expect("bind watching server")
    .spawn()
}

#[test]
fn pointer_swap_under_load_drops_nothing_and_is_atomic_per_request() {
    let a = artifact(21);
    let b = artifact(22);
    let expected_a = Arc::new(expected_body(&a));
    let expected_b = Arc::new(expected_body(&b));
    assert_ne!(
        *expected_a, *expected_b,
        "fixture artifacts must answer differently"
    );
    let b_path = tmp("gen-b.galign");
    b.write(&b_path).unwrap();
    let pointer = tmp("generation-pointer");

    let handle = start_watching_server(&a, &pointer);
    let addr = handle.addr();

    // Sustained load across the swap: every response must be a 200 whose
    // body matches its own generation header — old or new, never a
    // blend, never an error.
    let loaders: Vec<_> = (0..4)
        .map(|t| {
            let expected_a = Arc::clone(&expected_a);
            let expected_b = Arc::clone(&expected_b);
            std::thread::spawn(move || {
                let mut seen_new = 0u64;
                for i in 0..80 {
                    let (status, generation, body) = query(addr);
                    assert_eq!(status, 200, "dropped request (thread {t}, {i}): {body}");
                    match generation {
                        1 => assert_eq!(body, *expected_a, "thread {t} req {i}"),
                        2 => {
                            seen_new += 1;
                            assert_eq!(body, *expected_b, "thread {t} req {i}");
                        }
                        g => panic!("unexpected generation {g}"),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                seen_new
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(50));
    std::fs::write(&pointer, format!("{}\n", b_path.display())).unwrap();

    let mut swapped_responses = 0u64;
    for j in loaders {
        swapped_responses += j.join().expect("load thread panicked");
    }
    // The pointer poll is 20ms and the load runs ~160ms past the write:
    // the new generation must have been served while load was ongoing.
    assert!(
        swapped_responses > 0,
        "no request ever saw the swapped generation"
    );

    // Steady state after the swap: generation 2, new answers.
    let (status, generation, body) = query(addr);
    assert_eq!(status, 200);
    assert_eq!(generation, 2);
    assert_eq!(body, *expected_b);

    handle.shutdown().expect("clean shutdown");
}

/// One `POST /v1/admin/swap`; returns (status, body).
fn admin_swap(addr: SocketAddr, artifact_path: &Path) -> (u16, String) {
    let body = format!("{{\"artifact\":\"{}\"}}", artifact_path.display());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST /v1/admin/swap HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write swap request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let (_, resp_body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("headerless response: {response:?}"));
    (status, resp_body.to_string())
}

#[test]
fn admin_swap_over_http_installs_the_next_generation() {
    // The admin swap loads the artifact on its own thread (the event
    // loop parks the connection as dispatched, exactly like a top-k
    // job): this exercises that full round trip over live HTTP.
    let a = artifact(41);
    let b = artifact(42);
    let expected_b = expected_body(&b);
    let b_path = tmp("admin-swap-b.galign");
    b.write(&b_path).unwrap();
    let handle = Server::bind(
        "127.0.0.1:0",
        TopkIndex::from_artifact(a.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let (status, body) = admin_swap(addr, &b_path);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":2"), "{body}");
    let (status, generation, body) = query(addr);
    assert_eq!(status, 200, "{body}");
    assert_eq!(generation, 2, "queries after the swap serve the new data");
    assert_eq!(body, expected_b);

    // A failed swap reports 400 through the same dispatched path and
    // leaves the installed generation alone.
    let (status, body) = admin_swap(addr, Path::new("/no/such/artifact"));
    assert_eq!(status, 400, "{body}");
    let (_, generation, _) = query(addr);
    assert_eq!(generation, 2, "failed swaps install nothing");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn pointer_garbage_is_surfaced_but_never_fatal() {
    let a = artifact(31);
    let expected_a = Arc::new(expected_body(&a));
    let pointer = tmp("bad-pointer");
    let handle = start_watching_server(&a, &pointer);

    // Point at a file that is not an artifact: the server must keep
    // serving generation 1.
    let junk = tmp("junk.galign");
    std::fs::write(&junk, b"not an artifact").unwrap();
    std::fs::write(&pointer, format!("{}\n", junk.display())).unwrap();
    std::thread::sleep(Duration::from_millis(120));

    let (status, generation, body) = query(handle.addr());
    assert_eq!(status, 200);
    assert_eq!(generation, 1, "bad pointer must not install");
    assert_eq!(body, *expected_a);
    handle.shutdown().expect("clean shutdown");
}
