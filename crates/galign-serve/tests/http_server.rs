//! End-to-end server tests over real TCP sockets: bind an ephemeral
//! port, speak actual HTTP/1.1 from a raw `TcpStream` client, and verify
//! routing, query results, metrics exposure and graceful shutdown.

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::json::{self, Json};
use galign_serve::server::{ServeConfig, Server, ServerHandle};
use galign_serve::topk::TopkIndex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn demo_index() -> TopkIndex {
    // Two layers over two slightly different embeddings; node i's best
    // alignment is target i by construction.
    let l0 = Mat::new(
        4,
        3,
        vec![
            1.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, //
            0.0, 0.0, 1.0, //
            0.5, 0.5, 0.0,
        ],
    )
    .unwrap();
    let l1 = Mat::new(
        4,
        2,
        vec![
            0.9, 0.1, //
            0.1, 0.9, //
            -0.8, 0.3, //
            0.4, -0.4,
        ],
    )
    .unwrap();
    let artifact = Artifact::new(
        vec![0.6, 0.4],
        vec![l0.clone(), l1.clone()],
        vec![l0, l1],
        false,
    )
    .unwrap();
    TopkIndex::from_artifact(artifact)
}

fn start_server() -> ServerHandle {
    let cfg = ServeConfig {
        workers: 3,
        request_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    Server::bind("127.0.0.1:0", demo_index(), cfg)
        .expect("bind ephemeral port")
        .spawn()
}

/// Minimal HTTP client: one request, reads to EOF (the server closes).
fn send(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn full_server_lifecycle_over_tcp() {
    let handle = start_server();
    let addr = handle.addr();

    // healthz reports the artifact shape.
    let (status, body) = send(addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "{body}");
    let health = json::parse(&body).expect("healthz JSON");
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("source_nodes").unwrap().as_usize(), Some(4));
    assert_eq!(health.get("layers").unwrap().as_usize(), Some(2));

    // A top-k query over the wire matches the in-process kernel.
    let index = demo_index();
    let (status, body) = send(
        addr,
        "POST",
        "/v1/align/topk",
        Some(r#"{"nodes": [0, 1, 2, 3], "k": 2}"#),
    );
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("topk JSON");
    assert_eq!(doc.get("k").unwrap().as_usize(), Some(2));
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 4);
    for (node, entry) in results.iter().enumerate() {
        assert_eq!(entry.get("node").unwrap().as_usize(), Some(node));
        let matches = entry.get("matches").unwrap().as_arr().unwrap();
        let expected = index.topk(node, 2, None).unwrap();
        assert_eq!(matches.len(), expected.len());
        for (m, e) in matches.iter().zip(&expected) {
            assert_eq!(m.get("target").unwrap().as_usize(), Some(e.target));
            let score = m.get("score").unwrap().as_f64().unwrap();
            assert!(
                (score - e.score).abs() < 1e-9,
                "wire score {score} vs kernel {}",
                e.score
            );
        }
    }

    // Same query again: served from the LRU (visible in /metrics).
    let (status, _) = send(
        addr,
        "POST",
        "/v1/align/topk",
        Some(r#"{"nodes": [0, 1, 2, 3], "k": 2}"#),
    );
    assert_eq!(status, 200);
    let (status, body) = send(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let metrics = json::parse(&body).expect("metrics JSON");
    let counters = metrics.get("counters").expect("counters object");
    let counter = |name: &str| counters.get(name).and_then(Json::as_f64).unwrap_or(0.0);
    assert!(counter("serve.topk.requests") >= 2.0);
    assert!(counter("serve.topk.cache_hits") >= 4.0, "{body}");
    assert!(counter("serve.http.requests") >= 3.0);

    // Error surface.
    assert_eq!(send(addr, "GET", "/nope", None).0, 404);
    assert_eq!(send(addr, "GET", "/v1/align/topk", None).0, 405);
    let (status, body) = send(addr, "POST", "/v1/align/topk", Some("{"));
    assert_eq!(status, 400);
    assert!(body.contains("error"));
    let (status, body) = send(addr, "POST", "/v1/align/topk", Some(r#"{"nodes":[77]}"#));
    assert_eq!(status, 400);
    assert!(body.contains("out of range"), "{body}");

    // Graceful shutdown joins the accept loop and every worker.
    handle.shutdown().expect("clean shutdown");
    // The port is released: a fresh connection must fail (possibly after
    // the OS recycles the backlog, so allow a few attempts).
    let mut refused = false;
    for _ in 0..50 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(100)) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(refused, "listener still accepting after shutdown");
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let handle = start_server();
    let addr = handle.addr();
    let (status, body) = send(addr, "POST", "/v1/admin/shutdown", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("shutting-down"));
    // run() must return on its own — join via the handle (shutdown() is
    // idempotent: the flag is already set).
    handle.shutdown().expect("clean exit after admin shutdown");
}

#[test]
fn concurrent_clients_all_get_answers() {
    let handle = start_server();
    let addr = handle.addr();
    let mut joins = Vec::new();
    for t in 0..8 {
        joins.push(std::thread::spawn(move || {
            for i in 0..10 {
                let node = (t + i) % 4;
                let (status, body) = send(
                    addr,
                    "POST",
                    "/v1/align/topk",
                    Some(&format!("{{\"node\": {node}, \"k\": 1}}")),
                );
                assert_eq!(status, 200, "{body}");
                let doc = json::parse(&body).unwrap();
                let matches = doc.get("results").unwrap().as_arr().unwrap()[0]
                    .get("matches")
                    .unwrap()
                    .as_arr()
                    .unwrap();
                assert_eq!(matches[0].get("target").unwrap().as_usize(), Some(node));
            }
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    handle.shutdown().expect("clean shutdown");
}
