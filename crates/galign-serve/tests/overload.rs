//! Overload-protection integration tests, driven by the `serve.topk.stall`
//! failpoint: a stalled worker pool forces the bounded pending queue to
//! shed, and the tests assert the contract a client sees — `503` with a
//! `Retry-After` header, never a hung connection — and that the retrying
//! client rides out the shedding without losing requests.
//!
//! Run with `cargo test -p galign-serve --features failpoints`.
#![cfg(feature = "failpoints")]

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::client::{Client, ClientConfig};
use galign_serve::server::{ServeConfig, Server, ServerHandle};
use galign_serve::topk::TopkIndex;
use galign_telemetry::failpoint;
use std::time::Duration;

fn test_server(cfg: ServeConfig) -> ServerHandle {
    let m = Mat::new(4, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7, 0.5, 0.5]).unwrap();
    let index = TopkIndex::from_artifact(
        Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap(),
    );
    Server::bind("127.0.0.1:0", index, cfg).unwrap().spawn()
}

/// A client that makes exactly one attempt, so shed 503s are observed
/// rather than absorbed.
fn one_shot_client(addr: &str) -> Client {
    Client::with_config(
        addr,
        ClientConfig {
            max_retries: 0,
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn saturated_queue_sheds_503_with_retry_after() {
    // Global cfg, not cfg_local: the stalled code runs on server worker
    // threads, which never see this thread's local registry.
    let _scenario = failpoint::Scenario::setup();
    failpoint::cfg("serve.topk.stall", "delay(300)").unwrap();

    let handle = test_server(ServeConfig {
        workers: 1,
        queue_depth: 1,
        retry_after_secs: 7,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    // A burst wider than worker + queue: with one worker stalled 300ms and
    // one queue slot, the rest of the burst must be shed.
    let threads: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = one_shot_client(&addr);
                client.post_json("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
            })
        })
        .collect();

    let mut ok = 0;
    let mut shed = 0;
    for t in threads {
        let resp = t
            .join()
            .unwrap()
            .expect("even shed requests get a response");
        match resp.status {
            200 => ok += 1,
            503 => {
                shed += 1;
                assert_eq!(
                    resp.retry_after_secs(),
                    Some(7.0),
                    "shed 503 must carry the configured Retry-After: {}",
                    resp.body_str()
                );
            }
            other => panic!("unexpected status {other}: {}", resp.body_str()),
        }
    }
    assert!(ok >= 1, "the worker should still serve some of the burst");
    assert!(
        shed >= 1,
        "a 6-wide burst against worker=1/queue=1 must shed"
    );

    // The load shows up on /healthz too.
    failpoint::remove("serve.topk.stall");
    let health = one_shot_client(&addr).get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let body = health.body_str();
    assert!(
        !body.contains("\"shed_total\":0,"),
        "healthz should report the shed connections: {body}"
    );
    handle.shutdown().unwrap();
}

#[test]
fn retrying_client_recovers_every_request_through_shedding() {
    let _scenario = failpoint::Scenario::setup();
    failpoint::cfg("serve.topk.stall", "delay(50)").unwrap();

    let handle = test_server(ServeConfig {
        workers: 1,
        queue_depth: 1,
        // 0 makes the client fall back to its own (fast) backoff, keeping
        // the test quick while still exercising the retry loop.
        retry_after_secs: 0,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = Client::with_config(
                    &addr,
                    ClientConfig {
                        max_retries: 20,
                        base_backoff: Duration::from_millis(10),
                        max_backoff: Duration::from_millis(100),
                        jitter_seed: 0x5eed + i as u64,
                        ..ClientConfig::default()
                    },
                )
                .unwrap();
                let mut shed = 0;
                for _ in 0..2 {
                    let (resp, stats) = client
                        .post_json_with_stats("/v1/align/topk", r#"{"nodes":[1],"k":1}"#)
                        .expect("request should succeed within the retry budget");
                    assert_eq!(resp.status, 200, "{}", resp.body_str());
                    shed += stats.shed;
                }
                shed
            })
        })
        .collect();

    let total_shed: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    // Not asserting total_shed > 0: with luck the burst interleaves
    // cleanly. The guarantee under test is zero lost requests *whatever*
    // the shedding did, and the first test already proves shedding occurs.
    let _ = total_shed;
    handle.shutdown().unwrap();
}

#[test]
fn stalled_handler_hits_the_deadline_and_returns_503() {
    let _scenario = failpoint::Scenario::setup();
    failpoint::cfg("serve.topk.stall", "delay(250)").unwrap();

    let handle = test_server(ServeConfig {
        deadline: Duration::from_millis(50),
        retry_after_secs: 3,
        ..ServeConfig::default()
    });
    let client = one_shot_client(&handle.addr().to_string());
    let resp = client
        .post_json("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
        .unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert!(resp.body_str().contains("deadline"), "{}", resp.body_str());
    assert_eq!(
        resp.retry_after_secs(),
        Some(3.0),
        "deadline 503s carry Retry-After like shed ones"
    );
    handle.shutdown().unwrap();
}

#[test]
fn worker_panic_returns_500_per_job_and_does_not_kill_the_worker() {
    let _scenario = failpoint::Scenario::setup();
    failpoint::cfg("serve.topk.stall", "1*panic(simulated flush crash)").unwrap();

    let handle = test_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    // The panicking flush must still complete its jobs — a labelled 500,
    // not a connection parked in Dispatched forever (those are exempt
    // from event-loop timeouts, so a lost completion would hang the
    // client AND graceful shutdown).
    let resp = one_shot_client(&addr)
        .post_json("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
        .unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body_str());

    // The lone worker survived the panic: the same query now computes.
    let resp = one_shot_client(&addr)
        .post_json("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // Shutdown drains cleanly — nothing leaked in reqs/in_flight.
    handle.shutdown().unwrap();
}

#[test]
fn requests_coalesced_behind_a_stalled_flush_keep_their_deadline() {
    let _scenario = failpoint::Scenario::setup();
    failpoint::cfg("serve.topk.stall", "delay(200)").unwrap();

    let handle = test_server(ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(60),
        retry_after_secs: 4,
        batch_window: Duration::from_micros(200),
        batch_cap: 64,
        queue_depth: 64,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    // A concurrent burst against one worker: the first flush stalls
    // 200ms, so jobs coalescing behind it cross the 60ms deadline while
    // *queued*, not computing. Flush-time deadline enforcement must turn
    // every one into a labelled 503 — never a hung connection or a
    // silently late answer — because the coalescing window composes with
    // the deadline instead of resetting it.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                one_shot_client(&addr)
                    .post_json("/v1/align/topk", r#"{"nodes":[1],"k":1}"#)
                    .unwrap()
            })
        })
        .collect();
    for t in threads {
        let resp = t.join().unwrap();
        assert_eq!(resp.status, 503, "{}", resp.body_str());
        assert!(resp.body_str().contains("deadline"), "{}", resp.body_str());
        assert_eq!(resp.retry_after_secs(), Some(4.0));
    }

    // Once the stall clears, the very same query answers normally.
    failpoint::remove("serve.topk.stall");
    let resp = one_shot_client(&addr)
        .post_json("/v1/align/topk", r#"{"nodes":[1],"k":1}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    handle.shutdown().unwrap();
}
