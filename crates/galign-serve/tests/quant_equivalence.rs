//! Quantized serving equivalence guarantees.
//!
//! Quantization changes *where the first pass reads*, never *what the
//! response says*: a quantized exact scan shortlists candidates on the
//! int8/f16 panel with a certified error margin and re-ranks the
//! shortlist through the very same `select_topk` kernel (candidates fed
//! in ascending target-id order, so tie-breaks are preserved), and ANN
//! traversal over quantized rows re-ranks its hits exactly. Three
//! properties pin the contract, mirroring `ann_equivalence.rs`:
//!
//! * encode/decode round trip: every dequantized component sits within
//!   `scale/2` of its source (the int8 nearest-rounding bound; f16 is far
//!   tighter), over random rows *including heavily tied ones*;
//! * exact-engine bit identity: against one served artifact, a quantized
//!   query returns byte-for-byte the hits of a `quant: off` query, across
//!   sidecar and quant-primary artifacts, both encodings, random tied
//!   embeddings, and `k > n`; ANN/auto hits score bit-identically to the
//!   canonical exact ranking even when traversal visits other candidates;
//! * a recall floor — recall@10 ≥ 0.95 under quantized ANN traversal on
//!   the same seeded clustered fixture `ann_equivalence.rs` pins
//!   (n = 2000, 2 layers × 32 dims), for both backends and encodings.

use galign_quant::QuantizedPanel;
use galign_serve::artifact::{Artifact, Mat};
use galign_serve::topk::{Backend, EngineMode, QuantMode, TopkIndex};
use proptest::prelude::*;
use std::collections::HashMap;

/// xorshift64* — deterministic fixtures without external RNG deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    /// A value from a coarse 5-point grid. Rows built from these collide
    /// constantly, producing the score ties that stress the ascending-id
    /// tie-break through the quantized shortlist.
    fn tied_unit(&mut self) -> f64 {
        [-1.0, -0.5, 0.0, 0.5, 1.0][(self.next_u64() % 5) as usize]
    }
}

/// Random layer matrices; `tied` draws every component from a 5-point
/// grid so many targets score exactly equal.
fn random_layers(rng: &mut Rng, n: usize, dims: &[usize], tied: bool) -> Vec<Mat> {
    dims.iter()
        .map(|&d| {
            let data: Vec<f64> = (0..n * d)
                .map(|_| {
                    if tied {
                        rng.tied_unit()
                    } else {
                        rng.signed_unit()
                    }
                })
                .collect();
            Mat::new(n, d, data).expect("shape by construction")
        })
        .collect()
}

/// Clustered layer matrices, same construction as `ann_equivalence.rs`:
/// shared cluster assignment across layers, bounded noise per node.
fn clustered_layers(
    rng: &mut Rng,
    n: usize,
    dims: &[usize],
    clusters: usize,
    noise: f64,
) -> Vec<Mat> {
    let centers: Vec<Vec<Vec<f64>>> = dims
        .iter()
        .map(|&d| {
            (0..clusters)
                .map(|_| (0..d).map(|_| rng.signed_unit()).collect())
                .collect()
        })
        .collect();
    dims.iter()
        .enumerate()
        .map(|(l, &d)| {
            let mut data = Vec::with_capacity(n * d);
            for node in 0..n {
                let c = &centers[l][node % clusters];
                data.extend(c.iter().map(|&v| v + noise * rng.signed_unit()));
            }
            Mat::new(n, d, data).expect("shape by construction")
        })
        .collect()
}

fn quant_of(tag: u32) -> QuantMode {
    if tag == 0 {
        QuantMode::Int8
    } else {
        QuantMode::F16
    }
}

fn mode_of(tag: u32) -> EngineMode {
    match tag {
        0 => EngineMode::Exact,
        1 => EngineMode::Ann,
        _ => EngineMode::Auto,
    }
}

proptest! {
    /// Encode → decode keeps every component within `scale/2` of its
    /// source. `scale/2` is exact for int8 nearest rounding in real
    /// arithmetic; a few ulps of fp slop are allowed. Tied rows (many
    /// repeated components, rows of all zeros possible) ride along.
    #[test]
    fn prop_round_trip_error_bounded_by_half_scale(
        seed in 0u64..48,
        n in 1usize..40,
        dim in 1usize..24,
        quant_tag in 0u32..2,
        tied_tag in 0u32..2,
    ) {
        let tied = tied_tag == 1;
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9) + 1);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| if tied { rng.tied_unit() } else { rng.signed_unit() })
                    .collect()
            })
            .collect();
        let mode = quant_of(quant_tag).panel_mode().expect("int8/f16 map to a panel encoding");
        let panel = QuantizedPanel::encode(mode, dim, &rows).expect("finite rows encode");
        let mut buf = vec![0.0; dim];
        for (i, row) in rows.iter().enumerate() {
            panel.dequantize_row(i, &mut buf);
            let bound = panel.scale(i) * 0.5 * (1.0 + 1e-9) + 1e-300;
            for (x, y) in row.iter().zip(&buf) {
                prop_assert!(
                    (x - y).abs() <= bound,
                    "{} row {i}: |{x} - {y}| > scale/2 = {bound}",
                    mode.name()
                );
            }
        }
    }

    /// One served artifact, two requests differing only in `quant`: the
    /// responses must be byte-identical. Exact engine: full hit-list
    /// equality (targets and score bits), including `k > n` clamping and
    /// grid-tied embeddings. ANN/auto: quantized traversal may shortlist
    /// *different* candidates, so the assertion is the re-rank contract —
    /// every returned score is bit-identical to the canonical exact score
    /// of its `(node, target)` pair, and ordering obeys `select_topk`
    /// (descending score, ties by ascending target id).
    #[test]
    fn prop_quantized_results_bit_identical_to_f64(
        seed in 0u64..24,
        n in 8usize..56,
        k in 1usize..96, // frequently exceeds n: k is clamped to the target count
        quant_tag in 0u32..2,
        mode_tag in 0u32..3,
        keep_tag in 0u32..2,
        tied_tag in 0u32..2,
    ) {
        let (keep_f64, tied) = (keep_tag == 1, tied_tag == 1);
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9) + 1);
        let dims = [5usize, 3];
        let target = random_layers(&mut rng, n, &dims, tied);
        let source = random_layers(&mut rng, n, &dims, tied);
        let theta: Vec<f64> = (0..dims.len())
            .map(|_| 0.1 + 0.9 * (rng.signed_unit().abs()))
            .collect();
        let quant = quant_of(quant_tag);
        let engine = mode_of(mode_tag);
        let artifact = Artifact::new(vec![1.0, 1.0], source, target, false)
            .expect("valid artifact")
            .with_quant(quant.panel_mode().expect("panel encoding"), keep_f64)
            .expect("quantization succeeds on finite layers");
        let mut index = TopkIndex::from_artifact(artifact);
        index.build_ann(Backend::Hnsw).expect("build succeeds");
        // Drop the auto threshold so `auto` really routes through ANN.
        index.set_auto_threshold(0);
        prop_assert_eq!(index.quant_available(), Some(quant));

        for node in [0, n / 2, n - 1] {
            let exact_all = index.topk(node, n, Some(&theta)).expect("exact query");
            let canonical: HashMap<usize, u64> =
                exact_all.iter().map(|h| (h.target, h.score.to_bits())).collect();
            let (plain, _) = index
                .topk_with_opts(node, k, Some(&theta), engine, QuantMode::Off)
                .expect("f64 query");
            let (quantized, _) = index
                .topk_with_opts(node, k, Some(&theta), engine, quant)
                .expect("quantized query");
            prop_assert!(quantized.len() <= k.min(n));
            if engine == EngineMode::Exact {
                // The certified shortlist makes the quantized exact scan
                // *byte-identical*, not merely score-identical.
                prop_assert_eq!(plain.len(), quantized.len());
                for (p, q) in plain.iter().zip(&quantized) {
                    prop_assert_eq!(p.target, q.target);
                    prop_assert_eq!(p.score.to_bits(), q.score.to_bits());
                }
            }
            for h in &quantized {
                prop_assert_eq!(h.score.to_bits(), canonical[&h.target]);
            }
            for w in quantized.windows(2) {
                prop_assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].target < w[1].target),
                    "order violated: {:?} before {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn recall_at_10_meets_floor_under_quantized_traversal() {
    const N: usize = 2000;
    const K: usize = 10;
    const QUERIES: usize = 100;
    const CLUSTERS: usize = 40;
    const NOISE: f64 = 0.25;
    const DIMS: [usize; 2] = [32, 32]; // 64 concatenated dims

    let mut rng = Rng::new(0xa11e_2000);
    let target = clustered_layers(&mut rng, N, &DIMS, CLUSTERS, NOISE);
    let source: Vec<Mat> = target
        .iter()
        .map(|m| {
            let (rows, cols) = (m.rows(), m.cols());
            let data: Vec<f64> = (0..rows)
                .flat_map(|r| {
                    m.row(r)
                        .iter()
                        .map(|&v| v + 0.05 * rng.signed_unit())
                        .collect::<Vec<_>>()
                })
                .collect();
            Mat::new(rows, cols, data).expect("shape preserved")
        })
        .collect();

    for backend in [Backend::Hnsw, Backend::Ivf] {
        for quant in [QuantMode::Int8, QuantMode::F16] {
            // Sidecar mode: keep the f64 rows so "exact" truth is scored
            // on the same values the ANN engine re-ranks against.
            let artifact = Artifact::new(vec![1.0, 1.0], source.clone(), target.clone(), false)
                .expect("valid artifact")
                .with_quant(quant.panel_mode().expect("panel encoding"), true)
                .expect("quantization succeeds");
            let mut index = TopkIndex::from_artifact(artifact);
            index.build_ann(backend).expect("build succeeds");

            let mut found = 0usize;
            let mut total = 0usize;
            for q in 0..QUERIES {
                let node = q * (N / QUERIES);
                let exact = index.topk(node, K, None).expect("exact query");
                let (ann, _) = index
                    .topk_with_opts(node, K, None, EngineMode::Ann, quant)
                    .expect("quantized ann query");
                let truth: Vec<usize> = exact.iter().map(|h| h.target).collect();
                found += ann.iter().filter(|h| truth.contains(&h.target)).count();
                total += exact.len();
            }
            let recall = found as f64 / total as f64;
            assert!(
                recall >= 0.95,
                "{backend}/{quant}: recall@{K} = {recall:.4} below the 0.95 floor"
            );
        }
    }
}
