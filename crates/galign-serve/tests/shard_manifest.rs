//! Shard-manifest round trips across the full on-disk version matrix.
//!
//! Writers emit the lowest format version that represents the artifact
//! (1 plain, 2 with an ANN index blob, 3 with a shard manifest, 4 with
//! a quantized panel section), and the v4 reader must keep loading all
//! of them. The manifest itself must survive write → read bit-exactly,
//! a full shard set must reassemble to the parent's exact bytes, and a
//! `parent_checksum` mismatch must be rejected — never stitched into a
//! silently wrong artifact. A quantized parent's panel section travels
//! through `split()`/`assemble_shards()` sliced per shard, and a
//! tampered quant payload in a written shard never loads.

use galign_quant::QuantMode;
use galign_serve::artifact::{Artifact, Mat, ShardManifest};
use std::path::PathBuf;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn fixture(seed: u64, targets: usize) -> Artifact {
    // `2n + 1` keeps the state nonzero without collapsing adjacent seeds.
    let mut rng = Rng(seed.wrapping_mul(2) + 1);
    let mk = |n: usize, d: usize, rng: &mut Rng| {
        Mat::new(n, d, (0..n * d).map(|_| rng.signed_unit()).collect()).unwrap()
    };
    let source = vec![mk(4, 3, &mut rng), mk(4, 2, &mut rng)];
    let target = vec![mk(targets, 3, &mut rng), mk(targets, 2, &mut rng)];
    Artifact::new(vec![0.7, 0.3], source, target, false).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("galign-shard-manifest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn wire_version(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[8..12].try_into().unwrap())
}

#[test]
fn writers_emit_the_lowest_representable_version() {
    let plain = fixture(1, 10);
    assert_eq!(wire_version(&plain.to_bytes()), 1, "plain artifact is v1");

    let with_index = fixture(1, 10).with_index(vec![1, 2, 3, 4]);
    assert_eq!(wire_version(&with_index.to_bytes()), 2, "index forces v2");

    let shard = fixture(1, 10).split(2, None).unwrap().remove(0);
    assert_eq!(wire_version(&shard.to_bytes()), 3, "manifest forces v3");

    let quantized = fixture(1, 10).with_quant(QuantMode::Int8, true).unwrap();
    assert_eq!(
        wire_version(&quantized.to_bytes()),
        4,
        "quant section forces v4"
    );
}

#[test]
fn every_version_round_trips_through_the_v4_reader() {
    for (name, artifact) in [
        ("v1", fixture(5, 9)),
        ("v2", fixture(5, 9).with_index(vec![9, 8, 7])),
        ("v3", fixture(5, 9).split(3, None).unwrap().remove(1)),
        (
            "v4-sidecar",
            fixture(5, 9).with_quant(QuantMode::Int8, true).unwrap(),
        ),
        (
            "v4-primary",
            fixture(5, 9).with_quant(QuantMode::F16, false).unwrap(),
        ),
    ] {
        let path = tmp(&format!("roundtrip-{name}.galign"));
        artifact.write(&path).unwrap();
        let back = Artifact::read(&path).unwrap();
        assert_eq!(artifact, back, "{name} round trip");
    }
}

#[test]
fn quantized_shards_round_trip_and_reject_tampering() {
    for (label, keep_f64) in [("sidecar", true), ("primary", false)] {
        let parent = fixture(12, 10)
            .with_quant(QuantMode::Int8, keep_f64)
            .unwrap();
        let shards = parent.split(3, None).unwrap();
        for (i, shard) in shards.iter().enumerate() {
            // Each shard carries its own slice of the panel: one row per
            // shard target, full source side.
            let q = shard.quant.as_ref().expect("shard keeps the quant section");
            let m = shard.manifest.as_ref().unwrap();
            assert_eq!(q.target.len() as u64, m.end - m.start, "{label} shard {i}");
            assert_eq!(q.source.len(), parent.source_nodes());
            let path = tmp(&format!("quant-shard-{label}-{i}.galign"));
            shard.write(&path).unwrap();
            assert_eq!(&Artifact::read(&path).unwrap(), shard, "{label} shard {i}");
        }
        let back = Artifact::assemble_shards(&shards).unwrap();
        assert_eq!(back.to_bytes(), parent.to_bytes(), "{label} reassembly");

        // Flip one byte inside the quant payload of a written shard: the
        // section checksum must reject the file, not serve drifted panels.
        let shard_bytes = shards[1].to_bytes();
        let needle = shards[1].quant.as_ref().unwrap().to_bytes();
        let pos = shard_bytes
            .windows(needle.len())
            .position(|w| w == needle.as_slice())
            .expect("quant payload appears verbatim in the wire bytes");
        let mut tampered = shard_bytes.clone();
        tampered[pos + needle.len() / 2] ^= 0x40;
        let err = Artifact::from_bytes(&tampered).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{label}");
    }
}

#[test]
fn manifest_fields_survive_write_read_exactly() {
    let parent = fixture(6, 11);
    let replicas = vec![
        vec!["10.0.0.1:9000".to_string(), "10.0.0.2:9000".to_string()],
        vec!["10.0.0.3:9000".to_string()],
    ];
    let shards = parent.split(2, Some(&replicas)).unwrap();
    for (i, shard) in shards.iter().enumerate() {
        let path = tmp(&format!("manifest-{i}.galign"));
        shard.write(&path).unwrap();
        let m = Artifact::read(&path).unwrap().manifest.unwrap();
        let orig = shard.manifest.as_ref().unwrap();
        assert_eq!(&m, orig);
        assert_eq!(m.shard_id as usize, i);
        assert_eq!(m.num_shards, 2);
        assert_eq!(m.parent_targets, 11);
        assert_eq!(m.parent_checksum, parent.target_checksum());
        assert_eq!(m.replicas, replicas[i]);
    }
    // Uneven split of 11: [0, 6) then [6, 11).
    let m0 = shards[0].manifest.as_ref().unwrap();
    let m1 = shards[1].manifest.as_ref().unwrap();
    assert_eq!((m0.start, m0.end), (0, 6));
    assert_eq!((m1.start, m1.end), (6, 11));
}

#[test]
fn full_shard_set_reassembles_to_the_parent_bytes() {
    let parent = fixture(7, 13);
    let mut shards = parent.split(4, None).unwrap();
    // Any order is accepted.
    shards.reverse();
    let back = Artifact::assemble_shards(&shards).unwrap();
    assert_eq!(back.to_bytes(), parent.to_bytes());
}

#[test]
fn parent_checksum_mismatch_is_rejected() {
    let parent = fixture(8, 8);
    let mut shards = parent.split(2, None).unwrap();
    // Forge shard 1: same geometry, different parent data — only the
    // checksum can catch it.
    let other = fixture(9, 8);
    let mut forged = other.split(2, None).unwrap().remove(1);
    let m = forged.manifest.as_mut().unwrap();
    assert_ne!(
        m.parent_checksum,
        parent.target_checksum(),
        "fixtures must differ"
    );
    shards[1] = forged;
    let err = Artifact::assemble_shards(&shards).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Even with a *matching* recorded checksum, stitched bytes that do
    // not hash back to it are rejected: tamper with the recorded value
    // on both shards so they agree with each other but not the data.
    let mut lying = parent.split(2, None).unwrap();
    for shard in &mut lying {
        shard.manifest.as_mut().unwrap().parent_checksum ^= 0xdead_beef;
    }
    // with_manifest re-validation is bypassed by direct field access, so
    // rebuild through the public API to keep the artifacts well-formed.
    let err = Artifact::assemble_shards(&lying).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn incomplete_or_overlapping_sets_are_rejected() {
    let parent = fixture(10, 12);
    let shards = parent.split(3, None).unwrap();
    // Missing a shard.
    let err = Artifact::assemble_shards(&shards[..2]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // Duplicate shard standing in for a missing one.
    let dup = vec![shards[0].clone(), shards[1].clone(), shards[1].clone()];
    let err = Artifact::assemble_shards(&dup).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // A plain artifact in the set.
    let mixed = vec![shards[0].clone(), shards[1].clone(), fixture(10, 4)];
    let err = Artifact::assemble_shards(&mixed).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn manifest_validation_rejects_inconsistent_geometry() {
    // start past end
    assert!(ShardManifest {
        shard_id: 0,
        num_shards: 1,
        start: 6,
        end: 5,
        parent_targets: 10,
        parent_checksum: 0,
        replicas: Vec::new(),
    }
    .validate(0)
    .is_err());
    // shard_id out of range
    assert!(ShardManifest {
        shard_id: 3,
        num_shards: 2,
        start: 0,
        end: 5,
        parent_targets: 10,
        parent_checksum: 0,
        replicas: Vec::new(),
    }
    .validate(5)
    .is_err());
    // row count disagrees with the range
    assert!(ShardManifest {
        shard_id: 0,
        num_shards: 2,
        start: 0,
        end: 5,
        parent_targets: 10,
        parent_checksum: 0,
        replicas: Vec::new(),
    }
    .validate(4)
    .is_err());
}
