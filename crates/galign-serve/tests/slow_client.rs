//! Event-loop robustness against badly behaved clients. The old
//! thread-per-connection server paid a thread for every dawdling socket;
//! the epoll loop must pay a map entry — and keep its promises while
//! doing so:
//!
//! * a request dribbled in byte by byte is parsed and answered normally;
//! * a client that half-closes (`shutdown(SHUT_WR)`) right after its
//!   request still receives the full response;
//! * a connection stalled mid-request does not delay other clients, even
//!   with a single compute worker;
//! * a stalled *first* request is eventually answered with `408` rather
//!   than silently dropped;
//! * two pipelined requests on one connection produce two in-order
//!   responses.

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::server::{ServeConfig, Server, ServerHandle};
use galign_serve::topk::TopkIndex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn start(cfg: ServeConfig) -> ServerHandle {
    let m = Mat::new(4, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7, 0.5, 0.5]).unwrap();
    let index = TopkIndex::from_artifact(
        Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap(),
    );
    Server::bind("127.0.0.1:0", index, cfg).unwrap().spawn()
}

const QUERY: &str = r#"{"nodes":[0],"k":2}"#;

fn request_bytes(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/align/topk HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Same request, but opting in to connection reuse (keep-alive is opt-in
/// on this server).
fn keep_alive_request_bytes(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/align/topk HTTP/1.1\r\nhost: test\r\nconnection: keep-alive\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads exactly one HTTP/1.1 response (status line, headers,
/// content-length-delimited body) without waiting for EOF, so it works on
/// keep-alive connections.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// The reference response body, obtained over a normal fast connection.
fn reference_body(addr: SocketAddr) -> String {
    let mut stream = connect(addr);
    stream.write_all(&request_bytes(QUERY)).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    body
}

#[test]
fn dribbled_request_is_answered_like_a_fast_one() {
    let handle = start(ServeConfig::default());
    let addr = handle.addr();
    let expected = reference_body(addr);

    let mut stream = connect(addr);
    for chunk in request_bytes(QUERY).chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected, "dribbled request drifted from reference");
    handle.shutdown().unwrap();
}

#[test]
fn half_open_client_still_gets_its_response() {
    let handle = start(ServeConfig::default());
    let addr = handle.addr();
    let expected = reference_body(addr);

    let mut stream = connect(addr);
    stream.write_all(&request_bytes(QUERY)).unwrap();
    // Close our write half: the server sees EOF after the request, but
    // the read half stays open and must carry the answer.
    stream.shutdown(Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected);
    handle.shutdown().unwrap();
}

#[test]
fn stalled_connection_does_not_block_fast_clients() {
    // One compute worker: under the old thread-per-connection design a
    // stalled socket could pin the pool; the event loop must not care.
    let handle = start(ServeConfig {
        workers: 1,
        request_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Stall three connections mid-request and keep them open.
    let stalled: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut s = connect(addr);
            s.write_all(b"POST /v1/align/topk HTTP/1.1\r\ncontent-le")
                .unwrap();
            s
        })
        .collect();

    let t0 = Instant::now();
    let body = reference_body(addr);
    assert!(!body.is_empty());
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "fast client waited {:?} behind stalled connections",
        t0.elapsed()
    );
    drop(stalled);
    handle.shutdown().unwrap();
}

#[test]
fn stalled_first_request_times_out_with_408() {
    let handle = start(ServeConfig {
        request_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut stream = connect(addr);
    stream
        .write_all(b"POST /v1/align/topk HTTP/1.1\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 408, "{body}");
    assert!(body.contains("timed out"), "{body}");
    handle.shutdown().unwrap();
}

#[test]
fn slow_loris_trickle_cannot_extend_the_request_deadline() {
    let handle = start(ServeConfig {
        request_timeout: Duration::from_millis(250),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let stream = connect(addr);
    let mut writer = stream.try_clone().unwrap();
    let t0 = Instant::now();
    // A header that never finishes, one byte every 15ms: steady progress
    // that would defeat a per-read deadline reset. The window is anchored
    // at accept, so the 408 must arrive around request_timeout no matter
    // how long the trickle could keep going.
    let trickler = std::thread::spawn(move || {
        let head = b"POST /v1/align/topk HTTP/1.1\r\nx-pad: ";
        for &b in head.iter().chain(std::iter::repeat(&b'a')).take(400) {
            if writer.write_all(&[b]).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    });
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 408, "{body}");
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "408 took {:?}: reads are extending the deadline again",
        t0.elapsed()
    );
    trickler.join().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn blank_line_flood_is_rejected_not_buffered_forever() {
    let handle = start(ServeConfig::default());
    let addr = handle.addr();

    let mut stream = connect(addr);
    // Pure CRLFs never form a request head; past the head limit the
    // server must answer 400 instead of holding a growing Partial buffer.
    let flood = b"\r\n".repeat(20 * 1024);
    let _ = stream.write_all(&flood); // server may close mid-flood
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("head too large"), "{body}");
    handle.shutdown().unwrap();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = start(ServeConfig::default());
    let addr = handle.addr();
    let expected = reference_body(addr);

    let mut stream = connect(addr);
    let mut two = keep_alive_request_bytes(QUERY);
    two.extend_from_slice(&keep_alive_request_bytes(QUERY));
    stream.write_all(&two).unwrap();
    let mut reader = BufReader::new(stream);
    for _ in 0..2 {
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected);
    }
    handle.shutdown().unwrap();
}
