//! Property-style check of the heap-based top-k kernel: on random
//! embeddings, the bounded-heap selection must equal a full argsort for
//! every k in {1, 5, n}, for random θ weightings, and batches must agree
//! with single queries. Uses the crate's own deterministic xorshift so
//! the test stays dependency-free.

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::testutil::Xorshift;
use galign_serve::topk::{select_topk, select_topk_bruteforce, TopkIndex};

fn random_mat(rng: &mut Xorshift, rows: usize, cols: usize) -> Mat {
    Mat::new(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.f64_signed()).collect(),
    )
    .unwrap()
}

fn random_index(rng: &mut Xorshift) -> TopkIndex {
    let layers = 1 + rng.below(3);
    let n_s = 2 + rng.below(30);
    let n_t = 2 + rng.below(40);
    let theta: Vec<f64> = (0..layers).map(|_| rng.f64()).collect();
    let mut source = Vec::new();
    let mut target = Vec::new();
    for _ in 0..layers {
        let d = 1 + rng.below(8);
        source.push(random_mat(rng, n_s, d));
        target.push(random_mat(rng, n_t, d));
    }
    TopkIndex::from_artifact(Artifact::new(theta, source, target, false).unwrap())
}

/// Reference scoring: direct Eq. 11–12 evaluation on normalized rows.
fn brute_force_row(index: &TopkIndex, node: usize, theta: &[f64]) -> Vec<f64> {
    // Rebuild normalization independently of the index internals is not
    // possible from the public API, so exploit linearity instead: score
    // via k = n selection, which is itself checked against select_topk's
    // brute-force twin below.
    let n = index.target_nodes();
    let mut scores = vec![0.0; n];
    for hit in index.topk(node, n, Some(theta)).unwrap() {
        scores[hit.target] = hit.score;
    }
    scores
}

#[test]
fn heap_topk_equals_bruteforce_argsort() {
    let mut rng = Xorshift::new(0xA11C);
    for case in 0..40 {
        let index = random_index(&mut rng);
        let n_t = index.target_nodes();
        let theta: Vec<f64> = (0..index.num_layers()).map(|_| rng.f64()).collect();
        let node = rng.below(index.source_nodes());
        let scores = brute_force_row(&index, node, &theta);
        for k in [1usize, 5, n_t] {
            let fast = index.topk(node, k, Some(&theta)).unwrap();
            let slow = select_topk_bruteforce(&scores, k);
            assert_eq!(
                fast.len(),
                k.min(n_t),
                "case {case}: k={k} returned wrong count"
            );
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.target, s.target, "case {case}: k={k} order mismatch");
                assert!(
                    (f.score - s.score).abs() < 1e-12,
                    "case {case}: score mismatch {} vs {}",
                    f.score,
                    s.score
                );
            }
        }
    }
}

#[test]
fn select_topk_matches_bruteforce_on_raw_score_vectors() {
    let mut rng = Xorshift::new(0x5E1E);
    for _ in 0..200 {
        let n = 1 + rng.below(64);
        // Draw from a small value set so ties are common.
        let scores: Vec<f64> = (0..n).map(|_| (rng.below(7) as f64) / 3.0).collect();
        for k in [1usize, 5, n, n + 3] {
            assert_eq!(select_topk(&scores, k), select_topk_bruteforce(&scores, k));
        }
    }
}

#[test]
fn batch_equals_singles_under_default_theta() {
    let mut rng = Xorshift::new(0xBA7C);
    for _ in 0..10 {
        let index = random_index(&mut rng);
        let nodes: Vec<usize> = (0..20).map(|_| rng.below(index.source_nodes())).collect();
        let k = 1 + rng.below(6);
        let batch = index.topk_batch(&nodes, k, None).unwrap();
        for (i, &node) in nodes.iter().enumerate() {
            assert_eq!(batch[i], index.topk(node, k, None).unwrap());
        }
    }
}

#[test]
fn default_theta_is_the_artifact_theta() {
    let mut rng = Xorshift::new(0x7E7A);
    let index = random_index(&mut rng);
    let theta = index.default_theta().to_vec();
    let node = 0;
    assert_eq!(
        index.topk(node, 3, None).unwrap(),
        index.topk(node, 3, Some(&theta)).unwrap()
    );
}
