//! End-to-end trace-id propagation over live HTTP.
//!
//! One request's trace id must be recoverable from all four
//! observability surfaces: the `x-galign-trace-id` response header, the
//! access log, the flight recorder (`GET /v1/debug/requests`) and the
//! span JSONL stream. The failpoint-gated test additionally proves the
//! retrying client re-sends the *same* id after a shed `503`, so both
//! attempts land in one server-side trace.
//!
//! The retry test runs with `cargo test -p galign-serve --features
//! failpoints`.

use galign_serve::artifact::{Artifact, Mat};
use galign_serve::client::{Client, ClientConfig};
use galign_serve::server::{ServeConfig, Server, ServerHandle, TRACE_HEADER};
use galign_serve::topk::TopkIndex;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the tests in this binary: they share the process-global
/// flight recorder, JSONL sink and failpoint table.
static SCENARIO: Mutex<()> = Mutex::new(());

fn demo_index() -> TopkIndex {
    let m = Mat::new(
        4,
        3,
        vec![
            1.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, //
            0.0, 0.0, 1.0, //
            0.5, 0.5, 0.0,
        ],
    )
    .unwrap();
    TopkIndex::from_artifact(Artifact::new(vec![1.0], vec![m.clone()], vec![m], false).unwrap())
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("galign-trace-{}-{name}", std::process::id()))
}

fn start_server(cfg: ServeConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", demo_index(), cfg)
        .expect("bind ephemeral port")
        .spawn()
}

/// Polls the debug endpoint until `pred` holds (the server writes its
/// flight-recorder entry *after* the response bytes, so an immediate
/// read can race the insert) and returns the body.
fn debug_dump_when(client: &Client, pred: impl Fn(&str) -> bool) -> String {
    let mut body = String::new();
    for _ in 0..100 {
        body = client.get("/v1/debug/requests").unwrap().body_str();
        if pred(&body) {
            return body;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    body
}

#[test]
fn trace_id_recoverable_from_all_four_surfaces() {
    let _lock = SCENARIO.lock().unwrap_or_else(|p| p.into_inner());
    let access_log = temp_path("access.jsonl");
    let span_log = temp_path("spans.jsonl");
    let flight_dump = temp_path("flight.jsonl");
    galign_telemetry::attach_jsonl_path(&span_log).expect("attach span sink");
    let handle = start_server(ServeConfig {
        access_log: Some(access_log.clone()),
        flight_dump: Some(flight_dump.clone()),
        ..ServeConfig::default()
    });
    let client = Client::new(&handle.addr().to_string()).unwrap();

    let (resp, _, trace_id) = client
        .post_json_traced("/v1/align/topk", r#"{"nodes":[0,2],"k":2}"#)
        .unwrap();
    let hex = trace_id.to_hex();
    // Surface 1: the response header echoes the client's id.
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(resp.header(TRACE_HEADER), Some(hex.as_str()));

    // Surface 2: the flight recorder, served over the debug endpoint.
    let debug = debug_dump_when(&client, |b| b.contains(&hex));
    assert!(
        debug.contains(&hex),
        "flight recorder dump lacks trace {hex}: {debug}"
    );

    handle.shutdown().unwrap();
    galign_telemetry::flush();
    let _ = galign_telemetry::detach_jsonl();

    // Surface 3: the access log holds one line with the id, the status
    // and the engine that answered.
    let log = std::fs::read_to_string(&access_log).expect("access log written");
    let line = log
        .lines()
        .find(|l| l.contains(&hex))
        .unwrap_or_else(|| panic!("no access-log line for trace {hex} in: {log}"));
    assert!(line.contains("\"status\":200"), "{line}");
    assert!(line.contains("\"path\":\"/v1/align/topk\""), "{line}");
    assert!(line.contains("\"engine\":"), "{line}");

    // Surface 4: the span JSONL stream carries `tspan` records for the
    // request's stages, all tagged with the same trace id.
    let spans = std::fs::read_to_string(&span_log).expect("span jsonl written");
    let tspans: Vec<&str> = spans
        .lines()
        .filter(|l| l.contains("\"type\":\"tspan\"") && l.contains(&hex))
        .collect();
    assert!(
        !tspans.is_empty(),
        "no tspan records for trace {hex} in: {spans}"
    );
    for stage in ["parse", "engine_select", "cache_lookup", "serialize"] {
        assert!(
            tspans
                .iter()
                .any(|l| l.contains(&format!("\"name\":\"{stage}\""))),
            "missing {stage} stage for trace {hex}: {tspans:?}"
        );
    }

    // Bonus surface: the shutdown flight dump holds the same record.
    let dump = std::fs::read_to_string(&flight_dump).expect("flight dump written");
    assert!(dump.contains(&hex), "flight dump lacks trace {hex}: {dump}");

    for p in [&access_log, &span_log, &flight_dump] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn server_assigns_id_when_client_sends_none() {
    let _lock = SCENARIO.lock().unwrap_or_else(|p| p.into_inner());
    let handle = start_server(ServeConfig::default());
    let client = Client::with_config(
        &handle.addr().to_string(),
        ClientConfig {
            trace_header: false,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let resp = client
        .post_json("/v1/align/topk", r#"{"nodes":[1],"k":1}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let echoed = resp.header(TRACE_HEADER).expect("server-assigned id");
    assert_eq!(echoed.len(), 32);
    assert!(galign_telemetry::TraceId::parse_hex(echoed).is_some());
    handle.shutdown().unwrap();
}

/// A request shed with `503` and then retried keeps its trace id: the
/// server sees both attempts under one trace, and the final `200` still
/// echoes the id of the original request.
#[cfg(feature = "failpoints")]
#[test]
fn retry_after_shed_preserves_trace_id() {
    let _lock = SCENARIO.lock().unwrap_or_else(|p| p.into_inner());
    let _fp = galign_telemetry::failpoint::Scenario::setup();
    let handle = start_server(ServeConfig {
        deadline: Duration::from_millis(60),
        ..ServeConfig::default()
    });
    // First evaluation stalls past the deadline (-> 503 + Retry-After);
    // the retry finds the failpoint consumed and succeeds.
    galign_telemetry::failpoint::cfg("serve.topk.stall", "1*delay(150)").unwrap();
    let client = Client::with_config(
        &handle.addr().to_string(),
        ClientConfig {
            max_retries: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let (resp, stats, trace_id) = client
        .post_json_traced("/v1/align/topk", r#"{"nodes":[0],"k":1}"#)
        .unwrap();
    galign_telemetry::failpoint::clear();
    let hex = trace_id.to_hex();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(stats.shed, 1, "exactly the stalled attempt was shed");
    assert!(stats.tries >= 2, "a retry must have happened");
    assert_eq!(resp.header(TRACE_HEADER), Some(hex.as_str()));

    // Both attempts (the 503 and the 200) were recorded under one id.
    let body = debug_dump_when(&client, |b| b.matches(&hex).count() >= 2);
    let occurrences = body.matches(&hex).count();
    assert!(
        occurrences >= 2,
        "expected both attempts under trace {hex}, found {occurrences} in: {body}"
    );
    assert!(body.contains("\"status\":503"), "{body}");
    assert!(body.contains("\"status\":200"), "{body}");
    handle.shutdown().unwrap();
}
