//! Strict Prometheus text-exposition checker for CI.
//!
//! Reads an exposition body from the file given as the first argument
//! (or stdin) and runs it through
//! [`galign_telemetry::prom::validate_exposition`]: `# HELP`/`# TYPE`
//! present and well-ordered, no duplicate series, histogram buckets
//! cumulative and monotone, `+Inf` consistent with `_count`. Exits
//! nonzero with a diagnostic on the first violation.
//!
//! ```text
//! curl -s 'http://host/metrics?format=prometheus' | \
//!     cargo run -p galign-telemetry --example promcheck
//! ```

use std::io::Read;

fn main() {
    let body = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("promcheck: cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("promcheck: cannot read stdin: {e}");
                    std::process::exit(2);
                });
            buf
        }
    };
    match galign_telemetry::prom::validate_exposition(&body) {
        Ok(stats) => println!(
            "promcheck: ok ({} families, {} samples)",
            stats.families, stats.samples
        ),
        Err(e) => {
            eprintln!("promcheck: INVALID exposition: {e}");
            std::process::exit(1);
        }
    }
}
