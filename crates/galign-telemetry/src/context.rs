//! Request-scoped tracing context: 128-bit trace ids, parent/child span
//! ids, a thread-local current context, and explicit propagation handles
//! for work that hops threads (rayon panel workers, server worker pools).
//!
//! A [`TraceContext`] ties everything one request does — across retries,
//! worker threads and engine stages — to a single [`TraceId`]. The server
//! assigns (or accepts) one id per request, installs the context on the
//! handling thread with [`TraceContext::enter`], and every stage records a
//! timed [`SpanEvent`] against it with [`stage`]. Code that fans out onto
//! other threads captures a [`PropagationHandle`] first and wraps the
//! worker closure in [`PropagationHandle::scope`], so events recorded on
//! the worker land in the same request timeline.
//!
//! ```
//! use galign_telemetry::context::{self, TraceContext, TraceId};
//!
//! let ctx = TraceContext::root(TraceId::generate());
//! let _guard = ctx.enter();
//! let st = context::stage("parse");
//! // ... do the work ...
//! st.finish();
//! context::annotate("rows_scored", 3);
//! let (events, notes) = ctx.take_events();
//! assert_eq!(events[0].name, "parse");
//! assert_eq!(notes, vec![("rows_scored".to_string(), 3)]);
//! ```
//!
//! Everything here is cheap when no context is installed: [`stage`] and
//! [`annotate`] check one thread-local `Option` and return.

use crate::trace::thread_id;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A 128-bit trace id, rendered as 32 lowercase hex digits. Zero is
/// reserved as "no trace" and never generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// Monotonic per-process source of span ids and trace-id entropy.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// splitmix64 — the finalizer alone is a solid bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceId {
    /// Generates a fresh id: a process-unique counter mixed with the
    /// monotonic clock and the calling thread's id, so concurrent
    /// processes (and restarts) do not collide in practice. Never zero.
    #[must_use]
    pub fn generate() -> TraceId {
        let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        crate::init_clock();
        let nanos = (crate::clock_elapsed_nanos() as u64).wrapping_add(seq);
        let hi = mix64(seq ^ 0xa5a5_5a5a_0f0f_f0f0) ^ mix64(thread_id());
        let lo = mix64(nanos) ^ mix64(seq.rotate_left(32));
        let id = ((hi as u128) << 64) | lo as u128;
        if id == 0 {
            TraceId(1)
        } else {
            TraceId(id)
        }
    }

    /// Renders the id as 32 lowercase hex digits.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a hex trace id (1–32 hex digits, case-insensitive).
    /// Returns `None` for empty, oversized, non-hex or all-zero input —
    /// callers treat an unusable inbound id as "assign a fresh one".
    #[must_use]
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A span id, unique within the process. Zero is reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    fn fresh() -> SpanId {
        SpanId(NEXT_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// One timed stage recorded against a trace: `name` ran for `dur_us`
/// starting `start_us` after the context was created, on thread `thread`.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Stage name (`parse`, `cache_lookup`, `ann_search`, ...).
    pub name: &'static str,
    /// This event's span id.
    pub span: SpanId,
    /// The enclosing span at record time, if any.
    pub parent: Option<SpanId>,
    /// Microseconds from context creation to stage start.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// Stable id of the recording thread.
    pub thread: u64,
    /// Free-form `(key, value)` annotations.
    pub fields: Vec<(&'static str, String)>,
}

impl SpanEvent {
    /// Renders the event as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut fields = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                fields.push(',');
            }
            fields.push_str(&format!(
                "\"{}\":\"{}\"",
                crate::sink::escape_json(k),
                crate::sink::escape_json(v)
            ));
        }
        fields.push('}');
        format!(
            "{{\"name\":\"{}\",\"span\":{},\"parent\":{},\"start_us\":{},\"us\":{},\"thread\":{},\"fields\":{fields}}}",
            crate::sink::escape_json(self.name),
            self.span.0,
            self.parent.map_or("null".to_string(), |p| p.0.to_string()),
            self.start_us,
            self.dur_us,
            self.thread,
        )
    }
}

#[derive(Debug, Default)]
struct CollectorInner {
    events: Vec<SpanEvent>,
    notes: BTreeMap<&'static str, u64>,
}

/// Bound on buffered events per trace: a runaway instrumentation loop
/// must not balloon request memory. Overflow is counted, not stored.
const MAX_EVENTS_PER_TRACE: usize = 256;

/// Shared event buffer of one trace; threads append through their
/// installed [`TraceContext`].
#[derive(Debug)]
pub struct SpanCollector {
    origin: Instant,
    inner: Mutex<CollectorInner>,
    overflow: AtomicU64,
}

impl SpanCollector {
    fn new() -> Arc<SpanCollector> {
        Arc::new(SpanCollector {
            origin: Instant::now(),
            inner: Mutex::new(CollectorInner::default()),
            overflow: AtomicU64::new(0),
        })
    }

    fn push(&self, event: SpanEvent) {
        let mut inner = self.inner.lock().expect("collector lock");
        if inner.events.len() >= MAX_EVENTS_PER_TRACE {
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.events.push(event);
    }

    fn annotate(&self, key: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("collector lock");
        *inner.notes.entry(key).or_insert(0) += delta;
    }

    /// Events dropped because the per-trace buffer was full.
    fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }
}

/// The identity and event buffer of one trace, as seen by one scope:
/// which trace, which span is current, and where events go. Cloning is
/// cheap (an `Arc` bump) and shares the buffer.
#[derive(Debug, Clone)]
pub struct TraceContext {
    trace_id: TraceId,
    span_id: SpanId,
    parent: Option<SpanId>,
    collector: Arc<SpanCollector>,
}

thread_local! {
    static CURRENT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

impl TraceContext {
    /// Starts a new trace under `trace_id` with a fresh root span and a
    /// fresh event buffer.
    #[must_use]
    pub fn root(trace_id: TraceId) -> TraceContext {
        TraceContext {
            trace_id,
            span_id: SpanId::fresh(),
            parent: None,
            collector: SpanCollector::new(),
        }
    }

    /// A child context: same trace and buffer, fresh span id, parented to
    /// this context's span.
    #[must_use]
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: SpanId::fresh(),
            parent: Some(self.span_id),
            collector: Arc::clone(&self.collector),
        }
    }

    /// The trace id.
    #[must_use]
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// The current span id.
    #[must_use]
    pub fn span_id(&self) -> SpanId {
        self.span_id
    }

    /// The span this context was parented under, if it is a child.
    #[must_use]
    pub fn parent_span(&self) -> Option<SpanId> {
        self.parent
    }

    /// Installs this context as the thread's current one until the guard
    /// drops (contexts nest: the previous one is restored).
    #[must_use]
    pub fn enter(&self) -> ContextGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        ContextGuard { _private: () }
    }

    /// Microseconds elapsed since this trace's context was created.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.collector.origin.elapsed().as_micros() as u64
    }

    /// Drains the recorded events and annotations (oldest first). The
    /// request owner calls this exactly once, at completion.
    #[must_use]
    pub fn take_events(&self) -> (Vec<SpanEvent>, Vec<(String, u64)>) {
        let mut inner = self.collector.inner.lock().expect("collector lock");
        let events = std::mem::take(&mut inner.events);
        let mut notes: Vec<(String, u64)> = std::mem::take(&mut inner.notes)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let dropped = self.collector.overflow();
        if dropped > 0 {
            notes.push(("events_dropped".to_string(), dropped));
        }
        (events, notes)
    }
}

/// Restores the previous thread-local context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    _private: (),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The calling thread's current context, if one is installed.
#[must_use]
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// The current trace id, if a context is installed.
#[must_use]
pub fn current_trace_id() -> Option<TraceId> {
    CURRENT.with(|c| c.borrow().last().map(|ctx| ctx.trace_id))
}

/// A `Send + Clone` capture of the current context (or of an explicit
/// one), for installing it on another thread — the explicit propagation
/// step rayon workers need, since thread-locals do not follow closures
/// into a thread pool.
#[derive(Debug, Clone)]
pub struct PropagationHandle {
    ctx: Option<TraceContext>,
}

impl PropagationHandle {
    /// Captures the calling thread's current context (possibly none —
    /// the handle is then a no-op and `scope` just runs the closure).
    #[must_use]
    pub fn capture() -> PropagationHandle {
        PropagationHandle { ctx: current() }
    }

    /// Runs `f` with the captured context installed on the calling
    /// thread (the worker), restoring the worker's previous state after.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.ctx {
            Some(ctx) => {
                let _guard = ctx.enter();
                f()
            }
            None => f(),
        }
    }

    /// Whether a context was actually captured.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.ctx.is_some()
    }
}

/// A running stage timer, recorded against the current trace on finish.
/// When no context is installed at start, the whole thing is a no-op
/// (one thread-local read) — instrumented kernels stay cheap outside a
/// traced request.
#[derive(Debug)]
pub struct StageTimer {
    name: &'static str,
    ctx: Option<TraceContext>,
    start_us: u64,
    started: Instant,
}

/// Opens a stage timer named `name` against the current context.
#[must_use]
pub fn stage(name: &'static str) -> StageTimer {
    let ctx = current();
    let start_us = ctx.as_ref().map_or(0, TraceContext::elapsed_us);
    StageTimer {
        name,
        ctx,
        start_us,
        started: Instant::now(),
    }
}

impl StageTimer {
    /// Closes the stage with no extra fields; returns its duration in µs.
    pub fn finish(self) -> u64 {
        self.finish_with(Vec::new())
    }

    /// Closes the stage, attaching `(key, value)` fields to the event;
    /// returns its duration in µs.
    pub fn finish_with(self, fields: Vec<(&'static str, String)>) -> u64 {
        let dur_us = self.started.elapsed().as_micros() as u64;
        if let Some(ctx) = self.ctx {
            let event = SpanEvent {
                name: self.name,
                span: SpanId::fresh(),
                parent: Some(ctx.span_id),
                start_us: self.start_us,
                dur_us,
                thread: thread_id(),
                fields,
            };
            emit_jsonl(&ctx, &event);
            ctx.collector.push(event);
        }
        dur_us
    }
}

/// Adds `delta` to the named per-trace annotation counter (e.g. rows
/// scored, ANN distance evaluations). No-op without a current context.
pub fn annotate(key: &'static str, delta: u64) {
    if let Some(ctx) = current() {
        ctx.collector.annotate(key, delta);
    }
}

/// Writes one `tspan` JSONL record for a finished stage, if a sink is
/// attached — so offline traces carry the same trace ids as the flight
/// recorder and access log.
fn emit_jsonl(ctx: &TraceContext, event: &SpanEvent) {
    crate::write_jsonl_record(|seq, ms| {
        format!(
            "{{\"type\":\"tspan\",\"seq\":{seq},\"ms\":{},\"trace\":\"{}\",\"span\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"us\":{},\"thread\":{}}}",
            crate::sink::json_f64(ms),
            ctx.trace_id,
            event.span.0,
            event.parent.map_or("null".to_string(), |p| p.0.to_string()),
            crate::sink::escape_json(event.name),
            event.start_us,
            event.dur_us,
            event.thread,
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_roundtrip_and_rejects() {
        let id = TraceId::generate();
        assert_ne!(id.0, 0);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceId::parse_hex(&hex), Some(id));
        assert_eq!(TraceId::parse_hex(&hex.to_uppercase()), Some(id));
        assert_eq!(TraceId::parse_hex("ab"), Some(TraceId(0xab)));
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(TraceId::parse_hex("zz"), None);
        assert_eq!(TraceId::parse_hex(&"0".repeat(32)), None);
        assert_eq!(TraceId::parse_hex(&"f".repeat(33)), None);
    }

    #[test]
    fn generated_ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(TraceId::generate()), "trace id collision");
        }
    }

    #[test]
    fn stages_record_against_current_context() {
        let ctx = TraceContext::root(TraceId::generate());
        {
            let _g = ctx.enter();
            let st = stage("parse");
            let us = st.finish_with(vec![("bytes", "12".to_string())]);
            let _ = us;
            annotate("rows", 2);
            annotate("rows", 3);
        }
        // Outside the guard, stage/annotate are no-ops.
        stage("ignored").finish();
        annotate("rows", 100);
        let (events, notes) = ctx.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "parse");
        assert_eq!(events[0].parent, Some(ctx.span_id()));
        assert_eq!(events[0].fields, vec![("bytes", "12".to_string())]);
        assert_eq!(notes, vec![("rows".to_string(), 5)]);
    }

    #[test]
    fn contexts_nest_and_restore() {
        assert!(current().is_none());
        let outer = TraceContext::root(TraceId::generate());
        let _g1 = outer.enter();
        assert_eq!(current_trace_id(), Some(outer.trace_id()));
        {
            let inner = outer.child();
            let _g2 = inner.enter();
            assert_eq!(current().unwrap().span_id(), inner.span_id());
            stage("inner_stage").finish();
        }
        assert_eq!(current().unwrap().span_id(), outer.span_id());
        let (events, _) = outer.take_events();
        assert_eq!(events.len(), 1);
        assert_ne!(events[0].parent, Some(outer.span_id()));
    }

    #[test]
    fn propagation_handle_carries_context_across_threads() {
        let ctx = TraceContext::root(TraceId::generate());
        let _g = ctx.enter();
        let handle = PropagationHandle::capture();
        assert!(handle.is_active());
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    h.scope(|| {
                        assert!(current().is_some(), "context must follow the handle");
                        stage("worker").finish();
                        annotate("worker_units", i + 1);
                    });
                    assert!(current().is_none(), "scope must not leak");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let (events, notes) = ctx.take_events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.name == "worker"));
        assert_eq!(notes, vec![("worker_units".to_string(), 1 + 2 + 3 + 4)]);
        // Worker thread ids differ from this thread's.
        assert!(events.iter().all(|e| e.thread != crate::trace::thread_id()));
    }

    #[test]
    fn inactive_handle_is_noop() {
        assert!(current().is_none());
        let handle = PropagationHandle::capture();
        assert!(!handle.is_active());
        assert_eq!(handle.scope(|| 7), 7);
    }

    #[test]
    fn event_buffer_is_bounded() {
        let ctx = TraceContext::root(TraceId::generate());
        let _g = ctx.enter();
        for _ in 0..(MAX_EVENTS_PER_TRACE + 10) {
            stage("spin").finish();
        }
        let (events, notes) = ctx.take_events();
        assert_eq!(events.len(), MAX_EVENTS_PER_TRACE);
        assert_eq!(notes, vec![("events_dropped".to_string(), 10)]);
    }

    #[test]
    fn span_event_json_shape() {
        let e = SpanEvent {
            name: "cache_lookup",
            span: SpanId(7),
            parent: Some(SpanId(3)),
            start_us: 10,
            dur_us: 42,
            thread: 1,
            fields: vec![("hits", "2".to_string())],
        };
        let json = e.to_json();
        assert!(json.contains("\"name\":\"cache_lookup\""));
        assert!(json.contains("\"span\":7"));
        assert!(json.contains("\"parent\":3"));
        assert!(json.contains("\"us\":42"));
        assert!(json.contains("\"hits\":\"2\""));
        let root = SpanEvent { parent: None, ..e };
        assert!(root.to_json().contains("\"parent\":null"));
    }
}
