//! Deterministic fault-injection sites ("failpoints").
//!
//! A failpoint is a named site in production code where a test (or an
//! operator, via the `GALIGN_FAILPOINTS` environment variable) can inject
//! a fault: a panic, a delay, or a site-specific trigger the surrounding
//! code interprets (e.g. "poison this epoch's loss with NaN", "crash
//! between tmp-write and rename"). Sites call [`eval`]; with the
//! `failpoints` cargo feature **disabled** (the default) `eval` is an
//! `#[inline(always)]` constant `None` and the whole mechanism compiles
//! to nothing — zero branches on the hot path.
//!
//! ## Configuring sites
//!
//! Actions are described by a small spec grammar:
//!
//! ```text
//! panic            panic at the site
//! panic(msg)       panic with a message
//! delay(ms)        sleep `ms` milliseconds, then continue
//! trigger          site-specific fault, no payload
//! trigger(payload) site-specific fault with a payload string
//! 2*trigger        fire at most twice, then deactivate
//! ```
//!
//! Three configuration layers, highest priority first:
//!
//! 1. **thread-local** ([`cfg_local`]) — scoped to the calling thread, the
//!    right tool for unit tests that run in parallel;
//! 2. **global** ([`fn@cfg`]) — process-wide, needed when the faulted code
//!    runs on other threads (e.g. server workers);
//! 3. **environment** — `GALIGN_FAILPOINTS="site=spec;site2=spec"`, read
//!    once at first use and merged into the global layer.
//!
//! ```
//! use galign_telemetry::failpoint;
//! # #[cfg(feature = "failpoints")] {
//! failpoint::cfg_local("demo.site", "1*trigger(7)").unwrap();
//! assert_eq!(
//!     failpoint::eval("demo.site"),
//!     Some(failpoint::Action::Trigger(Some("7".into())))
//! );
//! assert_eq!(failpoint::eval("demo.site"), None); // count exhausted
//! failpoint::clear_local();
//! # }
//! ```

/// A fault to inject at a site.
///
/// [`eval`] executes `Panic` and `Delay` itself (the former never
/// returns); `Trigger` is returned to the call site, which interprets the
/// optional payload (the trainer reads it as an epoch index, the
/// persistence layer ignores it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic with the given message (a simulated crash).
    Panic(String),
    /// Sleep for the given number of milliseconds (a simulated stall),
    /// then return the action so the site can log it.
    Delay(u64),
    /// A site-specific fault with an optional payload.
    Trigger(Option<String>),
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::Action;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// A configured site: the action plus an optional remaining-fire count.
    #[derive(Debug, Clone)]
    struct Site {
        action: Action,
        remaining: Option<u32>,
    }

    fn parse_spec(spec: &str) -> Result<Site, String> {
        let spec = spec.trim();
        let (remaining, body) = match spec.split_once('*') {
            Some((count, rest)) => {
                let n: u32 = count
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fire count in {spec:?}"))?;
                (Some(n), rest.trim())
            }
            None => (None, spec),
        };
        let (name, payload) = match body.split_once('(') {
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed '(' in {spec:?}"))?;
                (name.trim(), Some(inner.to_string()))
            }
            None => (body, None),
        };
        let action = match name {
            "panic" => Action::Panic(payload.unwrap_or_else(|| "failpoint panic".into())),
            "delay" => {
                let ms = payload
                    .as_deref()
                    .unwrap_or("0")
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad delay in {spec:?} (want delay(ms))"))?;
                Action::Delay(ms)
            }
            "trigger" => Action::Trigger(payload),
            other => return Err(format!("unknown failpoint action {other:?}")),
        };
        Ok(Site { action, remaining })
    }

    type SiteMap = HashMap<String, Site>;

    fn global() -> MutexGuard<'static, SiteMap> {
        static GLOBAL: OnceLock<Mutex<SiteMap>> = OnceLock::new();
        let map = GLOBAL.get_or_init(|| {
            let mut map = SiteMap::new();
            if let Ok(env) = std::env::var("GALIGN_FAILPOINTS") {
                for entry in env.split(';').filter(|e| !e.trim().is_empty()) {
                    match entry.split_once('=') {
                        Some((site, spec)) => match parse_spec(spec) {
                            Ok(parsed) => {
                                map.insert(site.trim().to_string(), parsed);
                            }
                            Err(e) => eprintln!("GALIGN_FAILPOINTS: {e}"),
                        },
                        None => eprintln!("GALIGN_FAILPOINTS: missing '=' in {entry:?}"),
                    }
                }
            }
            Mutex::new(map)
        });
        map.lock().unwrap_or_else(|p| p.into_inner())
    }

    thread_local! {
        static LOCAL: RefCell<SiteMap> = RefCell::new(SiteMap::new());
    }

    /// Pops the next action for `site` from a layer, honouring and
    /// decrementing the remaining-fire count.
    fn take(map: &mut SiteMap, site: &str) -> Option<Action> {
        let entry = map.get_mut(site)?;
        match &mut entry.remaining {
            None => Some(entry.action.clone()),
            Some(0) => None,
            Some(n) => {
                *n -= 1;
                Some(entry.action.clone())
            }
        }
    }

    pub fn eval(site: &str) -> Option<Action> {
        let action = LOCAL
            .with(|l| take(&mut l.borrow_mut(), site))
            .or_else(|| take(&mut global(), site))?;
        crate::counter_add("failpoint.fired", 1);
        match action {
            Action::Panic(msg) => panic!("failpoint {site}: {msg}"),
            Action::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Some(Action::Delay(ms))
            }
            trigger => Some(trigger),
        }
    }

    pub fn cfg(site: &str, spec: &str) -> Result<(), String> {
        let parsed = parse_spec(spec)?;
        global().insert(site.to_string(), parsed);
        Ok(())
    }

    pub fn cfg_local(site: &str, spec: &str) -> Result<(), String> {
        let parsed = parse_spec(spec)?;
        LOCAL.with(|l| l.borrow_mut().insert(site.to_string(), parsed));
        Ok(())
    }

    pub fn remove(site: &str) {
        global().remove(site);
        LOCAL.with(|l| l.borrow_mut().remove(site));
    }

    pub fn clear() {
        global().clear();
        clear_local();
    }

    pub fn clear_local() {
        LOCAL.with(|l| l.borrow_mut().clear());
    }

    pub fn scenario_lock() -> MutexGuard<'static, ()> {
        static SCENARIO: Mutex<()> = Mutex::new(());
        SCENARIO.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{cfg, cfg_local, clear, clear_local, eval, remove};

#[cfg(feature = "failpoints")]
/// RAII scope for tests that configure **global** failpoints: serialises
/// concurrent scenarios behind one process-wide lock and clears every
/// site (global and thread-local) on drop. Tests that only use
/// [`cfg_local`] do not need it.
pub struct Scenario {
    _guard: std::sync::MutexGuard<'static, ()>,
}

#[cfg(feature = "failpoints")]
impl Scenario {
    /// Acquires the scenario lock and starts from a clean registry.
    #[must_use]
    pub fn setup() -> Self {
        let guard = imp::scenario_lock();
        imp::clear();
        Scenario { _guard: guard }
    }
}

#[cfg(feature = "failpoints")]
impl Drop for Scenario {
    fn drop(&mut self) {
        imp::clear();
    }
}

// ---------------------------------------------------------------------------
// Feature-off stubs: everything inlines to nothing.
// ---------------------------------------------------------------------------

/// Evaluates the failpoint named `site`. Returns the injected [`Action`]
/// (with `Panic` already raised and `Delay` already slept), or `None` when
/// the site is not configured — always `None` when the `failpoints`
/// feature is off.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn eval(_site: &str) -> Option<Action> {
    None
}

/// Configures a site process-wide (no-op without the `failpoints` feature).
///
/// # Errors
/// Malformed spec strings.
#[cfg(not(feature = "failpoints"))]
pub fn cfg(_site: &str, _spec: &str) -> Result<(), String> {
    Ok(())
}

/// Configures a site for the calling thread only (no-op without the
/// `failpoints` feature).
///
/// # Errors
/// Malformed spec strings.
#[cfg(not(feature = "failpoints"))]
pub fn cfg_local(_site: &str, _spec: &str) -> Result<(), String> {
    Ok(())
}

/// Removes one site from every layer.
#[cfg(not(feature = "failpoints"))]
pub fn remove(_site: &str) {}

/// Clears every configured site (global and thread-local).
#[cfg(not(feature = "failpoints"))]
pub fn clear() {}

/// Clears the calling thread's sites.
#[cfg(not(feature = "failpoints"))]
pub fn clear_local() {}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_site_is_none() {
        assert_eq!(eval("fp.nothing-here"), None);
    }

    #[test]
    fn trigger_with_payload_and_count() {
        cfg_local("fp.count", "2*trigger(abc)").unwrap();
        assert_eq!(eval("fp.count"), Some(Action::Trigger(Some("abc".into()))));
        assert_eq!(eval("fp.count"), Some(Action::Trigger(Some("abc".into()))));
        assert_eq!(eval("fp.count"), None, "count exhausted");
        clear_local();
    }

    #[test]
    fn trigger_without_payload() {
        cfg_local("fp.bare", "trigger").unwrap();
        assert_eq!(eval("fp.bare"), Some(Action::Trigger(None)));
        // Unbounded: keeps firing.
        assert_eq!(eval("fp.bare"), Some(Action::Trigger(None)));
        clear_local();
    }

    #[test]
    fn delay_sleeps_then_returns() {
        cfg_local("fp.delay", "1*delay(10)").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(eval("fp.delay"), Some(Action::Delay(10)));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        clear_local();
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        cfg_local("fp.boom", "panic(simulated crash)").unwrap();
        let err = std::panic::catch_unwind(|| eval("fp.boom")).unwrap_err();
        clear_local();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("fp.boom"), "{msg}");
        assert!(msg.contains("simulated crash"), "{msg}");
    }

    #[test]
    fn local_layer_shadows_global() {
        let _s = Scenario::setup();
        cfg("fp.layered", "trigger(global)").unwrap();
        cfg_local("fp.layered", "trigger(local)").unwrap();
        assert_eq!(
            eval("fp.layered"),
            Some(Action::Trigger(Some("local".into())))
        );
        clear_local();
        assert_eq!(
            eval("fp.layered"),
            Some(Action::Trigger(Some("global".into())))
        );
        remove("fp.layered");
        assert_eq!(eval("fp.layered"), None);
    }

    #[test]
    fn global_sites_visible_from_other_threads() {
        let _s = Scenario::setup();
        cfg("fp.cross-thread", "trigger").unwrap();
        let seen = std::thread::spawn(|| eval("fp.cross-thread"))
            .join()
            .unwrap();
        assert_eq!(seen, Some(Action::Trigger(None)));
    }

    #[test]
    fn bad_specs_are_rejected() {
        for spec in ["explode", "trigger(unclosed", "x*trigger", "delay(soon)"] {
            assert!(cfg_local("fp.bad", spec).is_err(), "accepted {spec:?}");
        }
        // A rejected spec must not configure the site.
        assert_eq!(eval("fp.bad"), None);
    }

    #[test]
    fn scenario_clears_on_drop() {
        {
            let _s = Scenario::setup();
            cfg("fp.scoped", "trigger").unwrap();
            assert!(eval("fp.scoped").is_some());
        }
        let _s = Scenario::setup();
        assert_eq!(eval("fp.scoped"), None);
    }
}
