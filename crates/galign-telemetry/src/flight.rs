//! The flight recorder: a sharded in-memory ring of the last N completed
//! request traces plus a slowest-K reservoir, for post-hoc "which request
//! and why" debugging without an external collector.
//!
//! Producers (the HTTP server, the trainer's watchdog) push completed
//! [`TraceRecord`]s; consumers read them back as JSON — the serving tier
//! exposes the recorder at `GET /v1/debug/requests` and dumps it to JSONL
//! on shutdown. When the serving tier transitions to a degraded health
//! state it *freezes* the recorder, so the traces leading up to the
//! incident survive inspection instead of being overwritten by the
//! incident's own retry storm.
//!
//! Memory is strictly bounded: `capacity` ring slots + `slowest_k`
//! reservoir slots, each holding one bounded trace (see
//! `context::MAX_EVENTS_PER_TRACE`). Records arriving while frozen are
//! counted, not stored.

use crate::context::{self, SpanEvent, TraceId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A completed serving request.
    Request,
    /// An out-of-band incident (watchdog rollback, recovery, abort).
    Incident,
    /// One upstream hop of a scatter-gather request: the router records
    /// each per-shard fan-out leg under the same trace id as the routed
    /// request it belongs to.
    Hop,
}

impl RecordKind {
    /// Lowercase name used in JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Request => "request",
            RecordKind::Incident => "incident",
            RecordKind::Hop => "hop",
        }
    }
}

/// One completed trace: identity, outcome, and its stage timeline.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The trace id shared with the response header, access log and
    /// span JSONL.
    pub trace_id: TraceId,
    /// Request or incident.
    pub kind: RecordKind,
    /// Route (`/v1/align/topk`) or incident name (`watchdog.rollback`).
    pub name: String,
    /// HTTP status for requests; 0 for incidents.
    pub status: u16,
    /// Engine that served the request (`exact`/`ann`), empty for
    /// incidents.
    pub engine: String,
    /// Milliseconds on the process-relative telemetry clock at
    /// completion.
    pub end_ms: f64,
    /// Total duration in microseconds.
    pub total_us: u64,
    /// Per-stage timeline (drained from the trace's collector).
    pub events: Vec<SpanEvent>,
    /// Accumulated numeric annotations (`rows_scored`, `distance_evals`).
    pub notes: Vec<(String, u64)>,
    /// Free-form string fields (incident reasons, cache outcome).
    pub fields: Vec<(String, String)>,
}

impl TraceRecord {
    /// Renders the record as one JSON object (one JSONL line when
    /// followed by `\n`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace\":\"{}\",\"kind\":\"{}\",\"name\":\"{}\",\"status\":{},\"engine\":\"{}\",\"end_ms\":{},\"us\":{}",
            self.trace_id,
            self.kind.name(),
            crate::sink::escape_json(&self.name),
            self.status,
            crate::sink::escape_json(&self.engine),
            crate::sink::json_f64(self.end_ms),
            self.total_us,
        );
        out.push_str(",\"notes\":{");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", crate::sink::escape_json(k)));
        }
        out.push_str("},\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":\"{}\"",
                crate::sink::escape_json(k),
                crate::sink::escape_json(v)
            ));
        }
        out.push_str("},\"spans\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// A ring slot: the record plus a global arrival sequence, so snapshots
/// across shards can interleave in true completion order.
#[derive(Debug)]
struct Slot {
    seq: u64,
    record: TraceRecord,
}

#[derive(Debug, Default)]
struct Ring {
    slots: Vec<Slot>,
    head: usize,
    capacity: usize,
}

impl Ring {
    fn push(&mut self, slot: Slot) {
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(slot);
        } else {
            self.slots[self.head] = slot;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

/// Number of independently locked rings. Power of two; requests hash to
/// a shard by trace id, so concurrent workers rarely contend.
const SHARDS: usize = 8;

/// The recorder. One global instance serves the whole process (see
/// [`global`]); tests may build their own.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Mutex<Ring>>,
    /// The `slowest_k` highest-latency requests since startup (or since
    /// the last thaw), min-first.
    slowest: Mutex<Vec<TraceRecord>>,
    slowest_k: usize,
    seq: AtomicU64,
    frozen: AtomicBool,
    dropped_frozen: AtomicU64,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` records overall and the
    /// `slowest_k` slowest requests.
    #[must_use]
    pub fn new(capacity: usize, slowest_k: usize) -> FlightRecorder {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| {
                Mutex::new(Ring {
                    slots: Vec::new(),
                    head: 0,
                    capacity: if capacity == 0 { 0 } else { per_shard },
                })
            })
            .collect();
        FlightRecorder {
            shards,
            slowest: Mutex::new(Vec::new()),
            slowest_k,
            seq: AtomicU64::new(0),
            frozen: AtomicBool::new(false),
            dropped_frozen: AtomicU64::new(0),
            capacity,
        }
    }

    /// Total ring capacity the recorder was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a completed trace (dropped and counted while frozen).
    pub fn record(&self, record: TraceRecord) {
        if self.frozen.load(Ordering::Acquire) {
            self.dropped_frozen.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.slowest_k > 0 && record.kind == RecordKind::Request {
            let mut slowest = self.slowest.lock().expect("slowest lock");
            if slowest.len() < self.slowest_k {
                slowest.push(record.clone());
                slowest.sort_by_key(|r| r.total_us);
            } else if slowest
                .first()
                .is_some_and(|min| record.total_us > min.total_us)
            {
                slowest[0] = record.clone();
                slowest.sort_by_key(|r| r.total_us);
            }
        }
        let shard = (record.trace_id.0 as usize) & (SHARDS - 1);
        self.shards[shard]
            .lock()
            .expect("ring lock")
            .push(Slot { seq, record });
    }

    /// Freezes the recorder (idempotent): subsequent records are dropped
    /// and counted, preserving the pre-incident window. Returns whether
    /// this call did the freezing.
    pub fn freeze(&self) -> bool {
        !self.frozen.swap(true, Ordering::AcqRel)
    }

    /// Thaws a frozen recorder; recording resumes.
    pub fn unfreeze(&self) {
        self.frozen.store(false, Ordering::Release);
    }

    /// Whether the recorder is currently frozen.
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Records dropped while frozen.
    #[must_use]
    pub fn dropped_while_frozen(&self) -> u64 {
        self.dropped_frozen.load(Ordering::Relaxed)
    }

    /// Records currently retained in the rings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("ring lock").slots.len())
            .sum()
    }

    /// True when nothing has been recorded (or capacity is zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained records, newest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut all: Vec<(u64, TraceRecord)> = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().expect("ring lock");
            all.extend(ring.slots.iter().map(|s| (s.seq, s.record.clone())));
        }
        all.sort_by_key(|s| std::cmp::Reverse(s.0));
        all.into_iter().map(|(_, r)| r).collect()
    }

    /// The slowest-K requests, slowest first.
    #[must_use]
    pub fn slowest(&self) -> Vec<TraceRecord> {
        let mut v = self.slowest.lock().expect("slowest lock").clone();
        v.sort_by_key(|r| std::cmp::Reverse(r.total_us));
        v
    }

    /// Finds a retained record by trace id (rings first, then the
    /// slowest reservoir).
    #[must_use]
    pub fn find(&self, trace_id: TraceId) -> Option<TraceRecord> {
        for shard in &self.shards {
            let ring = shard.lock().expect("ring lock");
            if let Some(s) = ring
                .slots
                .iter()
                .rev()
                .find(|s| s.record.trace_id == trace_id)
            {
                return Some(s.record.clone());
            }
        }
        self.slowest
            .lock()
            .expect("slowest lock")
            .iter()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }

    /// The whole recorder as one JSON object:
    /// `{"frozen":…,"dropped_frozen":…,"recent":[…],"slowest":[…]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"frozen\":{},\"dropped_frozen\":{},\"capacity\":{},\"recent\":[",
            self.is_frozen(),
            self.dropped_while_frozen(),
            self.capacity,
        );
        for (i, r) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("],\"slowest\":[");
        for (i, r) in self.slowest().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Dumps every retained record (recent then slowest) as JSONL.
    ///
    /// # Errors
    /// IO failures on the writer.
    pub fn dump_jsonl(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        for r in self.snapshot() {
            writeln!(w, "{}", r.to_json())?;
        }
        for r in self.slowest() {
            writeln!(w, "{}", r.to_json())?;
        }
        w.flush()
    }
}

static GLOBAL_FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// Default ring capacity of the global recorder when nobody configured
/// it explicitly.
pub const DEFAULT_CAPACITY: usize = 256;

/// Default slowest-K reservoir size of the global recorder.
pub const DEFAULT_SLOWEST_K: usize = 16;

/// Configures the process-global recorder. First caller wins (the
/// recorder's rings cannot be resized once handed out); returns whether
/// this call's sizes were applied.
pub fn configure(capacity: usize, slowest_k: usize) -> bool {
    let mut applied = false;
    let _ = GLOBAL_FLIGHT.get_or_init(|| {
        applied = true;
        FlightRecorder::new(capacity, slowest_k)
    });
    applied
}

/// The process-global recorder (created with defaults on first use).
pub fn global() -> &'static FlightRecorder {
    GLOBAL_FLIGHT.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY, DEFAULT_SLOWEST_K))
}

/// Records an out-of-band incident (e.g. a watchdog rollback) into the
/// global recorder, tagged with the current trace context's id when one
/// is installed (so incidents raised while serving a request join that
/// request's timeline) or a fresh id otherwise. Also bumps the
/// `flight.incidents` counter and emits an info event.
pub fn record_incident(name: &str, fields: Vec<(String, String)>) -> TraceId {
    let trace_id = context::current_trace_id().unwrap_or_else(TraceId::generate);
    crate::init_clock();
    let record = TraceRecord {
        trace_id,
        kind: RecordKind::Incident,
        name: name.to_string(),
        status: 0,
        engine: String::new(),
        end_ms: crate::clock_elapsed_ms(),
        total_us: 0,
        events: Vec::new(),
        notes: Vec::new(),
        fields,
    };
    global().record(record);
    crate::counter_add("flight.incidents", 1);
    crate::info!("flight", "incident {name} recorded (trace {trace_id})");
    trace_id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u128, us: u64) -> TraceRecord {
        TraceRecord {
            trace_id: TraceId(id),
            kind: RecordKind::Request,
            name: "/v1/align/topk".to_string(),
            status: 200,
            engine: "exact".to_string(),
            end_ms: 1.0,
            total_us: us,
            events: Vec::new(),
            notes: vec![("rows".to_string(), 1)],
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_retains_newest_records() {
        let fr = FlightRecorder::new(16, 0);
        for i in 0..100u128 {
            fr.record(rec(i + 1, i as u64));
        }
        let snap = fr.snapshot();
        assert!(fr.len() <= 16 + SHARDS, "bounded: {}", fr.len());
        assert_eq!(snap[0].trace_id, TraceId(100), "newest first");
        // Every retained record is from the tail of the stream.
        assert!(snap.iter().all(|r| r.trace_id.0 > 100 - 3 * 16));
    }

    #[test]
    fn slowest_reservoir_keeps_the_k_slowest() {
        let fr = FlightRecorder::new(4, 3);
        for (i, us) in [10, 500, 20, 900, 30, 700, 40].iter().enumerate() {
            fr.record(rec(i as u128 + 1, *us));
        }
        let slow: Vec<u64> = fr.slowest().iter().map(|r| r.total_us).collect();
        assert_eq!(slow, vec![900, 700, 500]);
    }

    #[test]
    fn freeze_preserves_the_window() {
        let fr = FlightRecorder::new(8, 2);
        fr.record(rec(1, 10));
        fr.record(rec(2, 20));
        assert!(fr.freeze(), "first freeze reports the transition");
        assert!(!fr.freeze(), "freeze is idempotent");
        assert!(fr.is_frozen());
        fr.record(rec(3, 30));
        assert_eq!(fr.dropped_while_frozen(), 1);
        assert_eq!(fr.len(), 2, "frozen window intact");
        assert!(fr.find(TraceId(3)).is_none());
        fr.unfreeze();
        fr.record(rec(4, 40));
        assert!(fr.find(TraceId(4)).is_some());
    }

    #[test]
    fn find_locates_by_trace_id() {
        let fr = FlightRecorder::new(8, 2);
        fr.record(rec(7, 10));
        assert_eq!(fr.find(TraceId(7)).unwrap().status, 200);
        assert!(fr.find(TraceId(8)).is_none());
    }

    #[test]
    fn json_shapes() {
        let fr = FlightRecorder::new(4, 2);
        fr.record(rec(0xabc, 42));
        let json = fr.to_json();
        assert!(json.starts_with("{\"frozen\":false"));
        assert!(json.contains("\"recent\":["));
        assert!(json.contains("\"slowest\":["));
        assert!(json.contains(&format!("\"trace\":\"{:032x}\"", 0xabc)));
        assert!(json.contains("\"kind\":\"request\""));
        assert!(json.contains("\"notes\":{\"rows\":1}"));
        let mut buf = Vec::new();
        fr.dump_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // One ring copy + one reservoir copy of the single record.
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"trace\":")));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let fr = FlightRecorder::new(0, 0);
        fr.record(rec(1, 10));
        assert!(fr.is_empty());
        assert!(fr.slowest().is_empty());
    }

    #[test]
    fn incidents_pick_up_the_current_trace() {
        let ctx = context::TraceContext::root(TraceId(0x77));
        let _g = ctx.enter();
        let id = record_incident(
            "watchdog.rollback",
            vec![("reason".to_string(), "loss spike".to_string())],
        );
        assert_eq!(id, TraceId(0x77));
        let found = global().find(TraceId(0x77));
        // The global recorder may be shared across tests; the incident we
        // just recorded must be discoverable unless another test froze it.
        if let Some(r) = found {
            assert_eq!(r.kind, RecordKind::Incident);
            assert_eq!(
                r.fields,
                vec![("reason".to_string(), "loss spike".to_string())]
            );
        }
    }
}
