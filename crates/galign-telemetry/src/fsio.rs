//! Crash-safe file writes and corrupt-file quarantine.
//!
//! Every artifact/model/embedding writer in the suite funnels through
//! [`atomic_write`]: the bytes go to a temporary file *in the same
//! directory* (so the final rename cannot cross filesystems), are flushed
//! and `sync_all`-ed, and only then renamed over the destination. A crash
//! at any point leaves either the old generation or the new one — never a
//! half-written file readable as valid.
//!
//! [`atomic_write_keep_prev`] additionally keeps the previous generation
//! as `<name>.prev`, giving loaders a fallback when the current file turns
//! out corrupt (see [`prev_path`] / [`quarantine`]). The window between
//! the two renames is covered by the `fsio.atomic_write` failpoint, which
//! the fault-injection suite uses to simulate crashes mid-update.

use crate::failpoint;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Appends `suffix` to the file name of `path` (`a/b.bin` → `a/b.bin.prev`).
fn with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// The previous-generation sibling of `path` (`<name>.prev`).
#[must_use]
pub fn prev_path(path: &Path) -> PathBuf {
    with_suffix(path, ".prev")
}

/// The quarantine sibling of `path` (`<name>.corrupt`).
#[must_use]
pub fn corrupt_path(path: &Path) -> PathBuf {
    with_suffix(path, ".corrupt")
}

fn tmp_path(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    with_suffix(path, &format!(".tmp.{}.{n}", std::process::id()))
}

/// Best-effort directory fsync so the rename itself is durable (no-op on
/// platforms where directories cannot be opened).
fn sync_dir(path: &Path) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Writes the temporary sibling and durably flushes it.
fn write_tmp(path: &Path, bytes: &[u8]) -> io::Result<PathBuf> {
    let tmp = tmp_path(path);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    Ok(tmp)
}

/// Evaluates the `fsio.atomic_write` failpoint sitting between tmp-write
/// and rename; a `trigger` action simulates a crash by erroring out with
/// the temporary file left behind, exactly as a real crash would.
fn crash_window(tmp: &Path) -> io::Result<()> {
    if let Some(failpoint::Action::Trigger(_)) = failpoint::eval("fsio.atomic_write") {
        return Err(io::Error::other(format!(
            "failpoint fsio.atomic_write: simulated crash before rename \
             (tmp file {} left behind)",
            tmp.display()
        )));
    }
    Ok(())
}

/// Atomically replaces `path` with `bytes`: tmp file in the same
/// directory → flush → `sync_all` → rename.
///
/// # Errors
/// IO failures at any step; on error the destination is untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = write_tmp(path, bytes)?;
    crash_window(&tmp)?;
    std::fs::rename(&tmp, path)?;
    sync_dir(path);
    crate::counter_add("fsio.atomic_writes", 1);
    Ok(())
}

/// Like [`atomic_write`], but first preserves any existing `path` as
/// `<name>.prev` (replacing an older `.prev`). Returns whether a previous
/// generation was kept.
///
/// Crash windows: before the first rename the old generation is intact at
/// `path`; between the renames it is intact at `<name>.prev` (loaders fall
/// back to it); after the second rename the new generation is live.
///
/// # Errors
/// IO failures at any step.
pub fn atomic_write_keep_prev(path: &Path, bytes: &[u8]) -> io::Result<bool> {
    let tmp = write_tmp(path, bytes)?;
    let kept = path.exists();
    if kept {
        std::fs::rename(path, prev_path(path))?;
    }
    crash_window(&tmp)?;
    std::fs::rename(&tmp, path)?;
    sync_dir(path);
    crate::counter_add("fsio.atomic_writes", 1);
    Ok(kept)
}

/// Moves a file that failed validation out of the way as `<name>.corrupt`
/// (replacing any previous quarantine), so the next load attempt does not
/// trip over it again and the evidence survives for inspection.
///
/// # Errors
/// IO failures from the rename (a missing source file is *not* an error —
/// the goal state "nothing readable at `path`" already holds).
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let dest = corrupt_path(path);
    match std::fs::rename(path, &dest) {
        Ok(()) => {
            crate::counter_add("fsio.quarantined", 1);
            crate::info!("fsio", "quarantined corrupt file as {}", dest.display());
            Ok(dest)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(dest),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("galign-fsio-test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_roundtrip_and_overwrite() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("data.bin");
        atomic_write(&path, b"generation-1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-1");
        atomic_write(&path, b"generation-2").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-2");
        // No stray temporary files remain.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn keep_prev_retains_one_generation() {
        let dir = tmp_dir("keep-prev");
        let path = dir.join("model.json");
        assert!(!atomic_write_keep_prev(&path, b"v1").unwrap());
        assert!(atomic_write_keep_prev(&path, b"v2").unwrap());
        assert_eq!(std::fs::read(&path).unwrap(), b"v2");
        assert_eq!(std::fs::read(prev_path(&path)).unwrap(), b"v1");
        // A third write replaces the .prev, never accumulates.
        assert!(atomic_write_keep_prev(&path, b"v3").unwrap());
        assert_eq!(std::fs::read(prev_path(&path)).unwrap(), b"v2");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
    }

    #[test]
    fn quarantine_moves_file_aside() {
        let dir = tmp_dir("quarantine");
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"garbage").unwrap();
        let dest = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert_eq!(std::fs::read(&dest).unwrap(), b"garbage");
        // Quarantining a missing file is not an error.
        quarantine(&path).unwrap();
    }

    #[test]
    fn suffix_paths() {
        let p = Path::new("/a/b/model.bin");
        assert_eq!(prev_path(p), Path::new("/a/b/model.bin.prev"));
        assert_eq!(corrupt_path(p), Path::new("/a/b/model.bin.corrupt"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn simulated_crash_before_rename_keeps_old_generation() {
        let dir = tmp_dir("crash");
        let path = dir.join("store.bin");
        atomic_write(&path, b"good-old").unwrap();

        crate::failpoint::cfg_local("fsio.atomic_write", "1*trigger").unwrap();
        let err = atomic_write_keep_prev(&path, b"never-lands").unwrap_err();
        crate::failpoint::clear_local();
        assert!(err.to_string().contains("simulated crash"), "{err}");

        // The old generation survived the crash — at `path` or, if the
        // crash hit between the two renames, at `<name>.prev`.
        let survivor = if path.exists() {
            std::fs::read(&path).unwrap()
        } else {
            std::fs::read(prev_path(&path)).unwrap()
        };
        assert_eq!(survivor, b"good-old");

        // Recovery: the next write goes through cleanly.
        atomic_write_keep_prev(&path, b"new").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
    }
}
