//! # galign-telemetry
//!
//! The observability substrate of the GAlign suite: a lightweight span/event
//! tracer, a metrics registry (counters, gauges, histograms) and two
//! pluggable sinks — a leveled human-readable stderr logger and a JSONL
//! exporter whose output the bench harness embeds into `results/*.json`.
//!
//! Everything is `std`-only and **cheap when disabled**: with no sink
//! attached and metrics off (the default), an instrumented kernel pays one
//! relaxed atomic load and a branch.
//!
//! ```
//! use galign_telemetry as telemetry;
//!
//! // A counter in a hot kernel: guard on `metrics_enabled`.
//! if telemetry::metrics_enabled() {
//!     telemetry::counter_add("matrix.gemm.flops", 1_000_000);
//! }
//!
//! // A traced stage: the span measures wall-clock even when disabled, so
//! // pipelines can use `finish()` for their stage timings.
//! let span = telemetry::span!("refine", iter = 3);
//! let secs = span.finish();
//! assert!(secs >= 0.0);
//!
//! // Leveled events (stderr is silent unless the level is raised).
//! telemetry::info!("pipeline", "refinement done in {secs:.2}s");
//! ```

pub mod context;
pub mod failpoint;
pub mod flight;
pub mod fsio;
pub mod prom;
pub mod registry;
pub mod sink;
pub mod trace;

pub use context::{PropagationHandle, TraceContext, TraceId};
pub use flight::FlightRecorder;
pub use registry::{HistogramBuckets, HistogramSummary, MetricsSnapshot, Registry};
pub use sink::Level;
pub use trace::Span;

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

struct Global {
    stderr_level: AtomicU8,
    metrics_enabled: AtomicBool,
    jsonl_attached: AtomicBool,
    seq: AtomicU64,
    jsonl: Mutex<Option<Box<dyn Write + Send>>>,
    registry: Registry,
}

static GLOBAL: Global = Global {
    stderr_level: AtomicU8::new(0), // Quiet: libraries are silent by default
    metrics_enabled: AtomicBool::new(false),
    jsonl_attached: AtomicBool::new(false),
    seq: AtomicU64::new(0),
    jsonl: Mutex::new(None),
    registry: Registry::new(),
};

static CLOCK: OnceLock<Instant> = OnceLock::new();

/// Anchors the process-relative clock (idempotent; called implicitly by
/// every emitting path).
pub fn init_clock() {
    let _ = CLOCK.get_or_init(Instant::now);
}

fn elapsed_ms() -> f64 {
    CLOCK.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e3
}

/// Milliseconds on the process-relative telemetry clock — the same epoch
/// as every JSONL record's `ms` field, so external timestamps (access
/// logs, flight-recorder entries) line up with the span stream.
pub fn clock_ms() -> f64 {
    elapsed_ms()
}

pub(crate) fn clock_elapsed_ms() -> f64 {
    elapsed_ms()
}

/// Nanoseconds on the process-relative telemetry clock.
pub(crate) fn clock_elapsed_nanos() -> u128 {
    CLOCK.get_or_init(Instant::now).elapsed().as_nanos()
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Sets the stderr logger's verbosity ([`Level::Quiet`] disables it).
pub fn set_stderr_level(level: Level) {
    GLOBAL.stderr_level.store(level as u8, Ordering::Relaxed);
}

/// Current stderr verbosity.
pub fn stderr_level() -> Level {
    Level::from_u8(GLOBAL.stderr_level.load(Ordering::Relaxed))
}

/// Enables/disables metric recording (counters, gauges, histograms).
pub fn set_metrics_enabled(on: bool) {
    GLOBAL.metrics_enabled.store(on, Ordering::Relaxed);
}

/// True when metric recording is on. Instrumented hot paths check this
/// before doing any work.
#[inline]
pub fn metrics_enabled() -> bool {
    GLOBAL.metrics_enabled.load(Ordering::Relaxed)
}

/// True when spans should participate in the stack and emit on close:
/// a JSONL sink is attached, metrics are recording (span durations feed
/// histograms) or the stderr logger is at debug verbosity.
#[inline]
pub fn spans_enabled() -> bool {
    jsonl_attached() || metrics_enabled() || stderr_level() >= Level::Debug
}

fn jsonl_attached() -> bool {
    GLOBAL.jsonl_attached.load(Ordering::Relaxed)
}

/// Attaches a JSONL sink writing to an arbitrary writer (replacing any
/// previous sink). Every event, span close and gauge update is appended as
/// one JSON object per line.
pub fn attach_jsonl_writer(w: Box<dyn Write + Send>) {
    init_clock();
    let mut sink = GLOBAL.jsonl.lock().expect("jsonl lock");
    *sink = Some(w);
    GLOBAL.jsonl_attached.store(true, Ordering::Relaxed);
}

/// Attaches a JSONL sink writing to `path` (truncating). Also enables
/// metrics so the closing snapshot has content.
///
/// # Errors
/// Propagates file-creation failures.
pub fn attach_jsonl_path(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    attach_jsonl_writer(Box::new(std::io::BufWriter::new(file)));
    set_metrics_enabled(true);
    Ok(())
}

/// Detaches the JSONL sink (flushing it) and returns the writer, if any.
pub fn detach_jsonl() -> Option<Box<dyn Write + Send>> {
    let mut sink = GLOBAL.jsonl.lock().expect("jsonl lock");
    GLOBAL.jsonl_attached.store(false, Ordering::Relaxed);
    let mut w = sink.take();
    if let Some(w) = w.as_mut() {
        let _ = w.flush();
    }
    w
}

/// Writes a `snapshot` record (current counters/gauges/histograms) to the
/// JSONL sink and flushes it. Call at the end of a run so aggregate-only
/// metrics (e.g. GEMM/SpMM counters) appear in the exported stream.
pub fn flush() {
    if jsonl_attached() {
        let metrics = GLOBAL.registry.snapshot().to_json();
        write_jsonl_record(|seq, ms| {
            format!(
                "{{\"type\":\"snapshot\",\"seq\":{seq},\"ms\":{},\"metrics\":{metrics}}}",
                sink::json_f64(ms)
            )
        });
    }
    let mut sink = GLOBAL.jsonl.lock().expect("jsonl lock");
    if let Some(w) = sink.as_mut() {
        let _ = w.flush();
    }
}

/// Final-snapshot + flush + detach, in one call (CLI exit path).
pub fn shutdown() {
    flush();
    let _ = detach_jsonl();
}

// ---------------------------------------------------------------------------
// Metrics (global registry)
// ---------------------------------------------------------------------------

pub(crate) fn global_registry() -> &'static Registry {
    &GLOBAL.registry
}

/// Adds `delta` to a global counter. No-op when metrics are disabled.
pub fn counter_add(name: &str, delta: u64) {
    if metrics_enabled() {
        GLOBAL.registry.counter_add(name, delta);
    }
}

/// Current value of a global counter.
pub fn counter_value(name: &str) -> u64 {
    GLOBAL.registry.counter_value(name)
}

/// Sets a global gauge and (when a JSONL sink is attached) appends a
/// time-series record, so per-epoch gauges become convergence curves.
/// No-op when metrics are disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !metrics_enabled() {
        return;
    }
    GLOBAL.registry.gauge_set(name, value);
    write_jsonl_record(|seq, ms| {
        format!(
            "{{\"type\":\"gauge\",\"seq\":{seq},\"ms\":{},\"name\":\"{}\",\"value\":{}}}",
            sink::json_f64(ms),
            sink::escape_json(name),
            sink::json_f64(value)
        )
    });
}

/// Last value of a global gauge.
pub fn gauge_value(name: &str) -> Option<f64> {
    GLOBAL.registry.gauge_value(name)
}

/// Records a sample into a global histogram. No-op when metrics are
/// disabled.
pub fn histogram_record(name: &str, value: f64) {
    if metrics_enabled() {
        GLOBAL.registry.histogram_record(name, value);
    }
}

/// Summary of a global histogram.
pub fn histogram_summary(name: &str) -> Option<HistogramSummary> {
    GLOBAL.registry.histogram_summary(name)
}

/// Snapshot of every global metric.
pub fn snapshot() -> MetricsSnapshot {
    GLOBAL.registry.snapshot()
}

/// Snapshot rendered as a JSON object string (see
/// [`MetricsSnapshot::to_json`]); consumers with a JSON parser can embed it
/// verbatim.
pub fn snapshot_json() -> String {
    GLOBAL.registry.snapshot().to_json()
}

/// Clears every global metric (between bench repetitions, for instance).
pub fn reset_metrics() {
    GLOBAL.registry.reset();
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Emits a leveled event to the active sinks. Prefer the [`info!`],
/// [`debug!`] and [`trace_event!`] macros, which build the message lazily.
pub fn emit(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let to_stderr = level != Level::Quiet && level <= stderr_level();
    let to_jsonl = jsonl_attached();
    if !to_stderr && !to_jsonl {
        return;
    }
    init_clock();
    let message = args.to_string();
    if to_jsonl {
        write_jsonl_record(|seq, ms| {
            format!(
                "{{\"type\":\"event\",\"seq\":{seq},\"ms\":{},\"level\":\"{}\",\"target\":\"{}\",\"thread\":{},\"message\":\"{}\"}}",
                sink::json_f64(ms),
                level.name(),
                sink::escape_json(target),
                trace::thread_id(),
                sink::escape_json(&message)
            )
        });
    }
    if to_stderr {
        sink::stderr_line(&format!("[{}] {target}: {message}", level.name()));
    }
}

/// Appends one record line to the JSONL sink (if attached). The closure
/// receives the allocated sequence number and the process-relative
/// timestamp in milliseconds.
pub(crate) fn write_jsonl_record(build: impl FnOnce(u64, f64) -> String) {
    if !jsonl_attached() {
        return;
    }
    let seq = GLOBAL.seq.fetch_add(1, Ordering::Relaxed);
    let line = build(seq, elapsed_ms());
    let mut sink = GLOBAL.jsonl.lock().expect("jsonl lock");
    if let Some(w) = sink.as_mut() {
        let _ = writeln!(w, "{line}");
    }
}

/// Info-level event: `info!("target", "fmt {}", args)`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        $crate::emit($crate::Level::Info, $target, ::std::format_args!($($arg)*))
    };
}

/// Debug-level event (per-iteration/per-epoch diagnostics).
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::emit($crate::Level::Debug, $target, ::std::format_args!($($arg)*))
    };
}

/// Trace-level event (inner-loop chatter).
#[macro_export]
macro_rules! trace_event {
    ($target:expr, $($arg:tt)*) => {
        $crate::emit($crate::Level::Trace, $target, ::std::format_args!($($arg)*))
    };
}

/// Opens a [`Span`]: `span!("name")` or `span!("name", key = value, ...)`.
/// Field values are formatted with `Display` — and only when tracing is
/// enabled, so a disabled span costs one `Instant::now()`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::spans_enabled() {
            $crate::Span::enter(
                $name,
                ::std::vec![$((::std::stringify!($key), ::std::format!("{}", $value))),+],
            )
        } else {
            $crate::Span::enter($name, ::std::vec::Vec::new())
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Global-state tests share one lock so they never interleave.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A shared in-memory writer for inspecting JSONL output.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Shared {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn fresh_session() -> Shared {
        let buf = Shared::default();
        attach_jsonl_writer(Box::new(buf.clone()));
        set_metrics_enabled(true);
        reset_metrics();
        buf
    }

    fn end_session() {
        set_metrics_enabled(false);
        set_stderr_level(Level::Quiet);
        let _ = detach_jsonl();
        reset_metrics();
    }

    #[test]
    fn disabled_paths_are_noops() {
        let _g = guard();
        end_session();
        assert!(!metrics_enabled());
        assert!(!spans_enabled());
        counter_add("x.calls", 5);
        gauge_set("x.g", 1.0);
        histogram_record("x.h", 1.0);
        assert_eq!(counter_value("x.calls"), 0);
        assert_eq!(gauge_value("x.g"), None);
        assert!(histogram_summary("x.h").is_none());
        // Spans still measure time when disabled.
        let sp = span!("idle", k = 1);
        assert!(sp.finish() >= 0.0);
    }

    #[test]
    fn span_nesting_and_ordering_in_jsonl() {
        let _g = guard();
        let buf = fresh_session();
        {
            let outer = span!("outer");
            {
                let inner = span!("inner", iter = 7);
                let _ = inner.finish();
            }
            let _ = outer.finish();
        }
        end_session();
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        let inner_pos = lines
            .iter()
            .position(|l| l.contains("\"name\":\"inner\""))
            .expect("inner span recorded");
        let outer_pos = lines
            .iter()
            .position(|l| l.contains("\"name\":\"outer\""))
            .expect("outer span recorded");
        // Children close (and are written) before their parents.
        assert!(inner_pos < outer_pos, "{text}");
        assert!(lines[inner_pos].contains("\"path\":\"outer/inner\""));
        assert!(lines[inner_pos].contains("\"depth\":1"));
        assert!(lines[inner_pos].contains("\"iter\":\"7\""));
        assert!(lines[outer_pos].contains("\"depth\":0"));
    }

    #[test]
    fn events_gauges_and_snapshot_records() {
        let _g = guard();
        let buf = fresh_session();
        info!("unit", "hello {}", 42);
        gauge_set("train.loss", 0.5);
        counter_add("gemm.calls", 3);
        flush();
        end_session();
        let text = buf.text();
        assert!(text.contains("\"type\":\"event\""), "{text}");
        assert!(text.contains("\"message\":\"hello 42\""));
        assert!(text.contains("\"type\":\"gauge\""));
        assert!(text.contains("\"name\":\"train.loss\""));
        assert!(text.contains("\"type\":\"snapshot\""));
        assert!(text.contains("\"gemm.calls\":3"));
    }

    #[test]
    fn span_durations_feed_histograms() {
        let _g = guard();
        let _buf = fresh_session();
        let sp = span!("stage");
        let secs = sp.finish();
        let h = histogram_summary("span.stage.secs").expect("recorded");
        assert_eq!(h.count, 1);
        assert!((h.max - secs).abs() < 1.0);
        end_session();
    }
}
