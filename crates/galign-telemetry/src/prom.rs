//! Prometheus text exposition (format version 0.0.4) over the metrics
//! registry, plus a strict parser used by tests and the CI smoke job to
//! validate what `/metrics?format=prometheus` actually serves.
//!
//! The registry keys metrics by dotted names; this module renders them
//! under a `galign_` prefix with dots flattened to underscores, and
//! re-folds a small fixed table of per-engine / per-status / per-span
//! name families into proper Prometheus labels:
//!
//! | registry name                | exposition series                                   |
//! |------------------------------|-----------------------------------------------------|
//! | `serve.topk.engine.ann`      | `galign_serve_topk_engine_requests_total{engine="ann"}` |
//! | `serve.http.status.2xx`      | `galign_serve_http_responses_total{status="2xx"}`   |
//! | `serve.route.healthz`        | `galign_serve_requests_total{route="healthz"}`      |
//! | `span.refine.secs` (hist)    | `galign_span_seconds{span="refine"}` histogram      |
//!
//! The label table is part of the cardinality contract: every label value
//! comes from a registry name, and the registry bounds its name set (see
//! `registry::MAX_SERIES`), so a scrape can never allocate proportionally
//! to traffic.

use crate::registry::{HistogramBuckets, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Content-Type to serve exposition-format bodies under.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Counter-name prefixes folded into labeled families:
/// `(registry prefix, family name, label key)`. The suffix after the
/// prefix becomes the label value.
const COUNTER_LABEL_FAMILIES: &[(&str, &str, &str)] = &[
    (
        "serve.topk.engine.",
        "galign_serve_topk_engine_requests_total",
        "engine",
    ),
    (
        "serve.http.status.",
        "galign_serve_http_responses_total",
        "status",
    ),
    ("serve.route.", "galign_serve_requests_total", "route"),
];

/// Sanitizes one dotted registry name into a Prometheus metric name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("galign_");
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || (c == ':' && i > 0) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `(family, label)` for a counter/gauge name: either a table match or
/// the sanitized name with no label.
fn family_of(name: &str, total_suffix: bool) -> (String, Option<(String, String)>) {
    for (prefix, family, key) in COUNTER_LABEL_FAMILIES {
        if let Some(value) = name.strip_prefix(prefix) {
            if !value.is_empty() && !value.contains('.') {
                return (
                    (*family).to_string(),
                    Some(((*key).to_string(), value.to_string())),
                );
            }
        }
    }
    let mut family = sanitize(name);
    if total_suffix && !family.ends_with("_total") {
        family.push_str("_total");
    }
    (family, None)
}

/// `(family, label)` for a histogram name: `span.<name>.secs` histograms
/// fold into one `galign_span_seconds{span="<name>"}` family.
fn histogram_family_of(name: &str) -> (String, Option<(String, String)>) {
    if let Some(stage) = name
        .strip_prefix("span.")
        .and_then(|rest| rest.strip_suffix(".secs"))
    {
        if !stage.is_empty() {
            return (
                "galign_span_seconds".to_string(),
                Some(("span".to_string(), stage.to_string())),
            );
        }
    }
    (sanitize(name), None)
}

fn label_str(label: &Option<(String, String)>) -> String {
    match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label(v)),
        None => String::new(),
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[derive(Default)]
struct Family {
    kind: &'static str,
    /// Rendered sample lines, keyed by label string for dedup+ordering.
    lines: Vec<String>,
}

/// Renders a metrics snapshot in Prometheus text exposition format.
/// Families are emitted in name order, each with `# HELP` and `# TYPE`
/// exactly once; histogram families get cumulative `_bucket` series plus
/// `_sum` and `_count`.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();

    for (name, value) in &snapshot.counters {
        let (family, label) = family_of(name, true);
        let entry = families.entry(family.clone()).or_default();
        entry.kind = "counter";
        entry
            .lines
            .push(format!("{family}{} {value}", label_str(&label)));
    }
    for (name, value) in &snapshot.gauges {
        let (family, label) = family_of(name, false);
        let entry = families.entry(family.clone()).or_default();
        entry.kind = "gauge";
        entry.lines.push(format!(
            "{family}{} {}",
            label_str(&label),
            fmt_value(*value)
        ));
    }
    for (name, b) in &snapshot.buckets {
        let (family, label) = histogram_family_of(name);
        let entry = families.entry(family.clone()).or_default();
        entry.kind = "histogram";
        entry.lines.extend(histogram_lines(&family, label, b));
    }

    let mut out = String::new();
    for (name, family) in &families {
        let _ = writeln!(out, "# HELP {name} galign telemetry metric {name}");
        let _ = writeln!(out, "# TYPE {name} {}", family.kind);
        for line in &family.lines {
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// The cumulative `_bucket`/`_sum`/`_count` lines of one histogram.
fn histogram_lines(
    family: &str,
    label: Option<(String, String)>,
    b: &HistogramBuckets,
) -> Vec<String> {
    let mut lines = Vec::with_capacity(b.bounds.len() + 3);
    let mut cumulative = 0u64;
    for (i, bound) in b.bounds.iter().enumerate() {
        cumulative += b.counts[i];
        lines.push(format!(
            "{family}_bucket{} {cumulative}",
            bucket_label(&label, &fmt_value(*bound))
        ));
    }
    // The +Inf bucket equals the lifetime count by construction.
    lines.push(format!(
        "{family}_bucket{} {}",
        bucket_label(&label, "+Inf"),
        b.count
    ));
    lines.push(format!(
        "{family}_sum{} {}",
        label_str(&label),
        fmt_value(b.sum)
    ));
    lines.push(format!("{family}_count{} {}", label_str(&label), b.count));
    lines
}

fn bucket_label(label: &Option<(String, String)>, le: &str) -> String {
    match label {
        Some((k, v)) => format!("{{{k}=\"{}\",le=\"{le}\"}}", escape_label(v)),
        None => format!("{{le=\"{le}\"}}"),
    }
}

// ---------------------------------------------------------------------------
// Strict exposition-format validation
// ---------------------------------------------------------------------------

/// Summary of a validated exposition body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Metric families seen (`# TYPE` lines).
    pub families: usize,
    /// Sample lines seen.
    pub samples: usize,
}

/// Strictly validates a text-exposition body: every family has `# HELP`
/// and `# TYPE` before its samples, no duplicate series (name + label
/// set), histogram `_bucket` series are monotone in `le` order with the
/// `+Inf` bucket equal to `_count`, and every sample value parses.
///
/// # Errors
/// A human-readable description of the first violation.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: std::collections::HashSet<String> = std::collections::HashSet::new();
    // family+labels -> (le values in order, counts, count_value)
    let mut buckets: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    let mut inf_buckets: BTreeMap<String, u64> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut stats = ExpositionStats::default();

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| Err(format!("line {}: {msg}: {line:?}", ln + 1));
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if name.is_empty() {
                return err("HELP without a metric name".to_string());
            }
            if helped.insert(name.to_string(), true).is_some() {
                return err(format!("duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return err("malformed TYPE line".to_string());
            };
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return err(format!("unknown metric type {kind}"));
            }
            if !helped.contains_key(name) {
                return err(format!("TYPE before HELP for {name}"));
            }
            if typed.insert(name.to_string(), kind.to_string()).is_some() {
                return err(format!("duplicate TYPE for {name}"));
            }
            stats.families += 1;
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // Sample line: name{labels}? value [timestamp]
        let (series, value_part) = match line.find([' ', '\t']) {
            Some(i) if !line[..i].is_empty() => (&line[..i], line[i + 1..].trim()),
            _ => return err("malformed sample line".to_string()),
        };
        let value_txt = value_part.split_whitespace().next().unwrap_or("");
        let value = parse_prom_value(value_txt)
            .ok_or_else(|| format!("line {}: bad value {value_txt:?}: {line:?}", ln + 1))?;
        let (name, labels) = match series.find('{') {
            Some(i) => {
                if !series.ends_with('}') {
                    return err("unterminated label set".to_string());
                }
                (&series[..i], &series[i + 1..series.len() - 1])
            }
            None => (series, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            return err(format!("invalid metric name {name:?}"));
        }
        // The declaring family: histograms declare the base name.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                name.strip_suffix(s)
                    .filter(|b| typed.get(*b).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        let Some(kind) = typed.get(base) else {
            return err(format!("sample for undeclared family {base}"));
        };
        if !seen_series.insert(series.to_string()) {
            return err(format!("duplicate series {series}"));
        }
        stats.samples += 1;

        if kind == "histogram" && name.ends_with("_bucket") {
            let mut le: Option<&str> = None;
            let mut other_labels: Vec<&str> = Vec::new();
            for pair in split_labels(labels) {
                match pair.split_once('=') {
                    Some(("le", v)) => le = Some(v.trim_matches('"')),
                    Some(_) => other_labels.push(pair),
                    None => return err(format!("malformed label {pair:?}")),
                }
            }
            let Some(le) = le else {
                return err("histogram bucket without le label".to_string());
            };
            let key = format!("{base}{{{}}}", other_labels.join(","));
            let count = value as u64;
            if le == "+Inf" {
                inf_buckets.insert(key, count);
            } else {
                let bound = parse_prom_value(le)
                    .ok_or_else(|| format!("line {}: bad le {le:?}", ln + 1))?;
                buckets.entry(key).or_default().push((bound, count));
            }
        } else if kind == "histogram" && name.ends_with("_count") {
            let key = format!("{base}{{{labels}}}");
            counts.insert(key, value as u64);
        }
    }

    for (key, series) in &buckets {
        let mut last_bound = f64::NEG_INFINITY;
        let mut last_count = 0u64;
        for &(bound, count) in series {
            if bound <= last_bound {
                return Err(format!("{key}: bucket bounds not increasing at le={bound}"));
            }
            if count < last_count {
                return Err(format!(
                    "{key}: bucket counts not monotone at le={bound} ({count} < {last_count})"
                ));
            }
            last_bound = bound;
            last_count = count;
        }
        let Some(&inf) = inf_buckets.get(key) else {
            return Err(format!("{key}: histogram without a +Inf bucket"));
        };
        if inf < last_count {
            return Err(format!(
                "{key}: +Inf bucket below the largest finite bucket"
            ));
        }
        if let Some(&count) = counts.get(key) {
            if count != inf {
                return Err(format!("{key}: _count {count} != +Inf bucket {inf}"));
            }
        }
    }
    for name in typed.keys() {
        if !helped.contains_key(name) {
            return Err(format!("{name}: TYPE without HELP"));
        }
    }
    Ok(stats)
}

/// Splits a label body on commas that are outside quoted values.
fn split_labels(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut prev_backslash = false;
    for (i, c) in labels.char_indices() {
        match c {
            '"' if !prev_backslash => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                if i > start {
                    out.push(&labels[start..i]);
                }
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

fn parse_prom_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_add("serve.http.requests", 10);
        r.counter_add("serve.topk.engine.ann", 3);
        r.counter_add("serve.topk.engine.exact", 7);
        r.counter_add("serve.http.status.2xx", 9);
        r.counter_add("serve.route.topk", 5);
        r.gauge_set("serve.in_flight", 2.0);
        for v in [0.4, 0.9, 3.0, 120.0] {
            r.histogram_record("serve.request.ms", v);
        }
        r.histogram_record("span.refine.secs", 0.02);
        r
    }

    #[test]
    fn render_produces_valid_exposition() {
        let text = render(&sample_registry().snapshot());
        let stats = validate_exposition(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(stats.families >= 6, "{stats:?}\n{text}");
        assert!(text.contains("# TYPE galign_serve_http_requests_total counter"));
        assert!(text.contains("galign_serve_topk_engine_requests_total{engine=\"ann\"} 3"));
        assert!(text.contains("galign_serve_topk_engine_requests_total{engine=\"exact\"} 7"));
        assert!(text.contains("galign_serve_http_responses_total{status=\"2xx\"} 9"));
        assert!(text.contains("galign_serve_requests_total{route=\"topk\"} 5"));
        assert!(text.contains("# TYPE galign_serve_in_flight gauge"));
        assert!(text.contains("# TYPE galign_serve_request_ms histogram"));
        assert!(text.contains("galign_serve_request_ms_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("galign_serve_request_ms_count 4"));
        assert!(text.contains("galign_span_seconds_bucket{span=\"refine\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn bucket_counts_are_cumulative_and_monotone() {
        let r = Registry::new();
        for v in [0.5, 1.5, 1.5, 900.0, 1e9] {
            r.histogram_record("lat.ms", v);
        }
        let text = render(&r.snapshot());
        validate_exposition(&text).unwrap();
        // The +Inf bucket carries every sample, including the 1e9 outlier
        // beyond the largest finite bound.
        assert!(
            text.contains("galign_lat_ms_bucket{le=\"+Inf\"} 5"),
            "{text}"
        );
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "{line}");
            last = count;
        }
    }

    #[test]
    fn one_type_line_per_labeled_family() {
        let text = render(&sample_registry().snapshot());
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE galign_serve_topk_engine_requests_total"))
            .collect();
        assert_eq!(type_lines.len(), 1, "{type_lines:?}");
    }

    #[test]
    fn families_with_window_count_mismatch_still_validate() {
        // A histogram whose sample window wrapped: lifetime count exceeds
        // the window, buckets stay lifetime-cumulative and consistent.
        let r = Registry::new();
        for i in 0..10_000 {
            r.histogram_record("big.ms", (i % 100) as f64);
        }
        let text = render(&r.snapshot());
        validate_exposition(&text).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            text.contains("galign_big_ms_bucket{le=\"+Inf\"} 10000"),
            "{text}"
        );
        assert!(text.contains("galign_big_ms_count 10000"));
    }

    #[test]
    fn validator_rejects_malformed_bodies() {
        for (body, needle) in [
            ("galign_x_total 1\n", "undeclared"),
            (
                "# HELP m h\n# TYPE m counter\nm 1\nm 1\n",
                "duplicate series",
            ),
            ("# TYPE m counter\nm 1\n", "TYPE before HELP"),
            (
                "# HELP m h\n# TYPE m counter\n# TYPE m counter\n",
                "duplicate TYPE",
            ),
            ("# HELP m h\n# TYPE m counter\nm notanumber\n", "bad value"),
            (
                "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\n",
                "not monotone",
            ),
            (
                "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 2\n",
                "+Inf",
            ),
            (
                "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 2\nm_bucket{le=\"+Inf\"} 4\nm_count 3\n",
                "_count",
            ),
        ] {
            let err = validate_exposition(body).unwrap_err();
            assert!(
                err.contains(needle),
                "body {body:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn sanitize_and_labels() {
        assert_eq!(sanitize("a.b-c"), "galign_a_b_c");
        assert_eq!(
            family_of("serve.topk.engine.ann", true).1,
            Some(("engine".to_string(), "ann".to_string()))
        );
        // A dotted suffix does not label-fold (it is not a leaf value).
        assert!(family_of("serve.topk.engine.ann.extra", true).1.is_none());
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
    }
}
