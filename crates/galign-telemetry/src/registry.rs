//! The metrics registry: monotonic counters, last-value gauges and
//! sample-keeping histograms, all keyed by dotted string names
//! (`matrix.gemm.flops`, `train.loss`, `span.embedding.secs`).
//!
//! A [`Registry`] is plain data behind mutexes — the zero-cost-when-disabled
//! guarantee lives one level up (callers check [`crate::metrics_enabled`]
//! before touching the global registry at all).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Aggregate description of one histogram's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Lifetime cumulative-bucket view of one histogram, as Prometheus wants
/// it: per-bucket counts over the fixed [`BUCKET_BOUNDS`] bounds plus a
/// lifetime sum and count. Unlike [`HistogramSummary`] (which describes
/// the bounded sample window), buckets never lose precision to window
/// wraparound — they are incremented at record time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramBuckets {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts, same length as `bounds`.
    /// Samples above the largest bound only appear in `count` (the
    /// implicit `+Inf` bucket).
    pub counts: Vec<u64>,
    /// Lifetime sum of all recorded samples.
    pub sum: f64,
    /// Lifetime number of recorded samples.
    pub count: u64,
}

/// Point-in-time copy of every metric in a registry, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last value set.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary statistics.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Histogram name → lifetime cumulative buckets (Prometheus view).
    pub buckets: Vec<(String, HistogramBuckets)>,
}

impl MetricsSnapshot {
    /// True when no metric of any kind has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a JSON object string (no trailing newline):
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"count":..}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", crate::sink::escape_json(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                crate::sink::escape_json(name),
                crate::sink::json_f64(*v)
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                crate::sink::escape_json(name),
                h.count,
                crate::sink::json_f64(h.min),
                crate::sink::json_f64(h.max),
                crate::sink::json_f64(h.mean),
                crate::sink::json_f64(h.p50),
                crate::sink::json_f64(h.p90),
                crate::sink::json_f64(h.p99),
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Cap on retained samples per histogram.
///
/// Batch pipeline runs record a few thousand samples at most, but a
/// long-running `galign serve` process records one latency sample per
/// request and an unbounded `Vec` would grow without limit. Each histogram
/// therefore keeps a sliding window of the most recent samples (ring
/// buffer) plus a lifetime count; summaries describe the window while
/// `count` stays lifetime-accurate.
const MAX_HISTOGRAM_SAMPLES: usize = 8192;

/// Cap on distinct series names per metric kind.
///
/// Every metric name is a label in disguise (engine, route, status class,
/// span name), and a scrape copies the whole map — so the name set must be
/// bounded by *code*, never by traffic. All in-tree names are static
/// strings from a small fixed vocabulary; this cap is the enforcement
/// backstop for a bug that interpolates per-request data (node ids, trace
/// ids) into a metric name. Past the cap, new names are dropped and
/// counted in [`Registry::dropped_series`] instead of allocating.
pub const MAX_SERIES: usize = 512;

/// Upper bounds for the fixed exponential bucket layout shared by every
/// histogram: a 1–2.5–5 ladder from 1µs to 1000 (covering both
/// seconds-scale span durations and µs/ms-scale latencies). Samples above
/// the last bound land only in the implicit `+Inf` bucket.
pub const BUCKET_BOUNDS: [f64; 28] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
];

/// One histogram: a bounded ring of recent samples (for percentiles) plus
/// lifetime bucket counts and sum (for Prometheus exposition).
#[derive(Debug, Default)]
struct Histogram {
    total: u64,
    sum: f64,
    bucket_counts: Vec<u64>,
    samples: Vec<f64>,
    head: usize,
}

impl Histogram {
    fn record(&mut self, value: f64) {
        self.total += 1;
        self.sum += value;
        if self.bucket_counts.is_empty() {
            self.bucket_counts = vec![0; BUCKET_BOUNDS.len()];
        }
        if let Some(i) = BUCKET_BOUNDS.iter().position(|&b| value <= b) {
            self.bucket_counts[i] += 1;
        }
        if self.samples.len() < MAX_HISTOGRAM_SAMPLES {
            self.samples.push(value);
        } else {
            self.samples[self.head] = value;
            self.head = (self.head + 1) % MAX_HISTOGRAM_SAMPLES;
        }
    }

    fn buckets(&self) -> HistogramBuckets {
        HistogramBuckets {
            bounds: BUCKET_BOUNDS.to_vec(),
            counts: if self.bucket_counts.is_empty() {
                vec![0; BUCKET_BOUNDS.len()]
            } else {
                self.bucket_counts.clone()
            },
            sum: self.sum,
            count: self.total,
        }
    }
}

/// A metrics registry. The crate hosts one global instance (see
/// [`crate::counter_add`] and friends); tests may build their own.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    dropped_series: AtomicU64,
}

impl Registry {
    /// Creates an empty registry (usable in `static` position).
    pub const fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            dropped_series: AtomicU64::new(0),
        }
    }

    /// Number of metric updates dropped because a map was at
    /// [`MAX_SERIES`] and the name was new. Nonzero means some caller is
    /// interpolating unbounded data into metric names — a bug.
    pub fn dropped_series(&self) -> u64 {
        self.dropped_series.load(Ordering::Relaxed)
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock().expect("counter lock");
        if let Some(v) = c.get_mut(name) {
            *v = v.saturating_add(delta);
        } else if c.len() < MAX_SERIES {
            c.insert(name.to_string(), delta);
        } else {
            self.dropped_series.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current value of the named counter (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("counter lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut g = self.gauges.lock().expect("gauge lock");
        if let Some(v) = g.get_mut(name) {
            *v = value;
        } else if g.len() < MAX_SERIES {
            g.insert(name.to_string(), value);
        } else {
            self.dropped_series.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Last value set on the named gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.lock().expect("gauge lock").get(name).copied()
    }

    /// Records one sample into the named histogram. Retention is bounded:
    /// only the most recent `MAX_HISTOGRAM_SAMPLES` samples back the
    /// percentiles, so recording is safe on unbounded serving workloads.
    pub fn histogram_record(&self, name: &str, value: f64) {
        let mut h = self.histograms.lock().expect("histogram lock");
        if let Some(hist) = h.get_mut(name) {
            hist.record(value);
        } else if h.len() < MAX_SERIES {
            h.entry(name.to_string()).or_default().record(value);
        } else {
            self.dropped_series.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Summary of the named histogram (`None` when empty or unknown).
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms
            .lock()
            .expect("histogram lock")
            .get(name)
            .and_then(summarize)
    }

    /// Copies every metric out of the registry. When any updates were
    /// dropped by the [`MAX_SERIES`] cap, a synthetic
    /// `telemetry.series_dropped` counter makes that visible on scrapes.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .expect("counter lock")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let dropped = self.dropped_series();
        if dropped > 0 {
            let name = "telemetry.series_dropped".to_string();
            let at = counters
                .binary_search_by(|(k, _)| k.cmp(&name))
                .unwrap_or_else(|i| i);
            counters.insert(at, (name, dropped));
        }
        let gauges = self
            .gauges
            .lock()
            .expect("gauge lock")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let (histograms, buckets) = {
            let h = self.histograms.lock().expect("histogram lock");
            let summaries = h
                .iter()
                .filter_map(|(k, h)| summarize(h).map(|s| (k.clone(), s)))
                .collect();
            let buckets = h
                .iter()
                .filter(|(_, h)| h.total > 0)
                .map(|(k, h)| (k.clone(), h.buckets()))
                .collect();
            (summaries, buckets)
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            buckets,
        }
    }

    /// Clears every counter, gauge and histogram.
    pub fn reset(&self) {
        self.counters.lock().expect("counter lock").clear();
        self.gauges.lock().expect("gauge lock").clear();
        self.histograms.lock().expect("histogram lock").clear();
        self.dropped_series.store(0, Ordering::Relaxed);
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(h: &Histogram) -> Option<HistogramSummary> {
    if h.samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = h.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let sum: f64 = sorted.iter().sum();
    Some(HistogramSummary {
        count: h.total as usize,
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        mean: sum / sorted.len() as f64,
        p50: percentile(&sorted, 50.0),
        p90: percentile(&sorted, 90.0),
        p99: percentile(&sorted, 99.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_monotonically() {
        let r = Registry::new();
        assert_eq!(r.counter_value("gemm.calls"), 0);
        let mut last = 0;
        for i in 1..=50u64 {
            r.counter_add("gemm.calls", i);
            let now = r.counter_value("gemm.calls");
            assert!(now > last, "counter must be monotonic");
            last = now;
        }
        assert_eq!(last, (1..=50u64).sum::<u64>());
        // Saturates instead of wrapping.
        r.counter_add("gemm.calls", u64::MAX);
        assert_eq!(r.counter_value("gemm.calls"), u64::MAX);
    }

    #[test]
    fn gauges_keep_last_value() {
        let r = Registry::new();
        assert_eq!(r.gauge_value("loss"), None);
        r.gauge_set("loss", 3.5);
        r.gauge_set("loss", 1.25);
        assert_eq!(r.gauge_value("loss"), Some(1.25));
    }

    #[test]
    fn histogram_percentiles() {
        let r = Registry::new();
        assert!(r.histogram_summary("lat").is_none());
        // 1..=100 in shuffled-ish order; percentiles are exact ranks.
        for v in (1..=100).rev() {
            r.histogram_record("lat", v as f64);
        }
        let h = r.histogram_summary("lat").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-12);
        assert_eq!(h.p50, 51.0); // nearest-rank of 50% over 0..=99 → index 50
        assert_eq!(h.p90, 90.0);
        assert_eq!(h.p99, 99.0);
    }

    #[test]
    fn histogram_retention_is_bounded() {
        let r = Registry::new();
        // Overfill by 3x: memory stays capped, the lifetime count does not,
        // and percentiles describe the most recent window.
        let n = 3 * MAX_HISTOGRAM_SAMPLES;
        for i in 0..n {
            r.histogram_record("lat", i as f64);
        }
        let h = r.histogram_summary("lat").unwrap();
        assert_eq!(h.count, n);
        // Window = the last MAX_HISTOGRAM_SAMPLES values recorded.
        assert_eq!(h.min, (n - MAX_HISTOGRAM_SAMPLES) as f64);
        assert_eq!(h.max, (n - 1) as f64);
        assert!(h.p50 >= h.min && h.p50 <= h.max);
    }

    #[test]
    fn snapshot_and_reset() {
        let r = Registry::new();
        r.counter_add("a.calls", 2);
        r.gauge_set("b.val", -1.5);
        r.histogram_record("c.secs", 0.25);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a.calls".to_string(), 2)]);
        assert_eq!(snap.gauges, vec![("b.val".to_string(), -1.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert!(!snap.is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.counter_add("gemm.flops", 1000);
        r.gauge_set("loss", 0.5);
        r.histogram_record("secs", 2.0);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"gemm.flops\":1000"));
        assert!(json.contains("\"loss\":0.5"));
        assert!(json.contains("\"count\":1"));
        // Non-finite gauges serialise as null, keeping the JSON valid.
        r.gauge_set("bad", f64::NAN);
        assert!(r.snapshot().to_json().contains("\"bad\":null"));
    }

    #[test]
    fn percentiles_exact_after_wraparound() {
        let r = Registry::new();
        // Overfill by 3x with a monotone sequence; after wraparound the
        // window holds exactly the last MAX_HISTOGRAM_SAMPLES values, so
        // nearest-rank percentiles have closed-form expected values.
        let n = 3 * MAX_HISTOGRAM_SAMPLES + 17; // deliberately not a multiple
        for i in 0..n {
            r.histogram_record("lat", i as f64);
        }
        let h = r.histogram_summary("lat").unwrap();
        let lo = (n - MAX_HISTOGRAM_SAMPLES) as f64;
        let m = MAX_HISTOGRAM_SAMPLES as f64;
        assert_eq!(h.count, n);
        assert_eq!(h.min, lo);
        assert_eq!(h.max, (n - 1) as f64);
        // Window is lo..lo+m with unit spacing: nearest-rank percentile q
        // is lo + round(q/100 * (m-1)).
        for (q, got) in [(50.0, h.p50), (90.0, h.p90), (99.0, h.p99)] {
            let want = lo + (q / 100.0 * (m - 1.0)).round();
            assert_eq!(got, want, "p{q} after wraparound");
        }
        // Buckets are lifetime-accurate regardless of the window: every
        // one of the n samples landed somewhere (here all above the last
        // bound except 0..=1000).
        let snap = r.snapshot();
        let (_, b) = &snap.buckets[0];
        assert_eq!(b.count, n as u64);
        let finite: u64 = b.counts.iter().sum();
        assert_eq!(finite, 1001); // samples 0.0..=1000.0 fit a finite bucket
        assert_eq!(b.sum, (0..n).sum::<usize>() as f64);
    }

    #[test]
    fn bucket_counts_follow_bounds() {
        let r = Registry::new();
        for v in [0.5e-6, 1e-6, 2e-6, 999.0, 5e9] {
            r.histogram_record("lat", v);
        }
        let snap = r.snapshot();
        let (name, b) = &snap.buckets[0];
        assert_eq!(name, "lat");
        assert_eq!(b.bounds.len(), BUCKET_BOUNDS.len());
        assert_eq!(b.counts[0], 2); // 0.5e-6 and 1e-6 both <= 1e-6
        assert_eq!(b.counts[1], 1); // 2e-6 <= 2.5e-6
        assert_eq!(*b.counts.last().unwrap(), 1); // 999 <= 1000
        assert_eq!(b.count, 5); // 5e9 only in the implicit +Inf bucket
        let finite: u64 = b.counts.iter().sum();
        assert_eq!(finite, 4);
    }

    #[test]
    fn series_cardinality_is_bounded() {
        let r = Registry::new();
        // Simulate a bug interpolating per-request ids into metric names.
        for i in 0..(2 * MAX_SERIES) {
            r.counter_add(&format!("bad.trace.{i}"), 1);
            r.gauge_set(&format!("bad.gauge.{i}"), i as f64);
            r.histogram_record(&format!("bad.hist.{i}"), i as f64);
        }
        let snap = r.snapshot();
        assert!(snap.counters.len() <= MAX_SERIES + 1); // + synthetic dropped counter
        assert!(snap.gauges.len() <= MAX_SERIES);
        assert!(snap.histograms.len() <= MAX_SERIES);
        assert_eq!(r.dropped_series(), 3 * MAX_SERIES as u64);
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k == "telemetry.series_dropped" && *v == 3 * MAX_SERIES as u64));
        // Existing names keep updating at the cap.
        r.counter_add("bad.trace.0", 5);
        assert_eq!(r.counter_value("bad.trace.0"), 6);
        r.reset();
        assert_eq!(r.dropped_series(), 0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 100.0), 2.0);
    }
}
