//! The metrics registry: monotonic counters, last-value gauges and
//! sample-keeping histograms, all keyed by dotted string names
//! (`matrix.gemm.flops`, `train.loss`, `span.embedding.secs`).
//!
//! A [`Registry`] is plain data behind mutexes — the zero-cost-when-disabled
//! guarantee lives one level up (callers check [`crate::metrics_enabled`]
//! before touching the global registry at all).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregate description of one histogram's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Point-in-time copy of every metric in a registry, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last value set.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary statistics.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when no metric of any kind has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a JSON object string (no trailing newline):
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"count":..}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", crate::sink::escape_json(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                crate::sink::escape_json(name),
                crate::sink::json_f64(*v)
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                crate::sink::escape_json(name),
                h.count,
                crate::sink::json_f64(h.min),
                crate::sink::json_f64(h.max),
                crate::sink::json_f64(h.mean),
                crate::sink::json_f64(h.p50),
                crate::sink::json_f64(h.p90),
                crate::sink::json_f64(h.p99),
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Cap on retained samples per histogram.
///
/// Batch pipeline runs record a few thousand samples at most, but a
/// long-running `galign serve` process records one latency sample per
/// request and an unbounded `Vec` would grow without limit. Each histogram
/// therefore keeps a sliding window of the most recent samples (ring
/// buffer) plus a lifetime count; summaries describe the window while
/// `count` stays lifetime-accurate.
const MAX_HISTOGRAM_SAMPLES: usize = 8192;

/// One histogram: a bounded ring of recent samples plus a lifetime count.
#[derive(Debug, Default)]
struct Histogram {
    total: u64,
    samples: Vec<f64>,
    head: usize,
}

impl Histogram {
    fn record(&mut self, value: f64) {
        self.total += 1;
        if self.samples.len() < MAX_HISTOGRAM_SAMPLES {
            self.samples.push(value);
        } else {
            self.samples[self.head] = value;
            self.head = (self.head + 1) % MAX_HISTOGRAM_SAMPLES;
        }
    }
}

/// A metrics registry. The crate hosts one global instance (see
/// [`crate::counter_add`] and friends); tests may build their own.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Creates an empty registry (usable in `static` position).
    pub const fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock().expect("counter lock");
        match c.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                c.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of the named counter (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("counter lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauges
            .lock()
            .expect("gauge lock")
            .insert(name.to_string(), value);
    }

    /// Last value set on the named gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.lock().expect("gauge lock").get(name).copied()
    }

    /// Records one sample into the named histogram. Retention is bounded:
    /// only the most recent [`MAX_HISTOGRAM_SAMPLES`] samples back the
    /// percentiles, so recording is safe on unbounded serving workloads.
    pub fn histogram_record(&self, name: &str, value: f64) {
        self.histograms
            .lock()
            .expect("histogram lock")
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Summary of the named histogram (`None` when empty or unknown).
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms
            .lock()
            .expect("histogram lock")
            .get(name)
            .and_then(summarize)
    }

    /// Copies every metric out of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter lock")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge lock")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram lock")
            .iter()
            .filter_map(|(k, h)| summarize(h).map(|s| (k.clone(), s)))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Clears every counter, gauge and histogram.
    pub fn reset(&self) {
        self.counters.lock().expect("counter lock").clear();
        self.gauges.lock().expect("gauge lock").clear();
        self.histograms.lock().expect("histogram lock").clear();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(h: &Histogram) -> Option<HistogramSummary> {
    if h.samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = h.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let sum: f64 = sorted.iter().sum();
    Some(HistogramSummary {
        count: h.total as usize,
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        mean: sum / sorted.len() as f64,
        p50: percentile(&sorted, 50.0),
        p90: percentile(&sorted, 90.0),
        p99: percentile(&sorted, 99.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_monotonically() {
        let r = Registry::new();
        assert_eq!(r.counter_value("gemm.calls"), 0);
        let mut last = 0;
        for i in 1..=50u64 {
            r.counter_add("gemm.calls", i);
            let now = r.counter_value("gemm.calls");
            assert!(now > last, "counter must be monotonic");
            last = now;
        }
        assert_eq!(last, (1..=50u64).sum::<u64>());
        // Saturates instead of wrapping.
        r.counter_add("gemm.calls", u64::MAX);
        assert_eq!(r.counter_value("gemm.calls"), u64::MAX);
    }

    #[test]
    fn gauges_keep_last_value() {
        let r = Registry::new();
        assert_eq!(r.gauge_value("loss"), None);
        r.gauge_set("loss", 3.5);
        r.gauge_set("loss", 1.25);
        assert_eq!(r.gauge_value("loss"), Some(1.25));
    }

    #[test]
    fn histogram_percentiles() {
        let r = Registry::new();
        assert!(r.histogram_summary("lat").is_none());
        // 1..=100 in shuffled-ish order; percentiles are exact ranks.
        for v in (1..=100).rev() {
            r.histogram_record("lat", v as f64);
        }
        let h = r.histogram_summary("lat").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-12);
        assert_eq!(h.p50, 51.0); // nearest-rank of 50% over 0..=99 → index 50
        assert_eq!(h.p90, 90.0);
        assert_eq!(h.p99, 99.0);
    }

    #[test]
    fn histogram_retention_is_bounded() {
        let r = Registry::new();
        // Overfill by 3x: memory stays capped, the lifetime count does not,
        // and percentiles describe the most recent window.
        let n = 3 * MAX_HISTOGRAM_SAMPLES;
        for i in 0..n {
            r.histogram_record("lat", i as f64);
        }
        let h = r.histogram_summary("lat").unwrap();
        assert_eq!(h.count, n);
        // Window = the last MAX_HISTOGRAM_SAMPLES values recorded.
        assert_eq!(h.min, (n - MAX_HISTOGRAM_SAMPLES) as f64);
        assert_eq!(h.max, (n - 1) as f64);
        assert!(h.p50 >= h.min && h.p50 <= h.max);
    }

    #[test]
    fn snapshot_and_reset() {
        let r = Registry::new();
        r.counter_add("a.calls", 2);
        r.gauge_set("b.val", -1.5);
        r.histogram_record("c.secs", 0.25);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a.calls".to_string(), 2)]);
        assert_eq!(snap.gauges, vec![("b.val".to_string(), -1.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert!(!snap.is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.counter_add("gemm.flops", 1000);
        r.gauge_set("loss", 0.5);
        r.histogram_record("secs", 2.0);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"gemm.flops\":1000"));
        assert!(json.contains("\"loss\":0.5"));
        assert!(json.contains("\"count\":1"));
        // Non-finite gauges serialise as null, keeping the JSON valid.
        r.gauge_set("bad", f64::NAN);
        assert!(r.snapshot().to_json().contains("\"bad\":null"));
    }

    #[test]
    fn percentile_edge_cases() {
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 100.0), 2.0);
    }
}
