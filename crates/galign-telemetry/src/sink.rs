//! Output sinks: verbosity levels for the human-readable stderr logger and
//! helpers for the machine-readable JSONL exporter.
//!
//! The JSONL format is one JSON object per line, four record types:
//!
//! ```text
//! {"type":"event","seq":3,"ms":12.5,"level":"info","target":"isorank","thread":1,"message":"..."}
//! {"type":"span","seq":9,"ms":80.1,"name":"refine","path":"pipeline/refine","depth":1,"thread":1,"fields":{"iter":"3"},"secs":0.123}
//! {"type":"gauge","seq":5,"ms":40.0,"name":"train.loss","value":0.51}
//! {"type":"snapshot","seq":20,"ms":95.0,"metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
//! ```
//!
//! `seq` is a process-global ordering counter, `ms` is milliseconds since
//! the first telemetry call, `thread` a numeric thread id. Span records are
//! written on close, so a parent span appears *after* its children; consumers
//! reconstruct nesting from `path`/`depth`.

use std::io::Write;

/// Stderr verbosity. Records are printed when their level is at or below
/// the configured level; `Quiet` suppresses everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No stderr output at all.
    Quiet = 0,
    /// High-level progress (stage completions, result summaries).
    Info = 1,
    /// Per-iteration/per-epoch diagnostics and span timings.
    Debug = 2,
    /// Everything, including inner-loop chatter.
    Trace = 3,
}

impl Level {
    /// Lower-case name used in JSONL records and stderr prefixes.
    pub fn name(self) -> &'static str {
        match self {
            Level::Quiet => "quiet",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Quiet,
            1 => Level::Info,
            2 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders span fields as a JSON object fragment: `{"iter":"3","k":"2"}`.
pub(crate) fn fields_json(fields: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
    }
    out.push('}');
    out
}

/// Renders span fields for the stderr logger: ` iter=3 k=2` (empty when
/// there are no fields).
pub(crate) fn fields_human(fields: &[(&'static str, String)]) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

/// Writes one line to stderr, ignoring errors (a closed stderr must never
/// break the computation being observed).
pub(crate) fn stderr_line(line: &str) {
    let _ = writeln!(std::io::stderr().lock(), "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_names() {
        assert!(Level::Quiet < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Info.name(), "info");
        assert_eq!(Level::from_u8(0), Level::Quiet);
        assert_eq!(Level::from_u8(2), Level::Debug);
        assert_eq!(Level::from_u8(200), Level::Trace);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_floats() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn field_rendering() {
        let fields = vec![("iter", "3".to_string()), ("name", "a\"b".to_string())];
        assert_eq!(fields_json(&fields), "{\"iter\":\"3\",\"name\":\"a\\\"b\"}");
        assert_eq!(fields_human(&fields), " iter=3 name=a\"b");
        assert_eq!(fields_json(&[]), "{}");
        assert_eq!(fields_human(&[]), "");
    }
}
