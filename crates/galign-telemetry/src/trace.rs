//! Span tracer: nested, named scopes with wall-clock duration, thread id
//! and depth. Construct spans with the [`crate::span!`] macro; a span is
//! emitted to the active sinks when it closes (explicit [`Span::finish`] or
//! drop).

use crate::sink::{fields_human, fields_json, stderr_line, Level};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Pushes a span name onto this thread's stack; returns `(depth, path)`.
fn push(name: &'static str) -> (usize, String) {
    SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        (s.len() - 1, s.join("/"))
    })
}

/// Pops back down to `depth` (tolerates out-of-order drops by truncating).
fn pop(depth: usize) {
    SPAN_STACK.with(|s| s.borrow_mut().truncate(depth));
}

/// Numeric id of the current thread (parsed from its debug representation).
pub(crate) fn thread_id() -> u64 {
    let repr = format!("{:?}", std::thread::current().id());
    repr.chars()
        .filter(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// A timed scope. Always measures wall-clock (so callers can rely on
/// [`Span::finish`] for timings even with telemetry disabled); participates
/// in the span stack and emits to sinks only when tracing is active.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    active: bool,
    depth: usize,
    path: String,
    closed: bool,
}

impl Span {
    /// Opens a span. Prefer the [`crate::span!`] macro, which skips field
    /// formatting entirely when tracing is disabled.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, String)>) -> Span {
        crate::init_clock();
        let active = crate::spans_enabled();
        let (depth, path) = if active {
            push(name)
        } else {
            (0, String::new())
        };
        Span {
            name,
            fields,
            start: Instant::now(),
            active,
            depth,
            path,
            closed: false,
        }
    }

    /// Span name as given at creation.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Seconds elapsed since the span was opened.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Closes the span now and returns its duration in seconds.
    pub fn finish(mut self) -> f64 {
        let secs = self.elapsed_secs();
        self.close(secs);
        secs
    }

    fn close(&mut self, secs: f64) {
        if self.closed {
            return;
        }
        self.closed = true;
        if !self.active {
            return;
        }
        pop(self.depth);
        if crate::metrics_enabled() {
            crate::global_registry().histogram_record(&format!("span.{}.secs", self.name), secs);
        }
        crate::write_jsonl_record(|seq, ms| {
            format!(
                "{{\"type\":\"span\",\"seq\":{seq},\"ms\":{},\"name\":\"{}\",\"path\":\"{}\",\"depth\":{},\"thread\":{},\"fields\":{},\"secs\":{}}}",
                crate::sink::json_f64(ms),
                crate::sink::escape_json(self.name),
                crate::sink::escape_json(&self.path),
                self.depth,
                thread_id(),
                fields_json(&self.fields),
                crate::sink::json_f64(secs),
            )
        });
        if crate::stderr_level() >= Level::Debug {
            stderr_line(&format!(
                "[debug] span {}{} took {secs:.4}s",
                self.path,
                fields_human(&self.fields)
            ));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.closed {
            let secs = self.elapsed_secs();
            self.close(secs);
        }
    }
}
