//! Span tracer: nested, named scopes with wall-clock duration, thread id
//! and depth. Construct spans with the [`crate::span!`] macro; a span is
//! emitted to the active sinks when it closes (explicit [`Span::finish`] or
//! drop).

use crate::sink::{fields_human, fields_json, stderr_line, Level};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Pushes a span name onto this thread's stack; returns `(depth, path)`.
fn push(name: &'static str) -> (usize, String) {
    SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        (s.len() - 1, s.join("/"))
    })
}

/// Pops back down to `depth` (tolerates out-of-order drops by truncating).
fn pop(depth: usize) {
    SPAN_STACK.with(|s| s.borrow_mut().truncate(depth));
}

/// Source of process-unique thread ids; 0 is never handed out so a raw
/// `Cell::new(0)` unambiguously means "not yet assigned".
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// Stable numeric id of the current thread: assigned from a process-wide
/// counter on first use and cached in a thread-local. Unlike
/// `std::thread::ThreadId` (whose `Debug` output this used to parse —
/// brittle across rustc versions), the value is guaranteed small, dense
/// and stable for the thread's lifetime.
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        let v = id.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        id.set(v);
        v
    })
}

/// A timed scope. Always measures wall-clock (so callers can rely on
/// [`Span::finish`] for timings even with telemetry disabled); participates
/// in the span stack and emits to sinks only when tracing is active.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    active: bool,
    depth: usize,
    path: String,
    closed: bool,
}

impl Span {
    /// Opens a span. Prefer the [`crate::span!`] macro, which skips field
    /// formatting entirely when tracing is disabled.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, String)>) -> Span {
        crate::init_clock();
        let active = crate::spans_enabled();
        let (depth, path) = if active {
            push(name)
        } else {
            (0, String::new())
        };
        Span {
            name,
            fields,
            start: Instant::now(),
            active,
            depth,
            path,
            closed: false,
        }
    }

    /// Span name as given at creation.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Seconds elapsed since the span was opened.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Closes the span now and returns its duration in seconds.
    pub fn finish(mut self) -> f64 {
        let secs = self.elapsed_secs();
        self.close(secs);
        secs
    }

    fn close(&mut self, secs: f64) {
        if self.closed {
            return;
        }
        self.closed = true;
        if !self.active {
            return;
        }
        pop(self.depth);
        if crate::metrics_enabled() {
            crate::global_registry().histogram_record(&format!("span.{}.secs", self.name), secs);
        }
        crate::write_jsonl_record(|seq, ms| {
            format!(
                "{{\"type\":\"span\",\"seq\":{seq},\"ms\":{},\"name\":\"{}\",\"path\":\"{}\",\"depth\":{},\"thread\":{},\"fields\":{},\"secs\":{}}}",
                crate::sink::json_f64(ms),
                crate::sink::escape_json(self.name),
                crate::sink::escape_json(&self.path),
                self.depth,
                thread_id(),
                fields_json(&self.fields),
                crate::sink::json_f64(secs),
            )
        });
        if crate::stderr_level() >= Level::Debug {
            stderr_line(&format!(
                "[debug] span {}{} took {secs:.4}s",
                self.path,
                fields_human(&self.fields)
            ));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.closed {
            let secs = self.elapsed_secs();
            self.close(secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_stable_nonzero_and_distinct() {
        let mine = thread_id();
        assert_ne!(mine, 0);
        assert_eq!(thread_id(), mine, "id is cached per thread");
        let others: Vec<u64> = (0..8)
            .map(|_| std::thread::spawn(|| (thread_id(), thread_id())))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                let (a, b) = h.join().unwrap();
                assert_eq!(a, b, "stable within the thread");
                a
            })
            .collect();
        let mut all = others.clone();
        all.push(mine);
        let distinct: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len(), "ids are process-unique: {all:?}");
        assert!(all.iter().all(|&id| id != 0));
    }
}
