//! Dimensionality reduction for the qualitative study (Fig. 8).
//!
//! * [`mod@pca`] — principal component analysis via the symmetric Jacobi
//!   eigensolver of `galign-matrix` (also used to initialise t-SNE).
//! * [`mod@tsne`] — exact t-SNE (perplexity-calibrated Gaussian affinities,
//!   gradient descent with early exaggeration and momentum); the toy study
//!   embeds ~20 points, where exact t-SNE is both fastest and most faithful.
//! * [`mod@svg`] — dependency-free SVG scatter rendering of the layouts.

pub mod pca;
pub mod svg;
pub mod tsne;

pub use pca::pca;
pub use svg::{paired_points, scatter_svg, ScatterPoint};
pub use tsne::{tsne, TsneConfig};
