//! Principal component analysis over the Jacobi eigensolver.

use galign_matrix::eigen::sym_eigen;
use galign_matrix::Dense;

/// Projects the rows of `data` onto the top `k` principal components.
///
/// Returns an `n×k` matrix of component scores (columns ordered by
/// explained variance). When `k` exceeds the data dimensionality the extra
/// columns are zero.
pub fn pca(data: &Dense, k: usize) -> Dense {
    let (n, d) = data.shape();
    if n == 0 || d == 0 || k == 0 {
        return Dense::zeros(n, k);
    }
    // Centre columns.
    let mut centered = data.clone();
    for j in 0..d {
        let mean: f64 = (0..n).map(|i| data.get(i, j)).sum::<f64>() / n as f64;
        for i in 0..n {
            centered.set(i, j, centered.get(i, j) - mean);
        }
    }
    // Covariance (d×d) and its top eigenvectors.
    let cov = centered.gram().scale(1.0 / (n.max(2) - 1) as f64);
    let eig = sym_eigen(&cov, 100).expect("covariance is symmetric");
    let mut proj = Dense::zeros(d, k);
    for c in 0..k.min(d) {
        for r in 0..d {
            proj.set(r, c, eig.vectors.get(r, c));
        }
    }
    centered.matmul(&proj).expect("shapes chain")
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;

    #[test]
    fn recovers_dominant_direction() {
        // Points along the diagonal y = x with tiny orthogonal noise: PC1
        // must capture nearly all variance.
        let mut rng = SeededRng::new(1);
        let data = Dense::from_fn(50, 2, |i, j| {
            let t = i as f64 / 10.0;
            let noise = rng.normal_with(0.0, 0.01);
            if j == 0 {
                t + noise
            } else {
                t - noise
            }
        });
        let p = pca(&data, 2);
        let var1: f64 = p.col(0).iter().map(|v| v * v).sum();
        let var2: f64 = p.col(1).iter().map(|v| v * v).sum();
        assert!(var1 > 100.0 * var2, "var1 {var1}, var2 {var2}");
    }

    #[test]
    fn projection_is_centred() {
        let mut rng = SeededRng::new(2);
        let data = rng.uniform_matrix(30, 5, -3.0, 7.0);
        let p = pca(&data, 3);
        assert_eq!(p.shape(), (30, 3));
        for j in 0..3 {
            let mean: f64 = p.col(j).iter().sum::<f64>() / 30.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pca(&Dense::zeros(0, 3), 2).shape(), (0, 2));
        assert_eq!(pca(&Dense::zeros(4, 0), 2).shape(), (4, 2));
        assert_eq!(pca(&Dense::zeros(4, 3), 0).shape(), (4, 0));
        // k larger than dimensionality: extra columns are zero.
        let mut rng = SeededRng::new(3);
        let p = pca(&rng.uniform_matrix(5, 2, 0.0, 1.0), 4);
        assert_eq!(p.shape(), (5, 4));
        assert!(p.col(3).iter().all(|&v| v == 0.0));
    }
}
