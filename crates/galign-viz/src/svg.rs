//! Minimal SVG scatter-plot writer for embedding layouts.
//!
//! Produces the publication-style panels of Fig. 8 without any plotting
//! dependency: labelled points, anchor pairs in matching colours, source
//! nodes as circles and target nodes as squares.

use galign_matrix::Dense;
use std::fmt::Write as _;

/// One point of a scatter plot.
#[derive(Debug, Clone)]
pub struct ScatterPoint {
    /// X coordinate (layout units; the writer rescales).
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Text label drawn next to the marker.
    pub label: String,
    /// Colour group — points in the same group share a colour (anchor
    /// pairs in Fig. 8).
    pub group: usize,
    /// True for source-network points (circle marker); false for target
    /// (square marker).
    pub is_source: bool,
}

/// Builds the scatter points for a stacked source+target layout, pairing
/// row `i` with row `n + i` (the Fig. 8 convention).
pub fn paired_points(layout: &Dense, labels: &[&str]) -> Vec<ScatterPoint> {
    let n = layout.rows() / 2;
    (0..layout.rows())
        .map(|i| ScatterPoint {
            x: layout.get(i, 0),
            y: layout.get(i, 1),
            label: labels
                .get(i % n.max(1))
                .map_or_else(|| format!("#{}", i % n.max(1)), |s| s.to_string()),
            group: i % n.max(1),
            is_source: i < n,
        })
        .collect()
}

/// Distinct fill colours cycled by group id.
const PALETTE: [&str; 10] = [
    "#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4", "#46f0f0", "#f032e6", "#9a6324",
    "#008080", "#808000",
];

/// Renders a scatter plot as a standalone SVG document.
pub fn scatter_svg(points: &[ScatterPoint], title: &str, width: u32, height: u32) -> String {
    let (w, h) = (width as f64, height as f64);
    let margin = 40.0;
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    if points.is_empty() {
        min_x = 0.0;
        max_x = 1.0;
        min_y = 0.0;
        max_y = 1.0;
    }
    let sx = (max_x - min_x).max(1e-9);
    let sy = (max_y - min_y).max(1e-9);
    let to_px = |x: f64, y: f64| {
        (
            margin + (x - min_x) / sx * (w - 2.0 * margin),
            // SVG y grows downward; flip so the layout reads naturally.
            h - margin - (y - min_y) / sy * (h - 2.0 * margin),
        )
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="100%" height="100%" fill="white"/>
<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
        w / 2.0,
        xml_escape(title)
    );
    for p in points {
        let (px, py) = to_px(p.x, p.y);
        let color = PALETTE[p.group % PALETTE.len()];
        if p.is_source {
            let _ = writeln!(
                svg,
                r#"<circle cx="{px:.1}" cy="{py:.1}" r="5" fill="{color}" stroke="black" stroke-width="0.5"/>"#
            );
        } else {
            let _ = writeln!(
                svg,
                r#"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="{color}" fill-opacity="0.6" stroke="black" stroke-width="0.5"/>"#,
                px - 5.0,
                py - 5.0
            );
        }
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="9">{}</text>"#,
            px + 7.0,
            py + 3.0,
            xml_escape(&p.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Dense {
        Dense::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.9, 1.1],
        ])
        .unwrap()
    }

    #[test]
    fn paired_points_structure() {
        let pts = paired_points(&layout(), &["Alpha", "Beta"]);
        assert_eq!(pts.len(), 4);
        assert!(pts[0].is_source && pts[1].is_source);
        assert!(!pts[2].is_source && !pts[3].is_source);
        // Pair (0, 2) shares group and label.
        assert_eq!(pts[0].group, pts[2].group);
        assert_eq!(pts[0].label, "Alpha");
        assert_eq!(pts[2].label, "Alpha");
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let pts = paired_points(&layout(), &["A & B", "C<D>"]);
        let svg = scatter_svg(&pts, "panel <1>", 400, 300);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 targets
                                                     // Escaping applied.
        assert!(svg.contains("A &amp; B"));
        assert!(svg.contains("panel &lt;1&gt;"));
        assert!(!svg.contains("C<D>"));
    }

    #[test]
    fn empty_points_render() {
        let svg = scatter_svg(&[], "empty", 200, 100);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn coordinates_fit_canvas() {
        let pts = paired_points(&layout(), &["x", "y"]);
        let svg = scatter_svg(&pts, "t", 400, 300);
        for cap in svg.split("cx=\"").skip(1) {
            let v: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=400.0).contains(&v));
        }
    }
}
