//! Exact t-SNE (van der Maaten & Hinton, 2008).
//!
//! The qualitative study (Fig. 8) projects ~20 embedding rows to 2-D; at
//! that size the exact `O(n²)` algorithm with early exaggeration and
//! momentum is the right tool (Barnes–Hut approximations only pay off for
//! thousands of points).

use crate::pca::pca;
use galign_matrix::dense::sq_dist;
use galign_matrix::rng::SeededRng;
use galign_matrix::Dense;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Output dimensionality (2 for plots).
    pub out_dim: usize,
    /// Target perplexity of the Gaussian affinities.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// RNG seed for the PCA-jitter initialisation.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            out_dim: 2,
            perplexity: 5.0,
            iterations: 500,
            // Tuned for the tens-of-points layouts this crate targets;
            // large datasets want 100+ (van der Maaten's default is 100).
            learning_rate: 20.0,
            exaggeration: 4.0,
            momentum: 0.8,
            seed: 0,
        }
    }
}

/// Binary-searches the Gaussian bandwidth of row `i` to match the target
/// perplexity; returns the conditional distribution `p_{j|i}`.
fn conditional_probs(dists: &[f64], i: usize, perplexity: f64) -> Vec<f64> {
    let n = dists.len();
    let target_entropy = perplexity.max(1.0).ln();
    let mut beta = 1.0; // 1 / (2σ²)
    let (mut beta_lo, mut beta_hi) = (0.0f64, f64::INFINITY);
    let mut probs = vec![0.0; n];
    for _ in 0..64 {
        let mut sum = 0.0;
        for j in 0..n {
            probs[j] = if j == i {
                0.0
            } else {
                (-beta * dists[j]).exp()
            };
            sum += probs[j];
        }
        if sum <= 0.0 {
            beta /= 2.0;
            continue;
        }
        let mut entropy = 0.0;
        for p in probs.iter_mut() {
            *p /= sum;
            if *p > 1e-12 {
                entropy -= *p * p.ln();
            }
        }
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_lo = beta;
            beta = if beta_hi.is_finite() {
                (beta + beta_hi) / 2.0
            } else {
                beta * 2.0
            };
        } else {
            beta_hi = beta;
            beta = (beta + beta_lo) / 2.0;
        }
    }
    probs
}

/// Runs exact t-SNE on the rows of `data`, returning an `n×out_dim` layout.
pub fn tsne(data: &Dense, cfg: &TsneConfig) -> Dense {
    let n = data.rows();
    if n == 0 {
        return Dense::zeros(0, cfg.out_dim);
    }
    if n == 1 {
        return Dense::zeros(1, cfg.out_dim);
    }
    // Symmetrised joint affinities P.
    let mut p = Dense::zeros(n, n);
    for i in 0..n {
        let dists: Vec<f64> = (0..n).map(|j| sq_dist(data.row(i), data.row(j))).collect();
        let cond = conditional_probs(&dists, i, cfg.perplexity.min((n - 1) as f64 / 3.0));
        for j in 0..n {
            p.set(i, j, cond[j]);
        }
    }
    let mut p_sym = Dense::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = ((p.get(i, j) + p.get(j, i)) / (2.0 * n as f64)).max(1e-12);
            if i != j {
                p_sym.set(i, j, v);
            }
        }
    }

    // PCA + jitter initialisation.
    let mut rng = SeededRng::new(cfg.seed);
    let init = pca(data, cfg.out_dim);
    let scale = init.frobenius_norm().max(1e-9);
    let mut y = init.scale(1e-2 / scale);
    for v in y.as_mut_slice().iter_mut() {
        *v += rng.normal_with(0.0, 1e-4);
    }
    let mut velocity = Dense::zeros(n, cfg.out_dim);

    let exag_until = cfg.iterations / 4;
    for it in 0..cfg.iterations {
        let exag = if it < exag_until {
            cfg.exaggeration
        } else {
            1.0
        };
        // Student-t affinities Q (unnormalised numerators cached).
        let mut num = Dense::zeros(n, n);
        let mut z = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = 1.0 / (1.0 + sq_dist(y.row(i), y.row(j)));
                num.set(i, j, q);
                z += q;
            }
        }
        let z = z.max(1e-12);
        // Gradient: 4 Σ_j (exag·p_ij − q_ij) q̃_ij (y_i − y_j).
        let mut grad = Dense::zeros(n, cfg.out_dim);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = num.get(i, j) / z;
                let mult = 4.0 * (exag * p_sym.get(i, j) - q) * num.get(i, j);
                for d in 0..cfg.out_dim {
                    let g = grad.get(i, d) + mult * (y.get(i, d) - y.get(j, d));
                    grad.set(i, d, g);
                }
            }
        }
        for idx in 0..n * cfg.out_dim {
            let v =
                cfg.momentum * velocity.as_slice()[idx] - cfg.learning_rate * grad.as_slice()[idx];
            velocity.as_mut_slice()[idx] = v;
            y.as_mut_slice()[idx] += v;
        }
        // Re-centre to keep the layout bounded.
        for d in 0..cfg.out_dim {
            let mean: f64 = (0..n).map(|i| y.get(i, d)).sum::<f64>() / n as f64;
            for i in 0..n {
                y.set(i, d, y.get(i, d) - mean);
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;

    #[test]
    fn conditional_probs_sum_to_one() {
        let dists = vec![0.0, 1.0, 4.0, 9.0, 0.5];
        let p = conditional_probs(&dists, 0, 2.0);
        assert_eq!(p[0], 0.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Closer points get more mass.
        assert!(p[4] > p[1] && p[1] > p[2] && p[2] > p[3]);
    }

    #[test]
    fn separates_two_gaussian_blobs() {
        let mut rng = SeededRng::new(1);
        let n_half = 10;
        let data = Dense::from_fn(2 * n_half, 4, |i, _| {
            let centre = if i < n_half { 0.0 } else { 10.0 };
            centre + rng.normal_with(0.0, 0.3)
        });
        let layout = tsne(
            &data,
            &TsneConfig {
                iterations: 400,
                perplexity: 4.0,
                learning_rate: 20.0,
                ..TsneConfig::default()
            },
        );
        // Mean intra-blob distance must be far below inter-blob distance.
        let d = |a: usize, b: usize| sq_dist(layout.row(a), layout.row(b)).sqrt();
        let intra = (d(0, 1) + d(2, 3) + d(10, 11) + d(12, 13)) / 4.0;
        let inter = (d(0, 10) + d(1, 11) + d(2, 12) + d(3, 13)) / 4.0;
        assert!(
            inter > 2.0 * intra,
            "inter {inter} should dominate intra {intra}"
        );
    }

    #[test]
    fn output_shapes_and_edge_cases() {
        let cfg = TsneConfig::default();
        assert_eq!(tsne(&Dense::zeros(0, 3), &cfg).shape(), (0, 2));
        assert_eq!(tsne(&Dense::zeros(1, 3), &cfg).shape(), (1, 2));
        let mut rng = SeededRng::new(2);
        let data = rng.uniform_matrix(8, 5, -1.0, 1.0);
        let layout = tsne(
            &data,
            &TsneConfig {
                iterations: 50,
                ..cfg
            },
        );
        assert_eq!(layout.shape(), (8, 2));
        assert!(layout.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SeededRng::new(3);
        let data = rng.uniform_matrix(10, 4, -1.0, 1.0);
        let cfg = TsneConfig {
            iterations: 60,
            seed: 5,
            ..TsneConfig::default()
        };
        let a = tsne(&data, &cfg);
        let b = tsne(&data, &cfg);
        assert!(a.approx_eq(&b, 0.0));
    }
}
