//! Alignment instantiation (§VI-A): layer-wise alignment matrices (Eq. 11)
//! fused by layer-importance weights into the aggregated matrix (Eq. 12).
//!
//! The aggregated matrix is exposed as a blocked
//! [`ScoreProvider`] over the shared streaming engine in
//! [`galign_matrix::simblock`]; consumers reduce it block-at-a-time in
//! `O(block · n)` memory, matching the §VI-C space analysis. The full
//! `n₁×n₂` matrix is only materialised through the deprecated
//! [`AlignmentMatrix::materialize`] escape hatch.

use crate::error::{GAlignError, Result};
use galign_gcn::MultiOrderEmbedding;
use galign_matrix::dense::dot;
use galign_matrix::simblock::{self, ScoreProvider, SimPanel};
use galign_matrix::Dense;
use std::ops::Range;

/// Which layers participate in the alignment matrix and with what weight.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSelection {
    /// θ⁽ˡ⁾ for `l = 0..=k`; need not be normalised.
    pub theta: Vec<f64>,
}

impl LayerSelection {
    /// Equal weights `θ⁽ˡ⁾ = 1/(k+1)` over all `k+1` layers — the paper's
    /// default (§VII-A).
    pub fn uniform(num_layers_incl_attrs: usize) -> Self {
        let w = 1.0 / num_layers_incl_attrs.max(1) as f64;
        LayerSelection {
            theta: vec![w; num_layers_incl_attrs],
        }
    }

    /// Only layer `l` participates (the single-order baselines of Fig. 6 /
    /// Table V and the GAlign-3 ablation).
    pub fn single(l: usize, num_layers_incl_attrs: usize) -> Self {
        let mut theta = vec![0.0; num_layers_incl_attrs];
        theta[l] = 1.0;
        LayerSelection { theta }
    }

    /// Explicit weights (Table V's sweep).
    pub fn weighted(theta: Vec<f64>) -> Self {
        LayerSelection { theta }
    }

    /// Number of weighted layers (including the attribute layer 0).
    pub fn len(&self) -> usize {
        self.theta.len()
    }

    /// True when no layers are selected.
    pub fn is_empty(&self) -> bool {
        self.theta.is_empty()
    }
}

/// The aggregated alignment matrix `S = Σ_l θ⁽ˡ⁾ H_s⁽ˡ⁾ H_t⁽ˡ⁾ᵀ`
/// (Eq. 11–12) over row-normalised embeddings.
#[derive(Debug, Clone)]
pub struct AlignmentMatrix {
    source: MultiOrderEmbedding,
    target: MultiOrderEmbedding,
    selection: LayerSelection,
}

impl AlignmentMatrix {
    /// Builds the alignment view. Embeddings are row-L2-normalised here so
    /// every layer contributes cosine similarities (DESIGN.md §4.2).
    ///
    /// # Errors
    /// [`GAlignError::LayerMismatch`] when the two sides disagree on layer
    /// count, [`GAlignError::ThetaLength`] when the selection length does
    /// not match the layer count.
    pub fn new(
        source: &MultiOrderEmbedding,
        target: &MultiOrderEmbedding,
        selection: LayerSelection,
    ) -> Result<Self> {
        if source.layers().len() != target.layers().len() {
            return Err(GAlignError::LayerMismatch {
                source: source.layers().len(),
                target: target.layers().len(),
            });
        }
        if selection.len() != source.layers().len() {
            return Err(GAlignError::ThetaLength {
                got: selection.len(),
                want: source.layers().len(),
            });
        }
        Ok(AlignmentMatrix {
            source: source.normalized(),
            target: target.normalized(),
            selection,
        })
    }

    /// Pre-`GAlignError` shim for [`AlignmentMatrix::new`]; will be removed
    /// next release.
    ///
    /// # Panics
    /// Panics where [`AlignmentMatrix::new`] returns an error.
    #[doc(hidden)]
    pub fn new_or_panic(
        source: &MultiOrderEmbedding,
        target: &MultiOrderEmbedding,
        selection: LayerSelection,
    ) -> Self {
        Self::new(source, target, selection).expect("valid alignment inputs")
    }

    /// Layer weights in use.
    pub fn selection(&self) -> &LayerSelection {
        &self.selection
    }

    /// The shared blocked scoring panel over this alignment's layers.
    /// Shapes were validated in [`AlignmentMatrix::new`], so construction
    /// cannot fail here.
    fn panel(&self) -> SimPanel<'_> {
        SimPanel::new(
            self.source.layers(),
            self.target.layers(),
            &self.selection.theta,
        )
        .expect("alignment shapes validated at construction")
    }

    /// Alignment scores of source `v` at a single layer `l` (Eq. 11,
    /// one row).
    pub fn layer_score_row(&self, l: usize, v: usize) -> Vec<f64> {
        let sv = self.source.layer(l).row(v);
        let t = self.target.layer(l);
        (0..t.rows()).map(|u| dot(sv, t.row(u))).collect()
    }

    /// Materialises the aggregated matrix — `O(n₁ n₂)` memory.
    #[deprecated(
        since = "0.1.0",
        note = "materialising S is O(n²) memory; reduce block-at-a-time via \
                `galign_matrix::simblock` (`top1`, `topk`, `map_blocks`) instead"
    )]
    pub fn materialize(&self) -> Dense {
        simblock::materialize(self)
    }

    /// Greedy top-1 anchors: for each source node the best-scoring target
    /// (the paper's one-to-one instantiation rule, §VI-A), computed by the
    /// blocked engine without materialising `S`.
    pub fn top1_anchors(&self) -> Vec<(usize, usize)> {
        simblock::top1(self)
    }

    /// The greedy objective `g(S) = Σ_v max_u S(v, u)` that Algorithm 2
    /// tracks during refinement.
    pub fn greedy_score(&self) -> f64 {
        simblock::greedy_objective(self)
    }

    /// Access to the (normalised) source embeddings.
    pub fn source(&self) -> &MultiOrderEmbedding {
        &self.source
    }

    /// Access to the (normalised) target embeddings.
    pub fn target(&self) -> &MultiOrderEmbedding {
        &self.target
    }
}

impl ScoreProvider for AlignmentMatrix {
    fn num_sources(&self) -> usize {
        self.source.node_count()
    }

    fn num_targets(&self) -> usize {
        self.target.node_count()
    }

    fn score_block(&self, rows: Range<usize>, out: &mut [f64]) {
        self.panel().score_block(rows, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(rows: &[&[f64]]) -> MultiOrderEmbedding {
        let m = Dense::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap();
        MultiOrderEmbedding::from_layers(vec![m.clone(), m])
    }

    #[test]
    fn selection_constructors() {
        let u = LayerSelection::uniform(3);
        assert_eq!(u.theta, vec![1.0 / 3.0; 3]);
        let s = LayerSelection::single(1, 3);
        assert_eq!(s.theta, vec![0.0, 1.0, 0.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn identical_embeddings_score_diagonal_highest() {
        let e = emb(&[&[1.0, 0.0], &[0.0, 1.0], &[0.7, 0.7]]);
        let a = AlignmentMatrix::new(&e, &e, LayerSelection::uniform(2)).unwrap();
        let anchors = a.top1_anchors();
        assert_eq!(anchors, vec![(0, 0), (1, 1), (2, 2)]);
        // Diagonal of the materialised matrix is 1 (cosine of identical rows).
        #[allow(deprecated)]
        let m = a.materialize();
        for i in 0..3 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn score_row_matches_materialize() {
        let s = emb(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let t = emb(&[&[0.5, 0.5], &[-1.0, 2.0], &[2.0, 0.1]]);
        let a = AlignmentMatrix::new(&s, &t, LayerSelection::weighted(vec![0.3, 0.7])).unwrap();
        #[allow(deprecated)]
        let m = a.materialize();
        for v in 0..2 {
            let row = a.score_row(v);
            for u in 0..3 {
                assert!((row[u] - m.get(v, u)).abs() < 1e-12);
            }
        }
        assert_eq!(a.num_sources(), 2);
        assert_eq!(a.num_targets(), 3);
    }

    #[test]
    fn single_layer_selection_uses_only_that_layer() {
        let l0 = Dense::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let l1 = Dense::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let s = MultiOrderEmbedding::from_layers(vec![l0.clone(), l1.clone()]);
        let t = MultiOrderEmbedding::from_layers(vec![l0, l1]);
        let a0 = AlignmentMatrix::new(&s, &t, LayerSelection::single(0, 2)).unwrap();
        let a1 = AlignmentMatrix::new(&s, &t, LayerSelection::single(1, 2)).unwrap();
        assert!((a0.score_row(0)[0] - 1.0).abs() < 1e-12);
        assert!((a1.score_row(0)[0] - 1.0).abs() < 1e-12);
        // Cross-check layer_score_row.
        assert!((a0.layer_score_row(0, 0)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_score_sums_row_maxima() {
        let e = emb(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let a = AlignmentMatrix::new(&e, &e, LayerSelection::uniform(2)).unwrap();
        assert!((a.greedy_score() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn selection_length_is_an_error_not_a_panic() {
        let e = emb(&[&[1.0, 0.0]]);
        let err = AlignmentMatrix::new(&e, &e, LayerSelection::uniform(5)).unwrap_err();
        assert!(matches!(err, GAlignError::ThetaLength { got: 5, want: 2 }));
        assert!(err.to_string().contains("theta has 5"));
    }
}
