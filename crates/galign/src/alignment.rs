//! Alignment instantiation (§VI-A): layer-wise alignment matrices (Eq. 11)
//! fused by layer-importance weights into the aggregated matrix (Eq. 12).
//!
//! The aggregated matrix is exposed as a row-streamed
//! [`galign_metrics::ScoreProvider`]; the full `n₁×n₂`
//! matrix is only materialised on explicit request, matching the §VI-C
//! space analysis.

use galign_gcn::MultiOrderEmbedding;
use galign_matrix::dense::dot;
use galign_matrix::Dense;
use galign_metrics::ScoreProvider;
use rayon::prelude::*;

/// Which layers participate in the alignment matrix and with what weight.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSelection {
    /// θ⁽ˡ⁾ for `l = 0..=k`; need not be normalised.
    pub theta: Vec<f64>,
}

impl LayerSelection {
    /// Equal weights `θ⁽ˡ⁾ = 1/(k+1)` over all `k+1` layers — the paper's
    /// default (§VII-A).
    pub fn uniform(num_layers_incl_attrs: usize) -> Self {
        let w = 1.0 / num_layers_incl_attrs.max(1) as f64;
        LayerSelection {
            theta: vec![w; num_layers_incl_attrs],
        }
    }

    /// Only layer `l` participates (the single-order baselines of Fig. 6 /
    /// Table V and the GAlign-3 ablation).
    pub fn single(l: usize, num_layers_incl_attrs: usize) -> Self {
        let mut theta = vec![0.0; num_layers_incl_attrs];
        theta[l] = 1.0;
        LayerSelection { theta }
    }

    /// Explicit weights (Table V's sweep).
    pub fn weighted(theta: Vec<f64>) -> Self {
        LayerSelection { theta }
    }

    /// Number of weighted layers (including the attribute layer 0).
    pub fn len(&self) -> usize {
        self.theta.len()
    }

    /// True when no layers are selected.
    pub fn is_empty(&self) -> bool {
        self.theta.is_empty()
    }
}

/// The aggregated alignment matrix `S = Σ_l θ⁽ˡ⁾ H_s⁽ˡ⁾ H_t⁽ˡ⁾ᵀ`
/// (Eq. 11–12) over row-normalised embeddings.
#[derive(Debug, Clone)]
pub struct AlignmentMatrix {
    source: MultiOrderEmbedding,
    target: MultiOrderEmbedding,
    selection: LayerSelection,
}

impl AlignmentMatrix {
    /// Builds the alignment view. Embeddings are row-L2-normalised here so
    /// every layer contributes cosine similarities (DESIGN.md §4.2).
    ///
    /// # Panics
    /// Panics when layer counts disagree with the selection length.
    pub fn new(
        source: &MultiOrderEmbedding,
        target: &MultiOrderEmbedding,
        selection: LayerSelection,
    ) -> Self {
        assert_eq!(
            source.layers().len(),
            target.layers().len(),
            "source/target layer counts differ"
        );
        assert_eq!(
            selection.len(),
            source.layers().len(),
            "selection length must equal layer count (incl. layer 0)"
        );
        AlignmentMatrix {
            source: source.normalized(),
            target: target.normalized(),
            selection,
        }
    }

    /// Layer weights in use.
    pub fn selection(&self) -> &LayerSelection {
        &self.selection
    }

    /// Alignment scores of source `v` at a single layer `l` (Eq. 11,
    /// one row).
    pub fn layer_score_row(&self, l: usize, v: usize) -> Vec<f64> {
        let sv = self.source.layer(l).row(v);
        let t = self.target.layer(l);
        (0..t.rows()).map(|u| dot(sv, t.row(u))).collect()
    }

    /// Materialises the aggregated matrix — `O(n₁ n₂)` memory, test/tooling
    /// only.
    pub fn materialize(&self) -> Dense {
        let mut out = Dense::zeros(self.num_sources(), self.num_targets());
        out.as_mut_slice()
            .par_chunks_exact_mut(self.num_targets().max(1))
            .enumerate()
            .for_each(|(v, row)| {
                let scores = self.score_row(v);
                row.copy_from_slice(&scores);
            });
        out
    }

    /// Greedy top-1 anchors: for each source node the best-scoring target
    /// (the paper's one-to-one instantiation rule, §VI-A).
    pub fn top1_anchors(&self) -> Vec<(usize, usize)> {
        (0..self.num_sources())
            .into_par_iter()
            .filter_map(|v| {
                let row = self.score_row(v);
                let mut best: Option<(usize, f64)> = None;
                for (u, s) in row.into_iter().enumerate() {
                    if best.is_none_or(|(_, bs)| s > bs) {
                        best = Some((u, s));
                    }
                }
                best.map(|(u, _)| (v, u))
            })
            .collect()
    }

    /// The greedy objective `g(S) = Σ_v max_u S(v, u)` that Algorithm 2
    /// tracks during refinement.
    pub fn greedy_score(&self) -> f64 {
        (0..self.num_sources())
            .into_par_iter()
            .map(|v| {
                self.score_row(v)
                    .into_iter()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .filter(|m| m.is_finite())
            .sum()
    }

    /// Access to the (normalised) source embeddings.
    pub fn source(&self) -> &MultiOrderEmbedding {
        &self.source
    }

    /// Access to the (normalised) target embeddings.
    pub fn target(&self) -> &MultiOrderEmbedding {
        &self.target
    }
}

impl ScoreProvider for AlignmentMatrix {
    fn num_sources(&self) -> usize {
        self.source.node_count()
    }

    fn num_targets(&self) -> usize {
        self.target.node_count()
    }

    fn score_row(&self, v: usize) -> Vec<f64> {
        let n_t = self.num_targets();
        let mut acc = vec![0.0; n_t];
        for (l, &theta) in self.selection.theta.iter().enumerate() {
            if theta == 0.0 {
                continue;
            }
            let sv = self.source.layer(l).row(v);
            let t = self.target.layer(l);
            for (u, a) in acc.iter_mut().enumerate() {
                *a += theta * dot(sv, t.row(u));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(rows: &[&[f64]]) -> MultiOrderEmbedding {
        let m = Dense::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap();
        MultiOrderEmbedding::from_layers(vec![m.clone(), m])
    }

    #[test]
    fn selection_constructors() {
        let u = LayerSelection::uniform(3);
        assert_eq!(u.theta, vec![1.0 / 3.0; 3]);
        let s = LayerSelection::single(1, 3);
        assert_eq!(s.theta, vec![0.0, 1.0, 0.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn identical_embeddings_score_diagonal_highest() {
        let e = emb(&[&[1.0, 0.0], &[0.0, 1.0], &[0.7, 0.7]]);
        let a = AlignmentMatrix::new(&e, &e, LayerSelection::uniform(2));
        let anchors = a.top1_anchors();
        assert_eq!(anchors, vec![(0, 0), (1, 1), (2, 2)]);
        // Diagonal of the materialised matrix is 1 (cosine of identical rows).
        let m = a.materialize();
        for i in 0..3 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn score_row_matches_materialize() {
        let s = emb(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let t = emb(&[&[0.5, 0.5], &[-1.0, 2.0], &[2.0, 0.1]]);
        let a = AlignmentMatrix::new(&s, &t, LayerSelection::weighted(vec![0.3, 0.7]));
        let m = a.materialize();
        for v in 0..2 {
            let row = a.score_row(v);
            for u in 0..3 {
                assert!((row[u] - m.get(v, u)).abs() < 1e-12);
            }
        }
        assert_eq!(a.num_sources(), 2);
        assert_eq!(a.num_targets(), 3);
    }

    #[test]
    fn single_layer_selection_uses_only_that_layer() {
        let l0 = Dense::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let l1 = Dense::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let s = MultiOrderEmbedding::from_layers(vec![l0.clone(), l1.clone()]);
        let t = MultiOrderEmbedding::from_layers(vec![l0, l1]);
        let a0 = AlignmentMatrix::new(&s, &t, LayerSelection::single(0, 2));
        let a1 = AlignmentMatrix::new(&s, &t, LayerSelection::single(1, 2));
        assert!((a0.score_row(0)[0] - 1.0).abs() < 1e-12);
        assert!((a1.score_row(0)[0] - 1.0).abs() < 1e-12);
        // Cross-check layer_score_row.
        assert!((a0.layer_score_row(0, 0)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_score_sums_row_maxima() {
        let e = emb(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let a = AlignmentMatrix::new(&e, &e, LayerSelection::uniform(2));
        assert!((a.greedy_score() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "selection length")]
    fn selection_length_checked() {
        let e = emb(&[&[1.0, 0.0]]);
        AlignmentMatrix::new(&e, &e, LayerSelection::uniform(5));
    }
}
