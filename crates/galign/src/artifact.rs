//! Serving-artifact export: bridges the training pipeline to `galign-serve`.
//!
//! A [`GAlignResult`] carries everything the query-serving subsystem needs —
//! the θ layer weighting plus both multi-order embeddings — so this module
//! packs them into the versioned, checksummed binary format of
//! [`galign_serve::artifact`]. Binary artifacts are roughly 2.4x smaller than
//! the JSON dumps in [`crate::persist`] (8 bytes per element vs ~20 bytes
//! of shortest-roundtrip decimal text plus separators) and validate
//! integrity on load.
//!
//! The embeddings inside an [`AlignmentMatrix`] are already row-L2-normalised
//! (done once in `AlignmentMatrix::new`), so exports set `rows_normalized`
//! and a server loading the artifact reproduces Eq. 11–12 scores — and
//! therefore [`AlignmentMatrix::top1_anchors`] — bit for bit: since the
//! `simblock` redesign both sides literally run the same blocked kernel.
//!
//! All fallible surfaces return [`crate::error::GAlignError`].

use crate::alignment::{AlignmentMatrix, LayerSelection};
use crate::error::{GAlignError, Result};
use crate::persist;
use crate::pipeline::GAlignResult;
use galign_gcn::MultiOrderEmbedding;
use galign_matrix::Dense;
use galign_serve::artifact::{Artifact, Mat};
use std::path::{Path, PathBuf};

fn dense_to_mat(d: &Dense) -> Result<Mat> {
    Ok(Mat::new(d.rows(), d.cols(), d.as_slice().to_vec())?)
}

fn layers_to_mats(emb: &MultiOrderEmbedding) -> Result<Vec<Mat>> {
    emb.layers().iter().map(dense_to_mat).collect()
}

/// Builds a serving artifact from a computed alignment.
///
/// # Errors
/// Shape inconsistencies between the two embeddings (cannot happen for an
/// `AlignmentMatrix` built by the pipeline, but the artifact re-validates).
pub fn artifact_from_alignment(alignment: &AlignmentMatrix) -> Result<Artifact> {
    Ok(Artifact::new(
        alignment.selection().theta.clone(),
        layers_to_mats(alignment.source())?,
        layers_to_mats(alignment.target())?,
        true,
    )?)
}

/// Builds a serving artifact from a full pipeline result.
///
/// # Errors
/// See [`artifact_from_alignment`].
pub fn artifact_from_result(result: &GAlignResult) -> Result<Artifact> {
    artifact_from_alignment(&result.alignment)
}

/// Runs [`artifact_from_result`] and writes the binary artifact to `path`.
///
/// # Errors
/// Conversion or IO failures.
pub fn export_artifact(result: &GAlignResult, path: &Path) -> Result<()> {
    artifact_from_result(result)?.write(path)?;
    Ok(())
}

/// [`artifact_from_alignment`] plus a quantized panel section
/// ([`galign_serve::QuantMode`]; `Off` returns the plain artifact).
///
/// With `keep_f64 = false` (quant-primary) the panels *replace* the f64
/// layer blocks in the written file — readers reconstruct the rows
/// deterministically, so the artifact serves identical responses at a
/// fraction of the size. With `keep_f64 = true` (sidecar) both
/// representations are kept and the panels only accelerate first-pass
/// scans. Quantization re-normalises rows, so attach any ANN index
/// *after* this call.
///
/// # Errors
/// Conversion failures, or non-finite embedding components rejected by
/// the encoder.
pub fn quantized_artifact_from_alignment(
    alignment: &AlignmentMatrix,
    mode: galign_serve::QuantMode,
    keep_f64: bool,
) -> Result<Artifact> {
    let artifact = artifact_from_alignment(alignment)?;
    match mode.panel_mode() {
        None => Ok(artifact),
        Some(encoding) => Ok(artifact.with_quant(encoding, keep_f64)?),
    }
}

/// Runs [`quantized_artifact_from_alignment`] on a full pipeline result
/// and writes the binary artifact to `path`.
///
/// # Errors
/// See [`quantized_artifact_from_alignment`]; plus IO failures.
pub fn export_quantized_artifact(
    result: &GAlignResult,
    mode: galign_serve::QuantMode,
    keep_f64: bool,
    path: &Path,
) -> Result<()> {
    quantized_artifact_from_alignment(&result.alignment, mode, keep_f64)?.write(path)?;
    Ok(())
}

/// Splits `artifact` into `num_shards` shard artifacts (contiguous
/// target-id ranges, each carrying a shard manifest) and writes them to
/// `out_dir` as `shard-0000.galign`, `shard-0001.galign`, ….
///
/// `replica_sets`, when given, records one advisory replica list per
/// shard in the manifests (one entry per shard required).
///
/// # Errors
/// Invalid split parameters or IO failures.
pub fn export_shards(
    artifact: &Artifact,
    num_shards: usize,
    replica_sets: Option<&[Vec<String>]>,
    out_dir: &Path,
) -> Result<Vec<PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let shards = artifact.split(num_shards, replica_sets)?;
    let mut paths = Vec::with_capacity(shards.len());
    for (i, shard) in shards.iter().enumerate() {
        let path = out_dir.join(format!("shard-{i:04}.galign"));
        shard.write(&path)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Loads one shard artifact, mapping any decode failure to
/// [`GAlignError::Corrupt`] naming the file.
///
/// # Errors
/// [`GAlignError::Io`] when the file cannot be read at all;
/// [`GAlignError::Corrupt`] when it reads but does not decode as a valid
/// artifact.
pub fn load_shard(path: &Path) -> Result<Artifact> {
    let bytes = std::fs::read(path)?;
    Artifact::from_bytes(&bytes).map_err(|e| GAlignError::Corrupt {
        path: path.to_path_buf(),
        reason: e.to_string(),
    })
}

/// Loads a full shard set and reassembles the parent artifact,
/// verifying the stitched target layers hash back to the recorded
/// `parent_checksum`.
///
/// A set that fails verification — mixed parents, missing or
/// overlapping ranges, or a checksum mismatch — is rejected with
/// [`GAlignError::Corrupt`], never returned silently wrong.
///
/// # Errors
/// [`GAlignError::Io`] on unreadable files; [`GAlignError::Corrupt`] on
/// any decode or consistency failure.
pub fn assemble_shard_files(paths: &[PathBuf]) -> Result<Artifact> {
    let shards: Vec<Artifact> = paths.iter().map(|p| load_shard(p)).collect::<Result<_>>()?;
    Artifact::assemble_shards(&shards).map_err(|e| GAlignError::Corrupt {
        path: paths.first().cloned().unwrap_or_default(),
        reason: e.to_string(),
    })
}

/// Migrates a pair of JSON embedding dumps ([`persist::save_embeddings`])
/// into one binary serving artifact.
///
/// JSON dumps hold raw (unnormalised) embeddings, so the artifact is
/// written with `rows_normalized = false` and the serving kernel normalises
/// once at load time. When `theta` is `None` the layers are weighted
/// uniformly, matching [`LayerSelection::uniform`].
///
/// # Errors
/// IO/parse failures, mismatched layer counts between the two dumps, or a
/// `theta` whose length disagrees with the layer count.
pub fn migrate_embeddings_json(
    source_json: &Path,
    target_json: &Path,
    theta: Option<Vec<f64>>,
    out: &Path,
) -> Result<Artifact> {
    let source = persist::load_embeddings(source_json)?;
    let target = persist::load_embeddings(target_json)?;
    if source.layers().len() != target.layers().len() {
        return Err(GAlignError::LayerMismatch {
            source: source.layers().len(),
            target: target.layers().len(),
        });
    }
    let theta = theta.unwrap_or_else(|| LayerSelection::uniform(source.layers().len()).theta);
    let artifact = Artifact::new(
        theta,
        layers_to_mats(&source)?,
        layers_to_mats(&target)?,
        false,
    )?;
    artifact.write(out)?;
    Ok(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;
    use galign_serve::topk::{EngineMode, QuantMode as ServeQuant, TopkIndex};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("galign-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn random_embedding(rng: &mut SeededRng, nodes: usize, dims: &[usize]) -> MultiOrderEmbedding {
        MultiOrderEmbedding::from_layers(
            dims.iter()
                .map(|&d| rng.uniform_matrix(nodes, d, -1.0, 1.0))
                .collect(),
        )
    }

    #[test]
    fn alignment_exports_bit_exact_normalized_layers() {
        let mut rng = SeededRng::new(5);
        let source = random_embedding(&mut rng, 6, &[4, 3]);
        let target = random_embedding(&mut rng, 8, &[4, 3]);
        let alignment = AlignmentMatrix::new(&source, &target, LayerSelection::uniform(2)).unwrap();
        let artifact = artifact_from_alignment(&alignment).unwrap();
        let bytes = artifact.to_bytes();
        let back = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(artifact, back);
        // The artifact holds the alignment's normalised rows, bit for bit.
        for (l, mat) in back.source.iter().enumerate() {
            for (a, b) in mat
                .as_slice()
                .iter()
                .zip(alignment.source().layer(l).as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn served_top1_matches_alignment_top1() {
        let mut rng = SeededRng::new(6);
        let source = random_embedding(&mut rng, 9, &[5, 3]);
        let target = random_embedding(&mut rng, 9, &[5, 3]);
        let alignment =
            AlignmentMatrix::new(&source, &target, LayerSelection::weighted(vec![0.7, 0.3]))
                .unwrap();
        let index = TopkIndex::from_artifact(artifact_from_alignment(&alignment).unwrap());
        for (v, expected) in alignment.top1_anchors() {
            let hits = index.topk(v, 1, None).unwrap();
            assert_eq!(hits[0].target, expected, "node {v}");
        }
    }

    #[test]
    fn quantized_export_shrinks_and_serves_identically() {
        let mut rng = SeededRng::new(21);
        let source = random_embedding(&mut rng, 40, &[16, 16]);
        let target = random_embedding(&mut rng, 48, &[16, 16]);
        let alignment = AlignmentMatrix::new(&source, &target, LayerSelection::uniform(2)).unwrap();

        // `Off` is a no-op passthrough.
        let plain =
            quantized_artifact_from_alignment(&alignment, galign_serve::QuantMode::Off, false)
                .unwrap();
        assert!(plain.quant.is_none());

        // Quant-primary: panels replace the f64 blocks on disk.
        let quantized =
            quantized_artifact_from_alignment(&alignment, galign_serve::QuantMode::Int8, false)
                .unwrap();
        assert!(quantized.quant.is_some());
        let (p, q) = (tmp("quant-plain.bin"), tmp("quant-int8.bin"));
        plain.write(&p).unwrap();
        quantized.write(&q).unwrap();
        let (plain_bytes, quant_bytes) = (
            std::fs::metadata(&p).unwrap().len(),
            std::fs::metadata(&q).unwrap().len(),
        );
        assert!(
            quant_bytes * 3 < plain_bytes,
            "int8 artifact {quant_bytes}B not >3x smaller than f64 {plain_bytes}B"
        );

        // Served responses ignore the request's quant knob bit-for-bit.
        let index = TopkIndex::from_artifact(Artifact::read(&q).unwrap());
        for node in [0, 17, 39] {
            let (off, _) = index
                .topk_with_opts(node, 5, None, EngineMode::Exact, ServeQuant::Off)
                .unwrap();
            let (int8, _) = index
                .topk_with_opts(node, 5, None, EngineMode::Exact, ServeQuant::Int8)
                .unwrap();
            assert_eq!(off.len(), int8.len());
            for (a, b) in off.iter().zip(&int8) {
                assert_eq!(a.target, b.target, "node {node}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "node {node}");
            }
        }
    }

    #[test]
    fn migration_produces_smaller_equivalent_artifact() {
        let mut rng = SeededRng::new(7);
        let source = random_embedding(&mut rng, 10, &[6, 4]);
        let target = random_embedding(&mut rng, 12, &[6, 4]);
        let (s_json, t_json) = (tmp("mig-s.json"), tmp("mig-t.json"));
        persist::save_embeddings(&source, &s_json).unwrap();
        persist::save_embeddings(&target, &t_json).unwrap();
        let out = tmp("mig.bin");
        let artifact = migrate_embeddings_json(&s_json, &t_json, None, &out).unwrap();
        assert!(!artifact.rows_normalized);
        assert_eq!(artifact.theta, vec![0.5, 0.5]);
        let reloaded = Artifact::read(&out).unwrap();
        assert_eq!(artifact, reloaded);
        // Binary f64 payload (8 B/value) vs compact shortest-roundtrip JSON
        // (~20 B/value for uniform [-1, 1] doubles): measured ~2.4x; assert
        // a conservative 2x.
        let json_bytes =
            std::fs::metadata(&s_json).unwrap().len() + std::fs::metadata(&t_json).unwrap().len();
        let bin_bytes = std::fs::metadata(&out).unwrap().len();
        assert!(
            bin_bytes * 2 < json_bytes,
            "binary {bin_bytes}B vs JSON {json_bytes}B"
        );
    }

    #[test]
    fn shard_export_round_trips_through_assembly() {
        let mut rng = SeededRng::new(11);
        let source = random_embedding(&mut rng, 5, &[4, 3]);
        let target = random_embedding(&mut rng, 11, &[4, 3]);
        let alignment = AlignmentMatrix::new(&source, &target, LayerSelection::uniform(2)).unwrap();
        let artifact = artifact_from_alignment(&alignment).unwrap();
        let dir = tmp("shard-roundtrip");
        let replicas = vec![
            vec!["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string()],
            vec!["127.0.0.1:7003".to_string()],
            vec![],
        ];
        let paths = export_shards(&artifact, 3, Some(&replicas), &dir).unwrap();
        assert_eq!(paths.len(), 3);
        // Uneven split of 11 rows: 4 + 4 + 3.
        let rows: Vec<usize> = paths
            .iter()
            .map(|p| load_shard(p).unwrap().target_nodes())
            .collect();
        assert_eq!(rows, vec![4, 4, 3]);
        let manifest0 = load_shard(&paths[0]).unwrap().manifest.unwrap();
        assert_eq!(manifest0.replicas, replicas[0]);
        assert_eq!(manifest0.parent_checksum, artifact.target_checksum());
        let back = assemble_shard_files(&paths).unwrap();
        assert_eq!(back.to_bytes(), artifact.to_bytes());
    }

    #[test]
    fn mixed_parents_are_rejected_as_corrupt() {
        let mut rng = SeededRng::new(12);
        let source = random_embedding(&mut rng, 4, &[3]);
        let target_a = random_embedding(&mut rng, 8, &[3]);
        let target_b = random_embedding(&mut rng, 8, &[3]);
        let mk = |target: &MultiOrderEmbedding, dir: &str| {
            let alignment =
                AlignmentMatrix::new(&source, target, LayerSelection::uniform(1)).unwrap();
            let artifact = artifact_from_alignment(&alignment).unwrap();
            export_shards(&artifact, 2, None, &tmp(dir)).unwrap()
        };
        let a = mk(&target_a, "mixed-a");
        let b = mk(&target_b, "mixed-b");
        // Shard 0 of parent A + shard 1 of parent B: different
        // parent_checksum values must be rejected, not stitched.
        let err = assemble_shard_files(&[a[0].clone(), b[1].clone()]).unwrap_err();
        assert!(matches!(err, GAlignError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn truncated_shard_file_is_corrupt_not_io() {
        let mut rng = SeededRng::new(13);
        let source = random_embedding(&mut rng, 3, &[2]);
        let target = random_embedding(&mut rng, 6, &[2]);
        let alignment = AlignmentMatrix::new(&source, &target, LayerSelection::uniform(1)).unwrap();
        let artifact = artifact_from_alignment(&alignment).unwrap();
        let paths = export_shards(&artifact, 2, None, &tmp("truncated")).unwrap();
        let bytes = std::fs::read(&paths[0]).unwrap();
        std::fs::write(&paths[0], &bytes[..bytes.len() / 2]).unwrap();
        let err = load_shard(&paths[0]).unwrap_err();
        assert!(matches!(err, GAlignError::Corrupt { .. }), "{err:?}");
        let missing = load_shard(&tmp("truncated").join("nope.galign")).unwrap_err();
        assert!(matches!(missing, GAlignError::Io(_)), "{missing:?}");
    }

    #[test]
    fn migration_rejects_mismatched_layer_counts() {
        let mut rng = SeededRng::new(8);
        let source = random_embedding(&mut rng, 4, &[3, 2]);
        let target = random_embedding(&mut rng, 4, &[3]);
        let (s_json, t_json) = (tmp("bad-s.json"), tmp("bad-t.json"));
        persist::save_embeddings(&source, &s_json).unwrap();
        persist::save_embeddings(&target, &t_json).unwrap();
        let err = migrate_embeddings_json(&s_json, &t_json, None, &tmp("bad.bin")).unwrap_err();
        assert!(matches!(err, GAlignError::LayerMismatch { .. }), "{err:?}");
        assert!(err.to_string().contains("layer count"), "{err}");
    }
}
