//! The data augmenter (§V-C) as a reusable component.
//!
//! Training (`galign-gcn`) perturbs graphs inline; this module exposes the
//! same procedure as a configured object so examples, benchmarks and
//! downstream users can generate and inspect augmented copies explicitly.

use galign_graph::{noise, AttributedGraph};
use galign_matrix::rng::SeededRng;

/// Configuration of the perturbation-based augmenter.
#[derive(Debug, Clone)]
pub struct Augmenter {
    /// Structural perturbation rate p_s (edge removal/addition, §V-C).
    pub p_structure: f64,
    /// Attribute perturbation rate p_a.
    pub p_attribute: f64,
    /// Number of augmented copies to produce per network.
    pub copies: usize,
}

impl Default for Augmenter {
    fn default() -> Self {
        Augmenter {
            p_structure: 0.05,
            p_attribute: 0.05,
            copies: 2,
        }
    }
}

impl Augmenter {
    /// Produces `copies` perturbed versions of `g`. Node identity is kept
    /// (the Eq. 8 permutation is immaterial by Prop. 1; see DESIGN.md §4.4),
    /// so row `v` of each copy corresponds to node `v` of the original —
    /// which is exactly what the adaptivity loss (Eq. 9) pairs up.
    pub fn augment(&self, g: &AttributedGraph, rng: &mut SeededRng) -> Vec<AttributedGraph> {
        (0..self.copies)
            .map(|_| noise::augment(rng, g, self.p_structure, self.p_attribute))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::generators;

    #[test]
    fn produces_requested_copies() {
        let mut rng = SeededRng::new(1);
        let edges = generators::erdos_renyi_gnm(&mut rng, 50, 120);
        let attrs = generators::binary_attributes(&mut rng, 50, 10, 3);
        let g = AttributedGraph::from_edges(50, &edges, attrs);
        let aug = Augmenter::default().augment(&g, &mut rng);
        assert_eq!(aug.len(), 2);
        for a in &aug {
            assert_eq!(a.node_count(), 50);
            assert_eq!(a.attr_dim(), 10);
        }
        // Copies differ from each other (perturbations are random).
        assert_ne!(aug[0].edge_count(), 0);
    }

    #[test]
    fn zero_rates_reproduce_structure() {
        let mut rng = SeededRng::new(2);
        let edges = generators::erdos_renyi_gnm(&mut rng, 20, 40);
        let g = AttributedGraph::from_edges_featureless(20, &edges);
        let augmenter = Augmenter {
            p_structure: 0.0,
            p_attribute: 0.0,
            copies: 1,
        };
        let aug = augmenter.augment(&g, &mut rng);
        assert_eq!(aug[0].edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(aug[0].has_edge(u, v));
        }
    }
}
