//! Multi-order embedding stage: a thin, documented façade over the
//! `galign-gcn` trainer (Algorithm 1) with the paper's defaults.

use galign_gcn::model::Activation;
use galign_gcn::{
    train_multi_order, GcnModel, MultiOrderEmbedding, TrainConfig, TrainReport, WatchdogConfig,
};
use galign_graph::AttributedGraph;
use galign_matrix::rng::SeededRng;

/// Embedding-stage hyper-parameters (§VII-A defaults).
#[derive(Debug, Clone)]
pub struct EmbeddingConfig {
    /// Embedding dimension per GCN layer; length = k. Paper default:
    /// `[200, 200]`.
    pub layer_dims: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Loss balance γ (Eq. 10).
    pub gamma: f64,
    /// σ_< threshold (Eq. 9).
    pub adaptivity_threshold: f64,
    /// Augmented copies per network.
    pub num_augments: usize,
    /// Augmenter structural rate p_s.
    pub p_structure: f64,
    /// Augmenter attribute rate p_a.
    pub p_attribute: f64,
    /// Activation σ of Eq. 1 (tanh per the paper; others for ablation).
    pub activation: Activation,
    /// Early-stopping patience (see `TrainConfig::patience`).
    pub patience: Option<usize>,
    /// Divergence watchdog (checkpoint/rollback on NaN, gradient
    /// explosion or loss spike); `None` disables supervision entirely.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        let t = TrainConfig::default();
        EmbeddingConfig {
            layer_dims: t.layer_dims,
            epochs: t.epochs,
            learning_rate: t.learning_rate,
            gamma: t.gamma,
            adaptivity_threshold: t.adaptivity_threshold,
            num_augments: t.num_augments,
            p_structure: t.p_structure,
            p_attribute: t.p_attribute,
            activation: t.activation,
            patience: t.patience,
            watchdog: t.watchdog,
        }
    }
}

impl EmbeddingConfig {
    /// Converts to the trainer's configuration type.
    pub fn to_train_config(&self) -> TrainConfig {
        TrainConfig {
            layer_dims: self.layer_dims.clone(),
            epochs: self.epochs,
            learning_rate: self.learning_rate,
            gamma: self.gamma,
            adaptivity_threshold: self.adaptivity_threshold,
            num_augments: self.num_augments,
            p_structure: self.p_structure,
            p_attribute: self.p_attribute,
            activation: self.activation,
            patience: self.patience,
            watchdog: self.watchdog.clone(),
        }
    }

    /// Number of GCN layers k.
    pub fn num_layers(&self) -> usize {
        self.layer_dims.len()
    }
}

/// Output of the embedding stage.
#[derive(Debug, Clone)]
pub struct EmbeddedPair {
    /// The trained shared-weight model (needed again by refinement).
    pub model: GcnModel,
    /// Source multi-order embeddings `H_s⁽⁰⁾..H_s⁽ᵏ⁾`.
    pub source: MultiOrderEmbedding,
    /// Target multi-order embeddings.
    pub target: MultiOrderEmbedding,
    /// Loss trajectory.
    pub report: TrainReport,
}

/// Embeds both networks into one space with a shared-weight multi-order GCN
/// (Algorithm 1).
pub fn embed_pair(
    source: &AttributedGraph,
    target: &AttributedGraph,
    cfg: &EmbeddingConfig,
    rng: &mut SeededRng,
) -> EmbeddedPair {
    let trained = train_multi_order(source, target, &cfg.to_train_config(), rng);
    EmbeddedPair {
        model: trained.model,
        source: trained.source,
        target: trained.target,
        report: trained.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::generators;

    #[test]
    fn config_conversion_roundtrip() {
        let cfg = EmbeddingConfig {
            layer_dims: vec![16, 8],
            epochs: 5,
            gamma: 0.5,
            ..EmbeddingConfig::default()
        };
        let t = cfg.to_train_config();
        assert_eq!(t.layer_dims, vec![16, 8]);
        assert_eq!(t.epochs, 5);
        assert_eq!(t.gamma, 0.5);
        assert_eq!(cfg.num_layers(), 2);
        assert!(t.watchdog.is_some(), "watchdog is on by default");
    }

    #[test]
    fn embed_pair_smoke() {
        let mut rng = SeededRng::new(1);
        let edges = generators::erdos_renyi_gnm(&mut rng, 25, 60);
        let attrs = generators::binary_attributes(&mut rng, 25, 6, 2);
        let g = AttributedGraph::from_edges(25, &edges, attrs);
        let cfg = EmbeddingConfig {
            layer_dims: vec![5],
            epochs: 3,
            num_augments: 1,
            ..EmbeddingConfig::default()
        };
        let pair = embed_pair(&g, &g, &cfg, &mut rng);
        assert_eq!(pair.source.num_gcn_layers(), 1);
        assert_eq!(pair.target.layer(1).shape(), (25, 5));
        assert_eq!(pair.report.loss_history.len(), 3);
    }
}
