//! The crate-wide error type.
//!
//! Every fallible public surface of `galign` — the pipeline
//! ([`crate::pipeline::GAlign::align`]), alignment construction
//! ([`crate::alignment::AlignmentMatrix::new`]), persistence
//! ([`crate::persist`]) and artifact export ([`crate::artifact`]) —
//! returns [`GAlignError`] instead of panicking on malformed input.
//! The enum is hand-rolled (std-only, `thiserror`-style `Display` +
//! `source`) to keep the workspace dependency-free.

use galign_matrix::MatrixError;
use std::fmt;
use std::io;

/// Convenient alias for fallible `galign` operations.
pub type Result<T> = std::result::Result<T, GAlignError>;

/// Errors raised by the GAlign pipeline, persistence and export surfaces.
#[derive(Debug)]
pub enum GAlignError {
    /// A configuration value is out of range (reported by the
    /// [`crate::pipeline::GAlignConfigBuilder`] at build time).
    Config(String),
    /// A θ layer-weight vector has the wrong number of entries.
    ThetaLength {
        /// Entries supplied.
        got: usize,
        /// Entries required (`k + 1`, including the attribute layer).
        want: usize,
    },
    /// The two sides of an alignment disagree on layer count.
    LayerMismatch {
        /// Source-side layer count.
        source: usize,
        /// Target-side layer count.
        target: usize,
    },
    /// The two graphs disagree on attribute dimensionality.
    AttrDimMismatch {
        /// Source-graph attribute dimension.
        source: usize,
        /// Target-graph attribute dimension.
        target: usize,
    },
    /// A linear-algebra kernel rejected its operands.
    Matrix(MatrixError),
    /// An IO failure while persisting or loading state.
    Io(io::Error),
    /// Persisted data was malformed (bad JSON, wrong version, shapes that
    /// do not chain).
    Format(String),
    /// A persisted file was corrupt **and** no previous generation could
    /// be recovered: the broken file has been quarantined as
    /// `<name>.corrupt` and both failure reasons are preserved.
    Corrupt {
        /// The file that failed to load.
        path: std::path::PathBuf,
        /// Why the current and previous generations were rejected.
        reason: String,
    },
}

impl fmt::Display for GAlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GAlignError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            GAlignError::ThetaLength { got, want } => {
                write!(f, "theta has {got} entries but must have {want} (k+1)")
            }
            GAlignError::LayerMismatch { source, target } => write!(
                f,
                "source and target layer counts differ: {source} vs {target}"
            ),
            GAlignError::AttrDimMismatch { source, target } => write!(
                f,
                "source and target attribute dimensions differ: {source} vs {target}"
            ),
            GAlignError::Matrix(e) => write!(f, "matrix operation failed: {e}"),
            GAlignError::Io(e) => write!(f, "io error: {e}"),
            GAlignError::Format(msg) => write!(f, "malformed data: {msg}"),
            GAlignError::Corrupt { path, reason } => write!(
                f,
                "corrupt file {} (quarantined, no recoverable previous \
                 generation): {reason}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for GAlignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GAlignError::Matrix(e) => Some(e),
            GAlignError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for GAlignError {
    fn from(e: MatrixError) -> Self {
        GAlignError::Matrix(e)
    }
}

impl From<io::Error> for GAlignError {
    fn from(e: io::Error) -> Self {
        GAlignError::Io(e)
    }
}

impl From<serde_json::Error> for GAlignError {
    fn from(e: serde_json::Error) -> Self {
        GAlignError::Format(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        assert!(GAlignError::Config("epochs must be >= 1".into())
            .to_string()
            .contains("epochs"));
        assert!(GAlignError::ThetaLength { got: 2, want: 3 }
            .to_string()
            .contains("2 entries"));
        assert!(GAlignError::LayerMismatch {
            source: 3,
            target: 2
        }
        .to_string()
        .contains("3 vs 2"));
        assert!(GAlignError::AttrDimMismatch {
            source: 5,
            target: 7
        }
        .to_string()
        .contains("attribute"));
        assert!(GAlignError::Format("bad".into())
            .to_string()
            .contains("bad"));
        let corrupt = GAlignError::Corrupt {
            path: "store.bin".into(),
            reason: "checksum mismatch".into(),
        };
        assert!(corrupt.to_string().contains("store.bin"));
        assert!(corrupt.to_string().contains("quarantined"));
        assert!(corrupt.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        use std::error::Error;
        let e = GAlignError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        let e = GAlignError::from(MatrixError::InvalidInput("bad".into()));
        assert!(e.source().is_some());
        assert!(GAlignError::Config("x".into()).source().is_none());
    }
}
