//! GAlign — fully unsupervised multi-order network alignment (ICDE 2020).
//!
//! This crate is the paper's primary contribution: an end-to-end framework
//! that embeds two attributed networks with a shared-weight multi-order GCN,
//! augments training with perturbed copies for noise adaptivity, and
//! computes a refined alignment matrix.
//!
//! ```no_run
//! use galign::prelude::*;
//! use galign_graph::AttributedGraph;
//!
//! # fn main() -> Result<()> {
//! let source = AttributedGraph::from_edges_featureless(4, &[(0, 1), (1, 2), (2, 3)]);
//! let target = source.clone();
//! let config = GAlignConfig::builder().fast().build()?;
//! let result = GAlign::new(config).align(&source, &target, 7)?;
//! let anchors = result.top1_anchors();
//! # let _ = anchors;
//! # Ok(())
//! # }
//! ```
//!
//! Pipeline stages (each its own module):
//! * [`augment`] — the data augmenter (§V-C).
//! * [`embedding`] — multi-order embedding via `galign-gcn` (Algorithm 1).
//! * [`alignment`] — layer-wise and aggregated alignment matrices
//!   (Eq. 11–12), scored block-at-a-time by the shared streaming engine in
//!   `galign_matrix::simblock` so `S` is never fully materialised.
//! * [`matching`] — anchor instantiation policies (top-1, greedy
//!   injective, one-to-many, mutual-best) over the blocked engine.
//! * [`refine`] — stability detection (Eq. 13) and noise-aware propagation
//!   (Eq. 14–15, Algorithm 2).
//! * [`pipeline`] — the [`GAlign`] front door plus the ablation variants of
//!   §VII-C (GAlign-1/2/3), configured through the validating
//!   [`pipeline::GAlignConfigBuilder`].
//! * [`artifact`] — export of finished alignments into the binary serving
//!   format consumed by `galign-serve`.
//! * [`error`] — the crate-wide [`GAlignError`]; public surfaces return
//!   `Result` instead of panicking on malformed input.
//! * [`prelude`] — one-import access to the stable types.

pub mod alignment;
pub mod artifact;
pub mod augment;
pub mod embedding;
pub mod error;
pub mod matching;
pub mod persist;
pub mod pipeline;
pub mod prelude;
pub mod refine;

pub use alignment::{AlignmentMatrix, LayerSelection};
pub use error::GAlignError;
pub use pipeline::{AblationVariant, GAlign, GAlignConfig, GAlignConfigBuilder, GAlignResult};
