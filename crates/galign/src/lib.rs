//! GAlign — fully unsupervised multi-order network alignment (ICDE 2020).
//!
//! This crate is the paper's primary contribution: an end-to-end framework
//! that embeds two attributed networks with a shared-weight multi-order GCN,
//! augments training with perturbed copies for noise adaptivity, and
//! computes a refined alignment matrix.
//!
//! ```no_run
//! use galign::{GAlign, GAlignConfig};
//! use galign_graph::AttributedGraph;
//!
//! let source = AttributedGraph::from_edges_featureless(4, &[(0, 1), (1, 2), (2, 3)]);
//! let target = source.clone();
//! let result = GAlign::new(GAlignConfig::default()).align(&source, &target, 7);
//! let anchors = result.top1_anchors();
//! # let _ = anchors;
//! ```
//!
//! Pipeline stages (each its own module):
//! * [`augment`] — the data augmenter (§V-C).
//! * [`embedding`] — multi-order embedding via `galign-gcn` (Algorithm 1).
//! * [`alignment`] — layer-wise and aggregated alignment matrices
//!   (Eq. 11–12), row-streamed so `S` is never fully materialised.
//! * [`refine`] — stability detection (Eq. 13) and noise-aware propagation
//!   (Eq. 14–15, Algorithm 2).
//! * [`pipeline`] — the [`GAlign`] front door plus the ablation variants of
//!   §VII-C (GAlign-1/2/3).
//! * [`artifact`] — export of finished alignments into the binary serving
//!   format consumed by `galign-serve`.

pub mod alignment;
pub mod artifact;
pub mod augment;
pub mod embedding;
pub mod matching;
pub mod persist;
pub mod pipeline;
pub mod refine;

pub use alignment::{AlignmentMatrix, LayerSelection};
pub use pipeline::{AblationVariant, GAlign, GAlignConfig, GAlignResult};
