//! Anchor-link instantiation policies on top of the alignment matrix.
//!
//! §VI-A instantiates one-to-one anchors by the top-1 rule and notes that
//! "other alignment settings such as one-to-many can be instantiated as
//! well". This module implements those instantiations as first-class
//! policies, all running off the blocked streaming engine in
//! [`galign_matrix::simblock`] — scores are produced block-at-a-time and
//! reduced in place, so no policy ever holds the full `n₁×n₂` matrix
//! (except [`greedy_injective`], whose candidate list is quadratic by
//! definition):
//!
//! * [`top1`] — the paper's rule: best target per source (not injective).
//! * [`greedy_injective`] — globally greedy one-to-one matching: pairs are
//!   taken in descending score order, each node used at most once (the
//!   standard approximation of maximum-weight bipartite matching).
//! * [`one_to_many`] — every target within `margin` of a source's best
//!   score (for differently sized networks where a source node may
//!   legitimately map to several targets).
//! * [`mutual_best`] — high-precision subset: pairs that are each other's
//!   argmax.

use galign_matrix::simblock::{self, ScoreProvider};
use rayon::prelude::*;

/// The paper's top-1 instantiation: for each source node, its best target.
pub fn top1(scores: &dyn ScoreProvider) -> Vec<(usize, usize)> {
    simblock::top1(scores)
}

/// Globally greedy injective matching: considers all `(v, u)` pairs in
/// descending score order and keeps a pair when both endpoints are unused.
/// NaN-scored pairs (degenerate embeddings) are never matched.
///
/// Returns pairs sorted by source id. `O(n₁ n₂ log(n₁ n₂))` time and
/// `O(n₁ n₂)` memory for the candidate list — intended for
/// instantiation-time use on the anchored subset, not for streaming-scale
/// matrices.
pub fn greedy_injective(scores: &dyn ScoreProvider) -> Vec<(usize, usize)> {
    let n1 = scores.num_sources();
    let n2 = scores.num_targets();
    let mut entries: Vec<(f64, usize, usize)> = simblock::map_blocks(scores, |rows, buf| {
        rows.clone()
            .enumerate()
            .flat_map(|(i, v)| {
                buf[i * n2..(i + 1) * n2]
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.is_nan())
                    .map(move |(u, &s)| (s, v, u))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    entries.par_sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
    let mut used_s = vec![false; n1];
    let mut used_t = vec![false; n2];
    let mut out = Vec::with_capacity(n1.min(n2));
    for (_, v, u) in entries {
        if !used_s[v] && !used_t[u] {
            used_s[v] = true;
            used_t[u] = true;
            out.push((v, u));
            if out.len() == n1.min(n2) {
                break;
            }
        }
    }
    out.sort_unstable();
    out
}

/// One-to-many instantiation: for each source node, all targets whose score
/// is within `margin` of the row maximum (and at least `min_score`).
pub fn one_to_many(
    scores: &dyn ScoreProvider,
    margin: f64,
    min_score: f64,
) -> Vec<(usize, Vec<usize>)> {
    let n2 = scores.num_targets();
    simblock::map_blocks(scores, |rows, buf| {
        rows.clone()
            .enumerate()
            .map(|(i, v)| {
                let row = &buf[i * n2..(i + 1) * n2];
                let best = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let matches: Vec<usize> = row
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s >= best - margin && s >= min_score)
                    .map(|(u, _)| u)
                    .collect();
                (v, matches)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Mutual-best pairs: `(v, u)` such that `u = argmax S(v, ·)` and
/// `v = argmax S(·, u)` — the high-precision subset used e.g. to seed
/// iterative expansion.
pub fn mutual_best(scores: &dyn ScoreProvider) -> Vec<(usize, usize)> {
    let n1 = scores.num_sources();
    let n2 = scores.num_targets();
    if n1 == 0 || n2 == 0 {
        return Vec::new();
    }
    let row_best = simblock::top1(scores);
    let col_best = simblock::column_argmax(scores);
    row_best
        .into_iter()
        .filter(|&(v, u)| col_best[u].0 == v)
        .collect()
}

/// Precision/recall/F1 of a predicted anchor set against ground truth
/// (order-insensitive exact pair matching).
pub fn pair_prf(predicted: &[(usize, usize)], truth: &[(usize, usize)]) -> (f64, f64, f64) {
    if predicted.is_empty() || truth.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let truth_set: std::collections::HashSet<(usize, usize)> = truth.iter().copied().collect();
    let hits = predicted.iter().filter(|p| truth_set.contains(p)).count() as f64;
    let precision = hits / predicted.len() as f64;
    let recall = hits / truth.len() as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::Dense;
    use galign_metrics::DenseScores;

    fn scores(rows: &[&[f64]]) -> DenseScores {
        DenseScores::new(
            Dense::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap(),
        )
    }

    #[test]
    fn top1_is_row_argmax() {
        let s = scores(&[&[0.1, 0.9], &[0.8, 0.2]]);
        assert_eq!(top1(&s), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn greedy_injective_resolves_conflicts() {
        // Both sources prefer target 0; the higher scorer gets it.
        let s = scores(&[&[0.9, 0.1], &[0.95, 0.5]]);
        let m = greedy_injective(&s);
        assert_eq!(m, vec![(0, 1), (1, 0)]);
        // top1 by contrast double-assigns target 0.
        assert_eq!(top1(&s), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn greedy_injective_handles_rectangular() {
        let s = scores(&[&[0.9], &[0.8], &[0.7]]);
        let m = greedy_injective(&s);
        assert_eq!(m, vec![(0, 0)]); // one target only
    }

    #[test]
    fn greedy_injective_survives_nan_scores() {
        // Degenerate embeddings can produce NaN scores; the old
        // `partial_cmp(..).expect("finite scores")` sort panicked here.
        // NaN pairs must be ignored, finite pairs still matched greedily.
        let s = scores(&[&[f64::NAN, 0.9], &[0.8, f64::NAN]]);
        let m = greedy_injective(&s);
        assert_eq!(m, vec![(0, 1), (1, 0)]);
        // An all-NaN matrix matches nothing instead of panicking.
        let all_nan = scores(&[&[f64::NAN, f64::NAN]]);
        assert!(greedy_injective(&all_nan).is_empty());
    }

    #[test]
    fn one_to_many_margin() {
        let s = scores(&[&[0.9, 0.85, 0.2]]);
        let m = one_to_many(&s, 0.1, 0.0);
        assert_eq!(m[0].1, vec![0, 1]);
        let tight = one_to_many(&s, 0.01, 0.0);
        assert_eq!(tight[0].1, vec![0]);
        // min_score filters everything.
        let none = one_to_many(&s, 0.1, 0.95);
        assert!(none[0].1.is_empty());
    }

    #[test]
    fn mutual_best_subset_of_top1() {
        let s = scores(&[&[0.9, 0.1], &[0.95, 0.5]]);
        // Row argmax: 0->0, 1->0. Col 0 argmax = 1, so only (1,0) is mutual.
        assert_eq!(mutual_best(&s), vec![(1, 0)]);
        let empty = scores(&[&[]]);
        assert!(mutual_best(&empty).is_empty());
    }

    #[test]
    fn prf_computation() {
        let predicted = vec![(0, 0), (1, 1), (2, 3)];
        let truth = vec![(0, 0), (1, 1), (2, 2), (3, 3)];
        let (p, r, f1) = pair_prf(&predicted, &truth);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        assert!(f1 > 0.5 && f1 < 0.6);
        assert_eq!(pair_prf(&[], &truth), (0.0, 0.0, 0.0));
    }
}
