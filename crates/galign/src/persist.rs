//! Model and embedding persistence.
//!
//! A trained [`GcnModel`] is just its weight matrices plus the input
//! dimension; persisting it lets a deployment train once and align many
//! network snapshots later (or resume refinement) without retraining.
//! The format is versioned JSON so older dumps keep loading. Every
//! fallible surface returns [`GAlignError`] — malformed files are an
//! error, never a panic.
//!
//! ## Crash safety
//!
//! All writes go through [`galign_telemetry::fsio::atomic_write_keep_prev`]
//! (tmp file in the same directory → flush → `sync_all` → rename), so a
//! crash mid-save never leaves a half-written file at the destination, and
//! the previous generation survives as `<name>.prev`. The `*_or_prev`
//! loaders exploit that: when the current file is corrupt they quarantine
//! it as `<name>.corrupt` and fall back to the previous generation,
//! returning [`GAlignError::Corrupt`] only when *both* generations are
//! unreadable.

use crate::error::{GAlignError, Result};
use galign_gcn::{GcnModel, MultiOrderEmbedding};
use galign_matrix::Dense;
use galign_telemetry::fsio;
use std::path::Path;

/// Current on-disk format version.
const FORMAT_VERSION: u32 = 1;

/// Rejects records stamped with a version this build cannot interpret.
///
/// Anything newer than [`FORMAT_VERSION`] was written by a later galign and
/// silently misreading it would be worse than failing, so the error says
/// exactly that. Version 0 never existed and marks a corrupt header.
fn check_version(kind: &str, version: u32) -> Result<()> {
    if version > FORMAT_VERSION {
        return Err(GAlignError::Format(format!(
            "{kind} format version {version} is newer than this build \
             supports (max {FORMAT_VERSION}); upgrade galign to read this file"
        )));
    }
    if version == 0 {
        return Err(GAlignError::Format(format!(
            "{kind} format version 0 is invalid (corrupt header?)"
        )));
    }
    Ok(())
}

#[derive(serde::Serialize, serde::Deserialize)]
struct ModelRecord {
    version: u32,
    input_dim: usize,
    weights: Vec<MatrixRecord>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct EmbeddingsRecord {
    version: u32,
    layers: Vec<MatrixRecord>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct MatrixRecord {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl From<&Dense> for MatrixRecord {
    fn from(m: &Dense) -> Self {
        MatrixRecord {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().to_vec(),
        }
    }
}

impl MatrixRecord {
    fn to_dense(&self) -> Result<Dense> {
        Ok(Dense::from_vec(self.rows, self.cols, self.data.clone())?)
    }
}

/// Saves a trained model as versioned JSON (atomically; any previous dump
/// is kept as `<name>.prev`).
///
/// # Errors
/// IO/serialisation failures.
pub fn save_model(model: &GcnModel, path: &Path) -> Result<()> {
    let record = ModelRecord {
        version: FORMAT_VERSION,
        input_dim: model.input_dim(),
        weights: model.weights().iter().map(MatrixRecord::from).collect(),
    };
    fsio::atomic_write_keep_prev(path, serde_json::to_string(&record)?.as_bytes())?;
    Ok(())
}

/// Loads a model saved by [`save_model`].
///
/// # Errors
/// IO failures, parse failures, unknown format versions, or weight shapes
/// that do not chain.
pub fn load_model(path: &Path) -> Result<GcnModel> {
    let text = std::fs::read_to_string(path)?;
    let record: ModelRecord = serde_json::from_str(&text)?;
    check_version("model", record.version)?;
    let weights = record
        .weights
        .iter()
        .map(MatrixRecord::to_dense)
        .collect::<Result<Vec<_>>>()?;
    let mut prev = record.input_dim;
    for w in &weights {
        if w.rows() != prev {
            return Err(GAlignError::Format("weight shapes do not chain".into()));
        }
        prev = w.cols();
    }
    Ok(GcnModel::from_weights(record.input_dim, weights))
}

/// Saves multi-order embeddings (all layers) as versioned JSON
/// (atomically; any previous dump is kept as `<name>.prev`).
///
/// # Errors
/// IO/serialisation failures.
pub fn save_embeddings(emb: &MultiOrderEmbedding, path: &Path) -> Result<()> {
    let record = EmbeddingsRecord {
        version: FORMAT_VERSION,
        layers: emb.layers().iter().map(MatrixRecord::from).collect(),
    };
    fsio::atomic_write_keep_prev(path, serde_json::to_string(&record)?.as_bytes())?;
    Ok(())
}

/// Loads embeddings saved by [`save_embeddings`].
///
/// Pre-versioning dumps were a bare JSON array of layer matrices; those
/// still load. Versioned records newer than this build are rejected rather
/// than misread.
///
/// # Errors
/// IO/parse failures or an unsupported format version.
pub fn load_embeddings(path: &Path) -> Result<MultiOrderEmbedding> {
    let text = std::fs::read_to_string(path)?;
    let value: serde_json::Value = serde_json::from_str(&text)?;
    let records: Vec<MatrixRecord> = if value.is_array() {
        serde_json::from_value(value)?
    } else {
        let record: EmbeddingsRecord = serde_json::from_value(value)?;
        check_version("embeddings", record.version)?;
        record.layers
    };
    let layers = records
        .iter()
        .map(MatrixRecord::to_dense)
        .collect::<Result<Vec<_>>>()?;
    Ok(MultiOrderEmbedding::from_layers(layers))
}

/// Whether a load failure means "the bytes at that path are bad" (so a
/// previous generation is worth trying) rather than "the file is absent or
/// unreadable at the OS level".
fn is_corruption(err: &GAlignError) -> bool {
    matches!(err, GAlignError::Format(_) | GAlignError::Matrix(_))
}

/// Shared quarantine-and-fall-back protocol of the `*_or_prev` loaders.
///
/// Falls back to `<name>.prev` in two states the atomic writer can leave
/// behind: the current file is corrupt (quarantined first), or it is
/// *missing* while a `.prev` exists — the crash window between the
/// keep-prev rename and the final rename.
fn load_or_prev<T>(path: &Path, load: impl Fn(&Path) -> Result<T>) -> Result<(T, bool)> {
    let primary = match load(path) {
        Ok(v) => return Ok((v, false)),
        Err(e) => e,
    };
    let missing =
        matches!(&primary, GAlignError::Io(e) if e.kind() == std::io::ErrorKind::NotFound);
    if !missing && !is_corruption(&primary) {
        return Err(primary);
    }
    let prev = fsio::prev_path(path);
    if missing {
        if !prev.exists() {
            // Genuinely absent, not a half-finished update.
            return Err(primary);
        }
    } else {
        // Move the broken file aside so the next attempt does not trip
        // over it again and the evidence survives for inspection.
        fsio::quarantine(path)?;
    }
    match load(&prev) {
        Ok(v) => {
            galign_telemetry::counter_add("persist.recovered_from_prev", 1);
            galign_telemetry::info!(
                "persist",
                "{} was {}; recovered previous generation {}",
                path.display(),
                if missing { "missing" } else { "corrupt" },
                prev.display()
            );
            Ok((v, true))
        }
        Err(fallback) => Err(GAlignError::Corrupt {
            path: path.to_path_buf(),
            reason: format!(
                "current generation: {primary}; previous generation \
                 ({}): {fallback}",
                prev.display()
            ),
        }),
    }
}

/// Loads a model, falling back to the `<name>.prev` generation when the
/// current file is corrupt (which is then quarantined as `<name>.corrupt`).
/// The boolean reports whether the fallback was taken.
///
/// # Errors
/// OS-level IO failures, or [`GAlignError::Corrupt`] when both the current
/// and previous generations are unreadable.
pub fn load_model_or_prev(path: &Path) -> Result<(GcnModel, bool)> {
    load_or_prev(path, load_model)
}

/// Loads embeddings, falling back to the `<name>.prev` generation when the
/// current file is corrupt (which is then quarantined as `<name>.corrupt`).
/// The boolean reports whether the fallback was taken.
///
/// # Errors
/// OS-level IO failures, or [`GAlignError::Corrupt`] when both the current
/// and previous generations are unreadable.
pub fn load_embeddings_or_prev(path: &Path) -> Result<(MultiOrderEmbedding, bool)> {
    load_or_prev(path, load_embeddings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_matrix::rng::SeededRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("galign-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn model_roundtrip() {
        let mut rng = SeededRng::new(1);
        let model = GcnModel::new(&mut rng, 6, &[8, 4]);
        let path = tmp("model.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.input_dim(), 6);
        assert_eq!(loaded.num_layers(), 2);
        for (a, b) in model.weights().iter().zip(loaded.weights()) {
            assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn loaded_model_produces_same_embeddings() {
        let mut rng = SeededRng::new(2);
        let edges = galign_graph::generators::erdos_renyi_gnm(&mut rng, 15, 30);
        let attrs = galign_graph::generators::binary_attributes(&mut rng, 15, 6, 2);
        let g = galign_graph::AttributedGraph::from_edges(15, &edges, attrs);
        let model = GcnModel::new(&mut rng, 6, &[5]);
        let path = tmp("model2.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        let a = model.forward(&g);
        let b = loaded.forward(&g);
        for l in 0..=1 {
            assert!(a.layer(l).approx_eq(b.layer(l), 0.0));
        }
    }

    #[test]
    fn embeddings_roundtrip() {
        let mut rng = SeededRng::new(3);
        let emb = MultiOrderEmbedding::from_layers(vec![
            rng.uniform_matrix(5, 3, -1.0, 1.0),
            rng.uniform_matrix(5, 4, -1.0, 1.0),
        ]);
        let path = tmp("emb.json");
        save_embeddings(&emb, &path).unwrap();
        let loaded = load_embeddings(&path).unwrap();
        assert_eq!(loaded.layers().len(), 2);
        assert!(loaded.layer(1).approx_eq(emb.layer(1), 0.0));
    }

    #[test]
    fn rejects_bad_version() {
        let path = tmp("bad.json");
        std::fs::write(&path, r#"{"version": 99, "input_dim": 2, "weights": []}"#).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, GAlignError::Format(_)), "{err:?}");
        assert!(err.to_string().contains("version 99"), "{err}");
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn rejects_version_zero() {
        let path = tmp("zero.json");
        std::fs::write(&path, r#"{"version": 0, "input_dim": 2, "weights": []}"#).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(err.to_string().contains("version 0"), "{err}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_model(&tmp("does-not-exist.json")).unwrap_err();
        assert!(matches!(err, GAlignError::Io(_)), "{err:?}");
    }

    #[test]
    fn garbage_json_is_a_format_error() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, GAlignError::Format(_)), "{err:?}");
    }

    #[test]
    fn embeddings_reject_future_version() {
        let path = tmp("future-emb.json");
        std::fs::write(
            &path,
            r#"{"version": 7, "layers": [{"rows": 1, "cols": 1, "data": [1.0]}]}"#,
        )
        .unwrap();
        let err = load_embeddings(&path).unwrap_err();
        assert!(matches!(err, GAlignError::Format(_)), "{err:?}");
        assert!(err.to_string().contains("version 7"), "{err}");
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn embeddings_load_legacy_bare_array() {
        // Dumps written before the embeddings format was versioned were a
        // bare array of matrices; they must keep loading.
        let path = tmp("legacy-emb.json");
        std::fs::write(&path, r#"[{"rows": 2, "cols": 1, "data": [0.5, -0.5]}]"#).unwrap();
        let emb = load_embeddings(&path).unwrap();
        assert_eq!(emb.layers().len(), 1);
        assert_eq!(emb.layer(0).get(1, 0), -0.5);
    }

    #[test]
    fn rejects_unchained_weights() {
        let path = tmp("unchained.json");
        std::fs::write(
            &path,
            r#"{"version": 1, "input_dim": 2,
               "weights": [{"rows": 2, "cols": 3, "data": [0,0,0,0,0,0]},
                            {"rows": 5, "cols": 1, "data": [0,0,0,0,0]}]}"#,
        )
        .unwrap();
        assert!(load_model(&path).is_err());
    }

    #[test]
    fn save_keeps_previous_generation() {
        let mut rng = SeededRng::new(40);
        let v1 = GcnModel::new(&mut rng, 4, &[3]);
        let v2 = GcnModel::new(&mut rng, 4, &[3]);
        let path = tmp("gen.json");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(fsio::prev_path(&path));
        save_model(&v1, &path).unwrap();
        save_model(&v2, &path).unwrap();
        let current = load_model(&path).unwrap();
        let previous = load_model(&fsio::prev_path(&path)).unwrap();
        assert!(current.weights()[0].approx_eq(&v2.weights()[0], 0.0));
        assert!(previous.weights()[0].approx_eq(&v1.weights()[0], 0.0));
    }

    #[test]
    fn corrupt_tail_falls_back_to_prev_and_quarantines() {
        let mut rng = SeededRng::new(41);
        let v1 = GcnModel::new(&mut rng, 5, &[4]);
        let v2 = GcnModel::new(&mut rng, 5, &[4]);
        let path = tmp("tail.json");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(fsio::prev_path(&path));
        save_model(&v1, &path).unwrap();
        save_model(&v2, &path).unwrap();
        // Simulate a torn write: chop the tail off the current generation.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let (loaded, fell_back) = load_model_or_prev(&path).unwrap();
        assert!(fell_back);
        // Recovery serves the *previous* generation (v1)…
        assert!(loaded.weights()[0].approx_eq(&v1.weights()[0], 0.0));
        // …and the broken file is quarantined, not left readable as valid.
        assert!(!path.exists());
        assert!(fsio::corrupt_path(&path).exists());
    }

    #[test]
    fn corrupt_with_no_prev_is_a_corrupt_error() {
        let path = tmp("orphan.json");
        let _ = std::fs::remove_file(fsio::prev_path(&path));
        std::fs::write(&path, "{definitely not json").unwrap();
        let err = load_model_or_prev(&path).unwrap_err();
        assert!(matches!(err, GAlignError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("orphan.json"), "{err}");
        assert!(!path.exists(), "corrupt file must be quarantined");
    }

    #[test]
    fn fallback_loader_passes_through_healthy_files() {
        let mut rng = SeededRng::new(42);
        let emb = MultiOrderEmbedding::from_layers(vec![rng.uniform_matrix(3, 2, -1.0, 1.0)]);
        let path = tmp("healthy-emb.json");
        save_embeddings(&emb, &path).unwrap();
        let (loaded, fell_back) = load_embeddings_or_prev(&path).unwrap();
        assert!(!fell_back);
        assert!(loaded.layer(0).approx_eq(emb.layer(0), 0.0));
    }

    #[test]
    fn fallback_loader_keeps_missing_file_an_io_error() {
        let err = load_model_or_prev(&tmp("never-written.json")).unwrap_err();
        assert!(matches!(err, GAlignError::Io(_)), "{err:?}");
    }

    #[test]
    fn missing_current_with_prev_recovers_the_crash_window() {
        // The state a crash between atomic_write_keep_prev's two renames
        // leaves behind: nothing at `path`, the old generation at `.prev`.
        let mut rng = SeededRng::new(43);
        let v1 = GcnModel::new(&mut rng, 4, &[3]);
        let v2 = GcnModel::new(&mut rng, 4, &[3]);
        let path = tmp("window.json");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(fsio::prev_path(&path));
        save_model(&v1, &path).unwrap();
        save_model(&v2, &path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let (loaded, fell_back) = load_model_or_prev(&path).unwrap();
        assert!(fell_back);
        assert!(loaded.weights()[0].approx_eq(&v1.weights()[0], 0.0));
    }

    #[test]
    fn bad_matrix_shape_is_an_error() {
        let path = tmp("badshape.json");
        std::fs::write(
            &path,
            r#"{"version": 1, "input_dim": 2,
               "weights": [{"rows": 2, "cols": 3, "data": [0.0]}]}"#,
        )
        .unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, GAlignError::Matrix(_)), "{err:?}");
    }
}
