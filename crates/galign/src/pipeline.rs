//! The end-to-end GAlign pipeline (Fig. 2): multi-order embedding →
//! alignment instantiation → refinement, plus the §VII-C ablation variants.
//!
//! Configuration is constructed through [`GAlignConfig::builder`], which
//! validates every hyper-parameter range once at build time; the pipeline
//! itself ([`GAlign::align`]) returns [`GAlignError`] on malformed inputs
//! instead of panicking.

use crate::alignment::{AlignmentMatrix, LayerSelection};
use crate::embedding::{embed_pair, EmbeddingConfig};
use crate::error::{GAlignError, Result};
use crate::refine::{refine, RefineConfig, RefineOperator, RefineOutcome};
use galign_gcn::model::Activation;
use galign_gcn::{GcnModel, TrainReport};
use galign_graph::AttributedGraph;
use galign_matrix::rng::SeededRng;
use std::time::Instant;

/// Ablation variants of §VII-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AblationVariant {
    /// The full model.
    #[default]
    Full,
    /// GAlign-1: no data augmentation; the loss keeps only the consistency
    /// term (γ = 1, zero augmented copies).
    NoAugmentation,
    /// GAlign-2: the refinement step is removed; the learned multi-order
    /// embeddings are used directly.
    NoRefinement,
    /// GAlign-3: only the final GCN layer's embeddings are used (the
    /// traditional single-order setting).
    LastLayerOnly,
}

/// Full pipeline configuration. Defaults reproduce §VII-A:
/// γ = 0.8, β = 1.1, λ = 0.94, k = 2, d = 200, uniform θ.
///
/// Construct through [`GAlignConfig::builder`] so out-of-range values are
/// rejected once, at build time, instead of surfacing as NaNs or panics
/// mid-pipeline.
#[derive(Debug, Clone, Default)]
pub struct GAlignConfig {
    /// Embedding/training stage parameters.
    pub embedding: EmbeddingConfig,
    /// Layer-importance weights θ⁽⁰⁾..θ⁽ᵏ⁾; `None` = uniform.
    pub theta: Option<Vec<f64>>,
    /// Refinement stage parameters.
    pub refine: RefineConfig,
    /// Which ablation variant to run.
    pub variant: AblationVariant,
}

impl GAlignConfig {
    /// Starts a validating builder from the paper's defaults.
    pub fn builder() -> GAlignConfigBuilder {
        GAlignConfigBuilder::default()
    }

    /// A configuration scaled down for quick experiments: smaller embedding
    /// dimension and fewer epochs/iterations, same structure — the
    /// [`GAlignConfigBuilder::fast`] preset.
    pub fn fast() -> Self {
        GAlignConfig::builder()
            .fast()
            .build()
            .expect("fast preset is valid")
    }

    /// Pre-builder shim: sets the ablation variant in place. Use
    /// [`GAlignConfigBuilder::variant`] instead; will be removed next
    /// release.
    #[doc(hidden)]
    pub fn with_variant(mut self, variant: AblationVariant) -> Self {
        self.variant = variant;
        self
    }
}

/// Fluent, validating builder for [`GAlignConfig`].
///
/// ```
/// use galign::prelude::*;
/// let cfg = GAlignConfig::builder()
///     .fast()
///     .epochs(10)
///     .noise(0.05, 0.05)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.embedding.epochs, 10);
/// assert!(GAlignConfig::builder().epochs(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GAlignConfigBuilder {
    config: GAlignConfig,
}

impl GAlignConfigBuilder {
    /// Starts from an existing configuration (it will be re-validated by
    /// [`GAlignConfigBuilder::build`]).
    pub fn from_config(config: GAlignConfig) -> Self {
        GAlignConfigBuilder { config }
    }

    /// The quick-experiment preset: 64-dim layers, 15 epochs, one
    /// augmented copy, 5 refinement iterations.
    #[must_use]
    pub fn fast(mut self) -> Self {
        self.config.embedding.layer_dims = vec![64, 64];
        self.config.embedding.epochs = 15;
        self.config.embedding.num_augments = 1;
        self.config.refine.iterations = 5;
        self
    }

    /// Embedding dimension per GCN layer (length = k).
    #[must_use]
    pub fn layer_dims(mut self, dims: Vec<usize>) -> Self {
        self.config.embedding.layer_dims = dims;
        self
    }

    /// Training epochs.
    #[must_use]
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.embedding.epochs = epochs;
        self
    }

    /// Adam learning rate.
    #[must_use]
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.config.embedding.learning_rate = lr;
        self
    }

    /// Loss balance γ (Eq. 10).
    #[must_use]
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.config.embedding.gamma = gamma;
        self
    }

    /// σ_< threshold (Eq. 9).
    #[must_use]
    pub fn adaptivity_threshold(mut self, threshold: f64) -> Self {
        self.config.embedding.adaptivity_threshold = threshold;
        self
    }

    /// Augmented copies per network.
    #[must_use]
    pub fn num_augments(mut self, n: usize) -> Self {
        self.config.embedding.num_augments = n;
        self
    }

    /// Augmenter noise rates: structural `p_s` and attribute `p_a`.
    #[must_use]
    pub fn noise(mut self, p_structure: f64, p_attribute: f64) -> Self {
        self.config.embedding.p_structure = p_structure;
        self.config.embedding.p_attribute = p_attribute;
        self
    }

    /// Activation σ of Eq. 1.
    #[must_use]
    pub fn activation(mut self, activation: Activation) -> Self {
        self.config.embedding.activation = activation;
        self
    }

    /// Early-stopping patience (`None` disables early stopping).
    #[must_use]
    pub fn patience(mut self, patience: Option<usize>) -> Self {
        self.config.embedding.patience = patience;
        self
    }

    /// Divergence watchdog configuration (`None` disables checkpointing,
    /// rollback and all divergence checks — the pre-watchdog behavior).
    #[must_use]
    pub fn watchdog(mut self, watchdog: Option<galign_gcn::WatchdogConfig>) -> Self {
        self.config.embedding.watchdog = watchdog;
        self
    }

    /// Epochs between watchdog checkpoints (re-enables the watchdog if it
    /// was disabled).
    #[must_use]
    pub fn checkpoint_every(mut self, epochs: usize) -> Self {
        self.config
            .embedding
            .watchdog
            .get_or_insert_with(Default::default)
            .checkpoint_every = epochs;
        self
    }

    /// Watchdog rollback budget before the run is declared diverged
    /// (re-enables the watchdog if it was disabled).
    #[must_use]
    pub fn max_recoveries(mut self, budget: usize) -> Self {
        self.config
            .embedding
            .watchdog
            .get_or_insert_with(Default::default)
            .max_recoveries = budget;
        self
    }

    /// Explicit layer weights θ⁽⁰⁾..θ⁽ᵏ⁾ (`None` = uniform).
    #[must_use]
    pub fn theta(mut self, theta: Option<Vec<f64>>) -> Self {
        self.config.theta = theta;
        self
    }

    /// Refinement iterations.
    #[must_use]
    pub fn refine_iterations(mut self, iterations: usize) -> Self {
        self.config.refine.iterations = iterations;
        self
    }

    /// Stability threshold λ (Eq. 13).
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config.refine.lambda = lambda;
        self
    }

    /// Influence accumulation constant β (Eq. 14).
    #[must_use]
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.refine.beta = beta;
        self
    }

    /// Refinement operator variant (Eq. 14 amplification vs literal Eq. 15).
    #[must_use]
    pub fn operator(mut self, operator: RefineOperator) -> Self {
        self.config.refine.operator = operator;
        self
    }

    /// Ablation variant (§VII-C).
    #[must_use]
    pub fn variant(mut self, variant: AblationVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Validates every range and returns the configuration.
    ///
    /// # Errors
    /// [`GAlignError::Config`] naming the offending field, or
    /// [`GAlignError::ThetaLength`] when an explicit θ does not have
    /// `k + 1` entries.
    pub fn build(self) -> Result<GAlignConfig> {
        let cfg = self.config;
        let e = &cfg.embedding;
        if e.layer_dims.is_empty() {
            return Err(GAlignError::Config("layer_dims must not be empty".into()));
        }
        if e.layer_dims.contains(&0) {
            return Err(GAlignError::Config(
                "layer_dims entries must be >= 1".into(),
            ));
        }
        if e.epochs == 0 {
            return Err(GAlignError::Config("epochs must be >= 1".into()));
        }
        if !e.learning_rate.is_finite() || e.learning_rate <= 0.0 {
            return Err(GAlignError::Config(format!(
                "learning_rate must be finite and > 0, got {}",
                e.learning_rate
            )));
        }
        if !e.gamma.is_finite() || !(0.0..=1.0).contains(&e.gamma) {
            return Err(GAlignError::Config(format!(
                "gamma must be in [0, 1], got {}",
                e.gamma
            )));
        }
        if !e.adaptivity_threshold.is_finite() || e.adaptivity_threshold < 0.0 {
            return Err(GAlignError::Config(format!(
                "adaptivity_threshold must be finite and >= 0, got {}",
                e.adaptivity_threshold
            )));
        }
        for (name, p) in [
            ("p_structure", e.p_structure),
            ("p_attribute", e.p_attribute),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(GAlignError::Config(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if !cfg.refine.lambda.is_finite() {
            return Err(GAlignError::Config(format!(
                "lambda must be finite, got {}",
                cfg.refine.lambda
            )));
        }
        if !cfg.refine.beta.is_finite() || cfg.refine.beta < 1.0 {
            return Err(GAlignError::Config(format!(
                "beta must be finite and >= 1, got {}",
                cfg.refine.beta
            )));
        }
        if let Some(w) = &e.watchdog {
            if w.checkpoint_every == 0 {
                return Err(GAlignError::Config(
                    "watchdog checkpoint_every must be >= 1".into(),
                ));
            }
            if !w.lr_backoff.is_finite()
                || !(0.0..=1.0).contains(&w.lr_backoff)
                || w.lr_backoff == 0.0
            {
                return Err(GAlignError::Config(format!(
                    "watchdog lr_backoff must be in (0, 1], got {}",
                    w.lr_backoff
                )));
            }
            if w.min_lr.is_nan() || w.min_lr < 0.0 {
                return Err(GAlignError::Config(format!(
                    "watchdog min_lr must be >= 0, got {}",
                    w.min_lr
                )));
            }
            if w.spike_factor.is_nan() || w.spike_factor <= 1.0 {
                return Err(GAlignError::Config(format!(
                    "watchdog spike_factor must be > 1, got {}",
                    w.spike_factor
                )));
            }
            if w.grad_norm_limit.is_nan() || w.grad_norm_limit <= 0.0 {
                return Err(GAlignError::Config(format!(
                    "watchdog grad_norm_limit must be > 0, got {}",
                    w.grad_norm_limit
                )));
            }
        }
        if let Some(theta) = &cfg.theta {
            let want = e.layer_dims.len() + 1;
            if theta.len() != want {
                return Err(GAlignError::ThetaLength {
                    got: theta.len(),
                    want,
                });
            }
            if theta.iter().any(|w| !w.is_finite()) {
                return Err(GAlignError::Config("theta entries must be finite".into()));
            }
        }
        Ok(cfg)
    }
}

/// Stage timings of one run, in seconds.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Embedding/training wall-clock.
    pub embedding_secs: f64,
    /// Refinement wall-clock (0 for the GAlign-2 variant).
    pub refinement_secs: f64,
    /// Alignment-matrix construction (matching) wall-clock.
    pub matching_secs: f64,
    /// End-to-end pipeline wall-clock (≥ the sum of the stages).
    pub total_secs: f64,
}

/// Result of a GAlign run.
#[derive(Debug, Clone)]
pub struct GAlignResult {
    /// The final (refined, unless ablated) alignment matrix.
    pub alignment: AlignmentMatrix,
    /// The trained shared-weight model (persist with `persist::save_model`
    /// to re-align future snapshots without retraining).
    pub model: GcnModel,
    /// Training diagnostics.
    pub train_report: TrainReport,
    /// Refinement diagnostics (`None` for the GAlign-2 variant).
    pub refine_outcome: Option<RefineOutcome>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl GAlignResult {
    /// Greedy one-to-one anchors (top-1 target per source node).
    pub fn top1_anchors(&self) -> Vec<(usize, usize)> {
        self.alignment.top1_anchors()
    }
}

/// The GAlign aligner.
#[derive(Debug, Clone, Default)]
pub struct GAlign {
    config: GAlignConfig,
}

impl GAlign {
    /// Creates an aligner with the given configuration.
    pub fn new(config: GAlignConfig) -> Self {
        GAlign { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GAlignConfig {
        &self.config
    }

    /// Aligns `source` to `target`; `seed` fixes all randomness
    /// (initialisation and augmentation).
    ///
    /// # Errors
    /// [`GAlignError::AttrDimMismatch`] when the networks' attribute
    /// dimensions differ (§II-C), [`GAlignError::ThetaLength`] when an
    /// explicit θ has the wrong length.
    pub fn align(
        &self,
        source: &AttributedGraph,
        target: &AttributedGraph,
        seed: u64,
    ) -> Result<GAlignResult> {
        if source.attr_dim() != target.attr_dim() {
            return Err(GAlignError::AttrDimMismatch {
                source: source.attr_dim(),
                target: target.attr_dim(),
            });
        }
        let num_layers_incl_attrs = self.config.embedding.num_layers() + 1;
        if let Some(theta) = &self.config.theta {
            if theta.len() != num_layers_incl_attrs {
                return Err(GAlignError::ThetaLength {
                    got: theta.len(),
                    want: num_layers_incl_attrs,
                });
            }
        }

        let total_start = Instant::now();
        let sp_pipeline = galign_telemetry::span!(
            "pipeline",
            variant = format!("{:?}", self.config.variant),
            source_nodes = source.node_count(),
            target_nodes = target.node_count(),
        );
        let mut rng = SeededRng::new(seed);
        let mut emb_cfg = self.config.embedding.clone();
        if self.config.variant == AblationVariant::NoAugmentation {
            emb_cfg.gamma = 1.0;
            emb_cfg.num_augments = 0;
        }

        let sp = galign_telemetry::span!("embedding", epochs = emb_cfg.epochs);
        let pair = embed_pair(source, target, &emb_cfg, &mut rng);
        let embedding_secs = sp.finish();

        let selection = match self.config.variant {
            AblationVariant::LastLayerOnly => {
                LayerSelection::single(emb_cfg.num_layers(), num_layers_incl_attrs)
            }
            _ => match &self.config.theta {
                Some(theta) => LayerSelection::weighted(theta.clone()),
                None => LayerSelection::uniform(num_layers_incl_attrs),
            },
        };

        let (alignment, refine_outcome, refinement_secs, matching_secs) = if self.config.variant
            == AblationVariant::NoRefinement
        {
            let sp = galign_telemetry::span!("match");
            let alignment = AlignmentMatrix::new(&pair.source, &pair.target, selection)?;
            (alignment, None, 0.0, sp.finish())
        } else {
            let sp = galign_telemetry::span!("refine", iterations = self.config.refine.iterations);
            let outcome = refine(
                &pair.model,
                source,
                target,
                &pair.source,
                &pair.target,
                &selection,
                &self.config.refine,
            );
            let refinement_secs = sp.finish();
            let sp = galign_telemetry::span!("match");
            let alignment = AlignmentMatrix::new(&outcome.source, &outcome.target, selection)?;
            (alignment, Some(outcome), refinement_secs, sp.finish())
        };
        sp_pipeline.finish();
        let total_secs = total_start.elapsed().as_secs_f64();

        Ok(GAlignResult {
            alignment,
            model: pair.model,
            train_report: pair.report,
            refine_outcome,
            timings: StageTimings {
                embedding_secs,
                refinement_secs,
                matching_secs,
                total_secs,
            },
        })
    }

    /// Pre-`GAlignError` shim for [`GAlign::align`]; will be removed next
    /// release.
    ///
    /// # Panics
    /// Panics where [`GAlign::align`] returns an error.
    #[doc(hidden)]
    pub fn align_or_panic(
        &self,
        source: &AttributedGraph,
        target: &AttributedGraph,
        seed: u64,
    ) -> GAlignResult {
        self.align(source, target, seed)
            .expect("valid align inputs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::{generators, noise};
    use galign_metrics::{evaluate, ScoreProvider};

    fn small_config() -> GAlignConfig {
        GAlignConfig::builder()
            .layer_dims(vec![8, 8])
            .epochs(12)
            .num_augments(1)
            .refine_iterations(3)
            .build()
            .unwrap()
    }

    fn permuted_pair(
        seed: u64,
        n: usize,
    ) -> (AttributedGraph, AttributedGraph, Vec<(usize, usize)>) {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        let perm = rng.permutation(n);
        let target = g.permute(&perm);
        let truth: Vec<(usize, usize)> = (0..n).map(|v| (v, perm[v])).collect();
        (g, target, truth)
    }

    /// The headline sanity check: on a noiseless permuted copy, GAlign must
    /// recover (nearly) the exact permutation.
    #[test]
    fn recovers_permutation_without_noise() {
        let (s, t, truth) = permuted_pair(1, 40);
        let result = GAlign::new(small_config()).align(&s, &t, 7).unwrap();
        let report = evaluate(&result.alignment, &truth, &[1]);
        assert!(
            report.success(1).unwrap() > 0.9,
            "Success@1 = {:?}",
            report.success(1)
        );
    }

    #[test]
    fn variants_run_and_differ_in_mechanics() {
        let (s, t, _) = permuted_pair(2, 25);
        let base = small_config();
        let full = GAlign::new(base.clone()).align(&s, &t, 3).unwrap();
        assert!(full.refine_outcome.is_some());
        let g2 = GAlign::new(
            GAlignConfigBuilder::from_config(base.clone())
                .variant(AblationVariant::NoRefinement)
                .build()
                .unwrap(),
        )
        .align(&s, &t, 3)
        .unwrap();
        assert!(g2.refine_outcome.is_none());
        let g3 = GAlign::new(
            GAlignConfigBuilder::from_config(base.clone())
                .variant(AblationVariant::LastLayerOnly)
                .build()
                .unwrap(),
        )
        .align(&s, &t, 3)
        .unwrap();
        let theta = &g3.alignment.selection().theta;
        assert_eq!(theta[0], 0.0);
        assert_eq!(*theta.last().unwrap(), 1.0);
        let g1 = GAlign::new(
            GAlignConfigBuilder::from_config(base)
                .variant(AblationVariant::NoAugmentation)
                .build()
                .unwrap(),
        )
        .align(&s, &t, 3)
        .unwrap();
        // No augmentation: still aligns, just trained without J_a.
        assert_eq!(g1.alignment.num_sources(), 25);
    }

    #[test]
    fn custom_theta_respected() {
        let (s, t, _) = permuted_pair(3, 20);
        let cfg = GAlignConfigBuilder::from_config(small_config())
            .theta(Some(vec![0.33, 0.5, 0.17]))
            .build()
            .unwrap();
        let r = GAlign::new(cfg).align(&s, &t, 1).unwrap();
        assert_eq!(r.alignment.selection().theta, vec![0.33, 0.5, 0.17]);
    }

    #[test]
    fn wrong_theta_length_is_an_error() {
        // The builder catches it at build time ...
        let err = GAlignConfigBuilder::from_config(small_config())
            .theta(Some(vec![1.0]))
            .build()
            .unwrap_err();
        assert!(matches!(err, GAlignError::ThetaLength { got: 1, want: 3 }));
        // ... and align() catches hand-assembled configs too.
        let (s, t, _) = permuted_pair(4, 15);
        let cfg = GAlignConfig {
            theta: Some(vec![1.0]),
            ..small_config()
        };
        let err = GAlign::new(cfg).align(&s, &t, 1).unwrap_err();
        assert!(matches!(err, GAlignError::ThetaLength { got: 1, want: 3 }));
    }

    #[test]
    fn mismatched_attr_dims_are_an_error() {
        let mut rng = SeededRng::new(9);
        let edges = generators::barabasi_albert(&mut rng, 10, 2);
        let a5 = generators::binary_attributes(&mut rng, 10, 5, 2);
        let a7 = generators::binary_attributes(&mut rng, 10, 7, 2);
        let s = AttributedGraph::from_edges(10, &edges, a5);
        let t = AttributedGraph::from_edges(10, &edges, a7);
        let err = GAlign::new(small_config()).align(&s, &t, 1).unwrap_err();
        assert!(matches!(
            err,
            GAlignError::AttrDimMismatch {
                source: 5,
                target: 7
            }
        ));
    }

    #[test]
    fn builder_validates_ranges() {
        assert!(GAlignConfig::builder().build().is_ok());
        assert!(GAlignConfig::builder().layer_dims(vec![]).build().is_err());
        assert!(GAlignConfig::builder()
            .layer_dims(vec![8, 0])
            .build()
            .is_err());
        assert!(GAlignConfig::builder().epochs(0).build().is_err());
        assert!(GAlignConfig::builder().learning_rate(0.0).build().is_err());
        assert!(GAlignConfig::builder()
            .learning_rate(f64::NAN)
            .build()
            .is_err());
        assert!(GAlignConfig::builder().gamma(1.5).build().is_err());
        assert!(GAlignConfig::builder().noise(-0.1, 0.0).build().is_err());
        assert!(GAlignConfig::builder().noise(0.0, 2.0).build().is_err());
        assert!(GAlignConfig::builder()
            .adaptivity_threshold(-1.0)
            .build()
            .is_err());
        assert!(GAlignConfig::builder().beta(0.5).build().is_err());
        assert!(GAlignConfig::builder().lambda(f64::NAN).build().is_err());
        assert!(GAlignConfig::builder()
            .theta(Some(vec![f64::NAN, 0.5, 0.5]))
            .build()
            .is_err());
        assert!(GAlignConfig::builder().checkpoint_every(0).build().is_err());
        let bad = galign_gcn::WatchdogConfig {
            lr_backoff: 1.5,
            ..Default::default()
        };
        assert!(GAlignConfig::builder().watchdog(Some(bad)).build().is_err());
    }

    #[test]
    fn watchdog_knobs_flow_into_the_embedding_config() {
        let cfg = GAlignConfig::builder()
            .checkpoint_every(2)
            .max_recoveries(7)
            .build()
            .unwrap();
        let w = cfg.embedding.watchdog.as_ref().unwrap();
        assert_eq!(w.checkpoint_every, 2);
        assert_eq!(w.max_recoveries, 7);
        // The knobs reach the trainer's config unchanged.
        let t = cfg.embedding.to_train_config();
        assert_eq!(t.watchdog.unwrap().max_recoveries, 7);
        // Opting out survives build().
        let off = GAlignConfig::builder().watchdog(None).build().unwrap();
        assert!(off.embedding.watchdog.is_none());
    }

    #[test]
    fn fast_preset_matches_fast_constructor() {
        let a = GAlignConfig::fast();
        let b = GAlignConfig::builder().fast().build().unwrap();
        assert_eq!(a.embedding.layer_dims, b.embedding.layer_dims);
        assert_eq!(a.embedding.epochs, b.embedding.epochs);
        assert_eq!(a.embedding.num_augments, b.embedding.num_augments);
        assert_eq!(a.refine.iterations, b.refine.iterations);
    }

    #[test]
    fn robust_to_mild_noise() {
        let (s, _, _) = permuted_pair(5, 40);
        let mut nrng = SeededRng::new(6);
        let (src, tgt, truth) = noise::noisy_copy_pair(&mut nrng, &s, 0.1, 0.0);
        let result = GAlign::new(small_config()).align(&src, &tgt, 9).unwrap();
        let report = evaluate(&result.alignment, truth.pairs(), &[1, 10]);
        assert!(
            report.success(10).unwrap() > 0.6,
            "Success@10 = {:?}",
            report.success(10)
        );
    }

    #[test]
    fn timings_populated() {
        let (s, t, _) = permuted_pair(7, 15);
        let r = GAlign::new(small_config()).align(&s, &t, 1).unwrap();
        assert!(r.timings.embedding_secs > 0.0);
        assert!(r.timings.matching_secs >= 0.0);
        assert!(r.timings.total_secs >= r.timings.embedding_secs);
        assert!(
            r.timings.total_secs
                >= r.timings.embedding_secs + r.timings.refinement_secs + r.timings.matching_secs
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t, _) = permuted_pair(8, 20);
        let a = GAlign::new(small_config()).align(&s, &t, 42).unwrap();
        let b = GAlign::new(small_config()).align(&s, &t, 42).unwrap();
        assert_eq!(a.top1_anchors(), b.top1_anchors());
    }
}
