//! The end-to-end GAlign pipeline (Fig. 2): multi-order embedding →
//! alignment instantiation → refinement, plus the §VII-C ablation variants.

use crate::alignment::{AlignmentMatrix, LayerSelection};
use crate::embedding::{embed_pair, EmbeddingConfig};
use crate::refine::{refine, RefineConfig, RefineOutcome};
use galign_gcn::{GcnModel, TrainReport};
use galign_graph::AttributedGraph;
use galign_matrix::rng::SeededRng;
use std::time::Instant;

/// Ablation variants of §VII-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AblationVariant {
    /// The full model.
    #[default]
    Full,
    /// GAlign-1: no data augmentation; the loss keeps only the consistency
    /// term (γ = 1, zero augmented copies).
    NoAugmentation,
    /// GAlign-2: the refinement step is removed; the learned multi-order
    /// embeddings are used directly.
    NoRefinement,
    /// GAlign-3: only the final GCN layer's embeddings are used (the
    /// traditional single-order setting).
    LastLayerOnly,
}

/// Full pipeline configuration. Defaults reproduce §VII-A:
/// γ = 0.8, β = 1.1, λ = 0.94, k = 2, d = 200, uniform θ.
#[derive(Debug, Clone, Default)]
pub struct GAlignConfig {
    /// Embedding/training stage parameters.
    pub embedding: EmbeddingConfig,
    /// Layer-importance weights θ⁽⁰⁾..θ⁽ᵏ⁾; `None` = uniform.
    pub theta: Option<Vec<f64>>,
    /// Refinement stage parameters.
    pub refine: RefineConfig,
    /// Which ablation variant to run.
    pub variant: AblationVariant,
}

impl GAlignConfig {
    /// A configuration scaled down for quick experiments: smaller embedding
    /// dimension and fewer epochs/iterations, same structure.
    pub fn fast() -> Self {
        GAlignConfig {
            embedding: EmbeddingConfig {
                layer_dims: vec![64, 64],
                epochs: 15,
                num_augments: 1,
                ..EmbeddingConfig::default()
            },
            refine: RefineConfig {
                iterations: 5,
                ..RefineConfig::default()
            },
            ..GAlignConfig::default()
        }
    }

    /// Sets the ablation variant (builder style).
    pub fn with_variant(mut self, variant: AblationVariant) -> Self {
        self.variant = variant;
        self
    }
}

/// Stage timings of one run, in seconds.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Embedding/training wall-clock.
    pub embedding_secs: f64,
    /// Refinement wall-clock (0 for the GAlign-2 variant).
    pub refinement_secs: f64,
    /// Alignment-matrix construction (matching) wall-clock.
    pub matching_secs: f64,
    /// End-to-end pipeline wall-clock (≥ the sum of the stages).
    pub total_secs: f64,
}

/// Result of a GAlign run.
#[derive(Debug, Clone)]
pub struct GAlignResult {
    /// The final (refined, unless ablated) alignment matrix.
    pub alignment: AlignmentMatrix,
    /// The trained shared-weight model (persist with `persist::save_model`
    /// to re-align future snapshots without retraining).
    pub model: GcnModel,
    /// Training diagnostics.
    pub train_report: TrainReport,
    /// Refinement diagnostics (`None` for the GAlign-2 variant).
    pub refine_outcome: Option<RefineOutcome>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl GAlignResult {
    /// Greedy one-to-one anchors (top-1 target per source node).
    pub fn top1_anchors(&self) -> Vec<(usize, usize)> {
        self.alignment.top1_anchors()
    }
}

/// The GAlign aligner.
#[derive(Debug, Clone, Default)]
pub struct GAlign {
    config: GAlignConfig,
}

impl GAlign {
    /// Creates an aligner with the given configuration.
    pub fn new(config: GAlignConfig) -> Self {
        GAlign { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GAlignConfig {
        &self.config
    }

    /// Aligns `source` to `target`; `seed` fixes all randomness
    /// (initialisation and augmentation).
    ///
    /// # Panics
    /// Panics when the networks' attribute dimensions differ (§II-C) or
    /// when an explicit θ has the wrong length.
    pub fn align(
        &self,
        source: &AttributedGraph,
        target: &AttributedGraph,
        seed: u64,
    ) -> GAlignResult {
        let total_start = Instant::now();
        let sp_pipeline = galign_telemetry::span!(
            "pipeline",
            variant = format!("{:?}", self.config.variant),
            source_nodes = source.node_count(),
            target_nodes = target.node_count(),
        );
        let mut rng = SeededRng::new(seed);
        let mut emb_cfg = self.config.embedding.clone();
        if self.config.variant == AblationVariant::NoAugmentation {
            emb_cfg.gamma = 1.0;
            emb_cfg.num_augments = 0;
        }

        let sp = galign_telemetry::span!("embedding", epochs = emb_cfg.epochs);
        let pair = embed_pair(source, target, &emb_cfg, &mut rng);
        let embedding_secs = sp.finish();

        let num_layers_incl_attrs = emb_cfg.num_layers() + 1;
        let selection = match self.config.variant {
            AblationVariant::LastLayerOnly => {
                LayerSelection::single(emb_cfg.num_layers(), num_layers_incl_attrs)
            }
            _ => match &self.config.theta {
                Some(theta) => {
                    assert_eq!(
                        theta.len(),
                        num_layers_incl_attrs,
                        "theta must have k+1 entries"
                    );
                    LayerSelection::weighted(theta.clone())
                }
                None => LayerSelection::uniform(num_layers_incl_attrs),
            },
        };

        let (alignment, refine_outcome, refinement_secs, matching_secs) = if self.config.variant
            == AblationVariant::NoRefinement
        {
            let sp = galign_telemetry::span!("match");
            let alignment = AlignmentMatrix::new(&pair.source, &pair.target, selection);
            (alignment, None, 0.0, sp.finish())
        } else {
            let sp = galign_telemetry::span!("refine", iterations = self.config.refine.iterations);
            let outcome = refine(
                &pair.model,
                source,
                target,
                &pair.source,
                &pair.target,
                &selection,
                &self.config.refine,
            );
            let refinement_secs = sp.finish();
            let sp = galign_telemetry::span!("match");
            let alignment = AlignmentMatrix::new(&outcome.source, &outcome.target, selection);
            (alignment, Some(outcome), refinement_secs, sp.finish())
        };
        sp_pipeline.finish();
        let total_secs = total_start.elapsed().as_secs_f64();

        GAlignResult {
            alignment,
            model: pair.model,
            train_report: pair.report,
            refine_outcome,
            timings: StageTimings {
                embedding_secs,
                refinement_secs,
                matching_secs,
                total_secs,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_graph::{generators, noise};
    use galign_metrics::{evaluate, ScoreProvider};

    fn small_config() -> GAlignConfig {
        GAlignConfig {
            embedding: EmbeddingConfig {
                layer_dims: vec![8, 8],
                epochs: 12,
                num_augments: 1,
                ..EmbeddingConfig::default()
            },
            refine: RefineConfig {
                iterations: 3,
                ..RefineConfig::default()
            },
            ..GAlignConfig::default()
        }
    }

    fn permuted_pair(
        seed: u64,
        n: usize,
    ) -> (AttributedGraph, AttributedGraph, Vec<(usize, usize)>) {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, n, 3);
        let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
        let g = AttributedGraph::from_edges(n, &edges, attrs);
        let perm = rng.permutation(n);
        let target = g.permute(&perm);
        let truth: Vec<(usize, usize)> = (0..n).map(|v| (v, perm[v])).collect();
        (g, target, truth)
    }

    /// The headline sanity check: on a noiseless permuted copy, GAlign must
    /// recover (nearly) the exact permutation.
    #[test]
    fn recovers_permutation_without_noise() {
        let (s, t, truth) = permuted_pair(1, 40);
        let result = GAlign::new(small_config()).align(&s, &t, 7);
        let report = evaluate(&result.alignment, &truth, &[1]);
        assert!(
            report.success(1).unwrap() > 0.9,
            "Success@1 = {:?}",
            report.success(1)
        );
    }

    #[test]
    fn variants_run_and_differ_in_mechanics() {
        let (s, t, _) = permuted_pair(2, 25);
        let base = small_config();
        let full = GAlign::new(base.clone()).align(&s, &t, 3);
        assert!(full.refine_outcome.is_some());
        let g2 =
            GAlign::new(base.clone().with_variant(AblationVariant::NoRefinement)).align(&s, &t, 3);
        assert!(g2.refine_outcome.is_none());
        let g3 =
            GAlign::new(base.clone().with_variant(AblationVariant::LastLayerOnly)).align(&s, &t, 3);
        let theta = &g3.alignment.selection().theta;
        assert_eq!(theta[0], 0.0);
        assert_eq!(*theta.last().unwrap(), 1.0);
        let g1 = GAlign::new(base.with_variant(AblationVariant::NoAugmentation)).align(&s, &t, 3);
        // No augmentation: still aligns, just trained without J_a.
        assert_eq!(g1.alignment.num_sources(), 25);
    }

    #[test]
    fn custom_theta_respected() {
        let (s, t, _) = permuted_pair(3, 20);
        let cfg = GAlignConfig {
            theta: Some(vec![0.33, 0.5, 0.17]),
            ..small_config()
        };
        let r = GAlign::new(cfg).align(&s, &t, 1);
        assert_eq!(r.alignment.selection().theta, vec![0.33, 0.5, 0.17]);
    }

    #[test]
    #[should_panic(expected = "theta must have k+1 entries")]
    fn wrong_theta_length_panics() {
        let (s, t, _) = permuted_pair(4, 15);
        let cfg = GAlignConfig {
            theta: Some(vec![1.0]),
            ..small_config()
        };
        GAlign::new(cfg).align(&s, &t, 1);
    }

    #[test]
    fn robust_to_mild_noise() {
        let (s, _, _) = permuted_pair(5, 40);
        let mut nrng = SeededRng::new(6);
        let (src, tgt, truth) = noise::noisy_copy_pair(&mut nrng, &s, 0.1, 0.0);
        let result = GAlign::new(small_config()).align(&src, &tgt, 9);
        let report = evaluate(&result.alignment, truth.pairs(), &[1, 10]);
        assert!(
            report.success(10).unwrap() > 0.6,
            "Success@10 = {:?}",
            report.success(10)
        );
    }

    #[test]
    fn timings_populated() {
        let (s, t, _) = permuted_pair(7, 15);
        let r = GAlign::new(small_config()).align(&s, &t, 1);
        assert!(r.timings.embedding_secs > 0.0);
        assert!(r.timings.matching_secs >= 0.0);
        assert!(r.timings.total_secs >= r.timings.embedding_secs);
        assert!(
            r.timings.total_secs
                >= r.timings.embedding_secs + r.timings.refinement_secs + r.timings.matching_secs
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t, _) = permuted_pair(8, 20);
        let a = GAlign::new(small_config()).align(&s, &t, 42);
        let b = GAlign::new(small_config()).align(&s, &t, 42);
        assert_eq!(a.top1_anchors(), b.top1_anchors());
    }
}
