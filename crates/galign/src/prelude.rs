//! The stable public surface in one import.
//!
//! ```
//! use galign::prelude::*;
//! # let _ = GAlignConfig::builder();
//! ```
//!
//! Re-exports the types a downstream user needs for the common
//! train-align-evaluate loop; internals (augmentation, persistence
//! records, refinement operators) stay behind their modules.

pub use crate::alignment::{AlignmentMatrix, LayerSelection};
pub use crate::error::{GAlignError, Result};
pub use crate::pipeline::{
    AblationVariant, GAlign, GAlignConfig, GAlignConfigBuilder, GAlignResult,
};
pub use galign_gcn::{TrainHealth, WatchdogConfig};
pub use galign_matrix::simblock::ScoreProvider;
