//! Alignment refinement (§VI-B, Algorithm 2): stability detection (Eq. 13)
//! and noise-aware propagation (Eq. 14–15) with greedy `g(S)` tracking.
//!
//! Note on Eq. 14 vs Eq. 15: the paper's AGG_w rule multiplies each message
//! by `α(v)·α(t)` (stable nodes *amplified*), while Eq. 15's literal
//! `D̂_q = D̂ Q` would divide by `√α`. We follow the stated intent: the
//! refined propagation operator is `C_q = Q C Q` with `Q = diag(α)` and
//! `C` the base normalised Laplacian (DESIGN.md §4.3).

use crate::alignment::{AlignmentMatrix, LayerSelection};
use crate::error::Result;
use galign_gcn::{GcnModel, MultiOrderEmbedding};
use galign_graph::AttributedGraph;
use galign_matrix::simblock::{self, DEFAULT_BLOCK_ROWS};

/// How stable-node influence enters the propagation operator — the Eq. 14
/// vs Eq. 15 ambiguity made explicit (DESIGN.md §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineOperator {
    /// `C_q = Q C Q` — stable nodes *amplified*, matching the AGG_w rule
    /// and Eq. 14's intent. The default.
    #[default]
    AmplifyStable,
    /// `C_q = Q^{-1/2} C Q^{-1/2}` — the literal reading of Eq. 15's
    /// `D̂_q = D̂Q`, which *dampens* stable nodes. Kept for the design
    /// ablation.
    DampenLiteral,
}

/// Refinement hyper-parameters (§VII-A defaults: λ = 0.94, β = 1.1).
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Number of refinement iterations ("some iterations" in Algorithm 2).
    pub iterations: usize,
    /// Stability threshold λ on layer-wise alignment scores (Eq. 13).
    pub lambda: f64,
    /// Influence accumulation constant β > 1 (Eq. 14).
    pub beta: f64,
    /// Operator variant (Eq. 14 amplification vs literal Eq. 15).
    pub operator: RefineOperator,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            iterations: 10,
            lambda: 0.94,
            beta: 1.1,
            operator: RefineOperator::AmplifyStable,
        }
    }
}

/// Result of the refinement search.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// Source embeddings of the best iterate (by `g(S)`).
    pub source: MultiOrderEmbedding,
    /// Target embeddings of the best iterate.
    pub target: MultiOrderEmbedding,
    /// Best greedy score `g(S)` observed.
    pub best_score: f64,
    /// `(#stable source nodes, #stable target nodes)` per iteration.
    pub stable_history: Vec<(usize, usize)>,
}

/// Per-row layer-wise maxima: `best[v][l] = (argmax, max)` of
/// `S⁽ˡ⁾(v, ·)`, plus the greedy aggregated score `g(S)` — computed by the
/// shared blocked engine in `O(block · n)` memory.
fn per_row_stats(
    src: &MultiOrderEmbedding,
    dst: &MultiOrderEmbedding,
    theta: &[f64],
) -> (Vec<Vec<(usize, f64)>>, f64) {
    simblock::layer_stats(src.layers(), dst.layers(), theta, DEFAULT_BLOCK_ROWS)
}

/// Stable nodes per Eq. 13: the layer-wise argmax is identical across all
/// layers and every layer-wise max exceeds λ.
fn stable_nodes(row_best: &[Vec<(usize, f64)>], lambda: f64) -> Vec<usize> {
    row_best
        .iter()
        .enumerate()
        .filter_map(|(v, layers)| {
            let (first_arg, _) = *layers.first()?;
            let stable = layers
                .iter()
                .all(|&(arg, max)| arg == first_arg && max > lambda);
            stable.then_some(v)
        })
        .collect()
}

/// Runs Algorithm 2: iterative stability-driven refinement of the
/// embeddings, returning the iterate with the highest greedy score `g(S)`.
pub fn refine(
    model: &GcnModel,
    source: &AttributedGraph,
    target: &AttributedGraph,
    initial_source: &MultiOrderEmbedding,
    initial_target: &MultiOrderEmbedding,
    selection: &LayerSelection,
    cfg: &RefineConfig,
) -> RefineOutcome {
    let c_s = source.normalized_laplacian();
    let c_t = target.normalized_laplacian();
    let mut alpha_s = vec![1.0f64; source.node_count()];
    let mut alpha_t = vec![1.0f64; target.node_count()];

    let mut current_s = initial_source.clone();
    let mut current_t = initial_target.clone();
    let mut best_s = current_s.clone();
    let mut best_t = current_t.clone();
    let mut best_score = f64::NEG_INFINITY;
    let mut stable_history = Vec::with_capacity(cfg.iterations);

    for iter in 0..=cfg.iterations {
        let ns = current_s.normalized();
        let nt = current_t.normalized();
        let (row_best, g) = per_row_stats(&ns, &nt, &selection.theta);
        if g > best_score {
            best_score = g;
            best_s = current_s.clone();
            best_t = current_t.clone();
        }
        if iter == cfg.iterations {
            break;
        }
        // Target-side stability mirrors the source side with roles swapped
        // (column argmax of S⁽ˡ⁾ = row argmax of the transposed product).
        let (col_best, _) = per_row_stats(&nt, &ns, &selection.theta);
        let stable_s = stable_nodes(&row_best, cfg.lambda);
        let stable_t = stable_nodes(&col_best, cfg.lambda);
        galign_telemetry::trace_event!(
            "refine",
            "iter {iter}: g(S)={g:.4} stable_s={} stable_t={}",
            stable_s.len(),
            stable_t.len()
        );
        stable_history.push((stable_s.len(), stable_t.len()));
        for &v in &stable_s {
            alpha_s[v] *= cfg.beta;
        }
        for &u in &stable_t {
            alpha_t[u] *= cfg.beta;
        }
        // Eq. 14/15 as resolved (AmplifyStable: C_q = Q C Q), or the
        // literal Eq. 15 reading for the ablation.
        let scale_of = |alpha: &[f64]| -> Vec<f64> {
            match cfg.operator {
                RefineOperator::AmplifyStable => alpha.to_vec(),
                RefineOperator::DampenLiteral => alpha.iter().map(|a| 1.0 / a.sqrt()).collect(),
            }
        };
        let (ss, st) = (scale_of(&alpha_s), scale_of(&alpha_t));
        let cq_s = c_s
            .diag_scale(&ss, &ss)
            .expect("alpha length matches node count");
        let cq_t = c_t
            .diag_scale(&st, &st)
            .expect("alpha length matches node count");
        current_s = model.forward_with_operator(&cq_s, source.attributes());
        current_t = model.forward_with_operator(&cq_t, target.attributes());
    }

    RefineOutcome {
        source: best_s,
        target: best_t,
        best_score,
        stable_history,
    }
}

/// Convenience: refine and wrap the winning embeddings into an
/// [`AlignmentMatrix`].
///
/// # Errors
/// [`crate::error::GAlignError::ThetaLength`] when `selection` does not
/// match the embeddings' layer count.
pub fn refine_to_alignment(
    model: &GcnModel,
    source: &AttributedGraph,
    target: &AttributedGraph,
    initial_source: &MultiOrderEmbedding,
    initial_target: &MultiOrderEmbedding,
    selection: LayerSelection,
    cfg: &RefineConfig,
) -> Result<(AlignmentMatrix, RefineOutcome)> {
    let outcome = refine(
        model,
        source,
        target,
        initial_source,
        initial_target,
        &selection,
        cfg,
    );
    let alignment = AlignmentMatrix::new(&outcome.source, &outcome.target, selection)?;
    Ok((alignment, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use galign_gcn::{train_multi_order, TrainConfig};
    use galign_graph::{generators, noise};
    use galign_matrix::rng::SeededRng;
    use galign_matrix::Dense;

    fn sample_problem(
        seed: u64,
    ) -> (
        AttributedGraph,
        AttributedGraph,
        GcnModel,
        MultiOrderEmbedding,
        MultiOrderEmbedding,
    ) {
        let mut rng = SeededRng::new(seed);
        let edges = generators::barabasi_albert(&mut rng, 30, 3);
        let attrs = generators::binary_attributes(&mut rng, 30, 8, 2);
        let g = AttributedGraph::from_edges(30, &edges, attrs);
        let mut noise_rng = SeededRng::new(seed + 1);
        let t = noise::augment(&mut noise_rng, &g, 0.1, 0.1);
        let cfg = TrainConfig {
            layer_dims: vec![6, 6],
            epochs: 10,
            num_augments: 1,
            ..TrainConfig::default()
        };
        let trained = train_multi_order(&g, &t, &cfg, &mut rng);
        (g, t, trained.model, trained.source, trained.target)
    }

    #[test]
    fn stable_nodes_criteria() {
        // Node 0: consistent argmax with high scores -> stable.
        // Node 1: inconsistent argmax -> unstable.
        // Node 2: consistent argmax but low score at one layer -> unstable.
        let row_best = vec![
            vec![(3, 0.99), (3, 0.97)],
            vec![(1, 0.99), (2, 0.99)],
            vec![(0, 0.99), (0, 0.5)],
        ];
        assert_eq!(stable_nodes(&row_best, 0.94), vec![0]);
        // Lower λ admits node 2.
        assert_eq!(stable_nodes(&row_best, 0.4), vec![0, 2]);
    }

    #[test]
    fn per_row_stats_simple() {
        let s = MultiOrderEmbedding::from_layers(vec![Dense::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ])
        .unwrap()]);
        let t = MultiOrderEmbedding::from_layers(vec![Dense::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ])
        .unwrap()]);
        let (best, g) = per_row_stats(&s, &t, &[1.0]);
        assert_eq!(best[0][0], (1, 1.0));
        assert_eq!(best[1][0], (0, 1.0));
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn refinement_never_worsens_greedy_score() {
        let (s, t, model, es, et) = sample_problem(1);
        let sel = LayerSelection::uniform(3);
        let initial = AlignmentMatrix::new(&es, &et, sel.clone())
            .unwrap()
            .greedy_score();
        let cfg = RefineConfig {
            iterations: 4,
            ..RefineConfig::default()
        };
        let outcome = refine(&model, &s, &t, &es, &et, &sel, &cfg);
        assert!(outcome.best_score >= initial - 1e-9);
        assert_eq!(outcome.stable_history.len(), 4);
    }

    #[test]
    fn zero_iterations_returns_initial() {
        let (s, t, model, es, et) = sample_problem(2);
        let sel = LayerSelection::uniform(3);
        let cfg = RefineConfig {
            iterations: 0,
            ..RefineConfig::default()
        };
        let outcome = refine(&model, &s, &t, &es, &et, &sel, &cfg);
        assert!(outcome.stable_history.is_empty());
        for l in 0..=2 {
            assert!(outcome.source.layer(l).approx_eq(es.layer(l), 0.0));
        }
    }

    #[test]
    fn refine_to_alignment_wraps_best() {
        let (s, t, model, es, et) = sample_problem(3);
        let cfg = RefineConfig {
            iterations: 3,
            ..RefineConfig::default()
        };
        let (alignment, outcome) =
            refine_to_alignment(&model, &s, &t, &es, &et, LayerSelection::uniform(3), &cfg)
                .unwrap();
        assert!((alignment.greedy_score() - outcome.best_score).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_handled() {
        let (best, g) = per_row_stats(
            &MultiOrderEmbedding::from_layers(vec![Dense::zeros(0, 2)]),
            &MultiOrderEmbedding::from_layers(vec![Dense::zeros(0, 2)]),
            &[1.0],
        );
        assert!(best.is_empty());
        assert_eq!(g, 0.0);
    }
}
