//! End-to-end fault-injection: the deterministic failure scenarios of the
//! robustness story, driven through the public pipeline + persistence
//! APIs with `galign-telemetry` failpoints.
//!
//! Run with `cargo test -p galign --features failpoints`.
#![cfg(feature = "failpoints")]

use galign::persist::{load_model_or_prev, save_model};
use galign::prelude::*;
use galign_gcn::GcnModel;
use galign_graph::{generators, AttributedGraph};
use galign_matrix::rng::SeededRng;
use galign_metrics::evaluate;
use galign_telemetry::failpoint;

fn permuted_pair(seed: u64, n: usize) -> (AttributedGraph, AttributedGraph, Vec<(usize, usize)>) {
    let mut rng = SeededRng::new(seed);
    let edges = generators::barabasi_albert(&mut rng, n, 3);
    let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
    let g = AttributedGraph::from_edges(n, &edges, attrs);
    let perm = rng.permutation(n);
    let target = g.permute(&perm);
    let truth: Vec<(usize, usize)> = (0..n).map(|v| (v, perm[v])).collect();
    (g, target, truth)
}

fn test_config() -> GAlignConfig {
    GAlignConfig::builder()
        .layer_dims(vec![8, 8])
        .epochs(12)
        .num_augments(1)
        .refine_iterations(3)
        // Checkpoint every healthy epoch so a rollback loses at most one
        // epoch of progress — the cheap-insurance end of the knob.
        .checkpoint_every(1)
        .build()
        .unwrap()
}

/// Scenario 1 (trainer): a NaN loss injected mid-training is detected,
/// rolled back, and the run finishes with accuracy comparable to an
/// uninjected run — end-to-end through `GAlign::align`.
#[test]
fn nan_at_epoch_k_recovers_and_preserves_accuracy() {
    let (s, t, truth) = permuted_pair(1, 40);

    let clean = GAlign::new(test_config()).align(&s, &t, 7).unwrap();
    assert_eq!(clean.train_report.recoveries, 0);
    assert_eq!(clean.train_report.health, TrainHealth::Healthy);
    let clean_s1 = evaluate(&clean.alignment, &truth, &[1]).success(1).unwrap();

    // Poison epoch 5's loss (and gradients) with NaN.
    failpoint::cfg_local("gcn.train.loss", "trigger(5)").unwrap();
    let injected = GAlign::new(test_config()).align(&s, &t, 7).unwrap();
    failpoint::clear_local();

    let report = &injected.train_report;
    assert!(report.recoveries >= 1, "the watchdog must have tripped");
    assert_eq!(report.health, TrainHealth::Recovered);
    assert!(
        report.loss_history.iter().all(|l| l.is_finite()),
        "the poisoned epoch must not reach the loss history: {:?}",
        report.loss_history
    );
    assert!(report.final_loss().is_finite());

    let s1 = evaluate(&injected.alignment, &truth, &[1])
        .success(1)
        .unwrap();
    assert!(
        s1 >= clean_s1 - 0.1,
        "post-recovery Success@1 {s1:.3} fell too far below the clean run's {clean_s1:.3}"
    );
}

/// Scenario 2 (persistence): a crash between the atomic writer's tmp-write
/// and final rename loses no committed generation — the loader falls back
/// to `<name>.prev` and a later save heals the store.
#[test]
fn crash_mid_write_recovers_the_previous_generation() {
    let dir = std::env::temp_dir().join("galign-fault-injection-crash");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");

    let mut rng = SeededRng::new(9);
    let v1 = GcnModel::new(&mut rng, 5, &[4]);
    let v2 = GcnModel::new(&mut rng, 5, &[4]);
    let v3 = GcnModel::new(&mut rng, 5, &[4]);
    save_model(&v1, &path).unwrap();
    save_model(&v2, &path).unwrap();

    // Crash the third save in the window between the keep-prev rename and
    // the final rename — the worst spot: nothing live at `path`.
    failpoint::cfg_local("fsio.atomic_write", "1*trigger").unwrap();
    let err = save_model(&v3, &path).unwrap_err();
    failpoint::clear_local();
    assert!(err.to_string().contains("simulated crash"), "{err}");

    // The last committed generation (v2) is recoverable; the torn update
    // never becomes readable as valid.
    let (recovered, fell_back) = load_model_or_prev(&path).unwrap();
    assert!(fell_back, "the loader must report the fallback");
    assert!(recovered.weights()[0].approx_eq(&v2.weights()[0], 0.0));

    // The store heals: the next save commits and loads normally.
    save_model(&v3, &path).unwrap();
    let (healed, fell_back) = load_model_or_prev(&path).unwrap();
    assert!(!fell_back);
    assert!(healed.weights()[0].approx_eq(&v3.weights()[0], 0.0));
}

/// Opting out of the watchdog pins the historical behavior: the injected
/// NaN poisons training to the end (this is what the watchdog exists to
/// prevent), and the pipeline still completes without panicking.
#[test]
fn watchdog_opt_out_lets_the_nan_poison_training() {
    let (s, t, _) = permuted_pair(2, 25);
    let cfg = GAlignConfigBuilder::from_config(test_config())
        .watchdog(None)
        .build()
        .unwrap();

    failpoint::cfg_local("gcn.train.loss", "trigger(3)").unwrap();
    let result = GAlign::new(cfg).align(&s, &t, 3).unwrap();
    failpoint::clear_local();

    let report = &result.train_report;
    assert_eq!(report.recoveries, 0);
    assert_eq!(
        report.health,
        TrainHealth::Healthy,
        "no watchdog, no verdict"
    );
    assert!(
        report.loss_history.iter().any(|l| l.is_nan()),
        "without the watchdog the NaN must reach the loss history: {:?}",
        report.loss_history
    );
}
