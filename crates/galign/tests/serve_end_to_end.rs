//! Full pipeline → artifact → server integration: align a small synthetic
//! pair, export the binary serving artifact, reload it from disk, serve it
//! over a real TCP socket, and check the served top-1 pairs against
//! `GAlignResult::top1_anchors()`. Also proves a corrupted artifact cannot
//! be loaded.

use galign::artifact::{artifact_from_result, export_artifact};
use galign::{GAlign, GAlignConfig};
use galign_graph::{generators, AttributedGraph};
use galign_matrix::rng::SeededRng;
use galign_serve::artifact::Artifact;
use galign_serve::json;
use galign_serve::server::{ServeConfig, Server};
use galign_serve::topk::TopkIndex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn permuted_pair(seed: u64, n: usize) -> (AttributedGraph, AttributedGraph) {
    let mut rng = SeededRng::new(seed);
    let edges = generators::barabasi_albert(&mut rng, n, 3);
    let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
    let g = AttributedGraph::from_edges(n, &edges, attrs);
    let perm = rng.permutation(n);
    let target = g.permute(&perm);
    (g, target)
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nhost: e2e\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn pipeline_to_served_queries_end_to_end() {
    // 1. Run the full unsupervised pipeline on a small synthetic pair.
    let (source, target) = permuted_pair(3, 30);
    let result = GAlign::new(GAlignConfig::fast())
        .align(&source, &target, 11)
        .unwrap();
    let expected = result.top1_anchors();
    assert_eq!(expected.len(), 30);

    // 2. Export the serving artifact and reload it from disk — the
    //    round-trip must be bit-exact.
    let dir = std::env::temp_dir().join("galign-serve-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("artifact.bin");
    export_artifact(&result, &path).unwrap();
    let reloaded = Artifact::read(&path).unwrap();
    assert_eq!(artifact_from_result(&result).unwrap(), reloaded);
    assert!(reloaded.rows_normalized);

    // 3. Serve the reloaded artifact over a real TCP socket and compare
    //    every top-1 answer with the pipeline's own anchors.
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", TopkIndex::from_artifact(reloaded), cfg)
        .expect("bind ephemeral port")
        .spawn();
    let nodes: Vec<String> = (0..30).map(|v| v.to_string()).collect();
    let body = format!("{{\"nodes\":[{}],\"k\":1}}", nodes.join(","));
    let (status, payload) = post_json(handle.addr(), "/v1/align/topk", &body);
    assert_eq!(status, 200, "{payload}");
    let doc = json::parse(&payload).expect("topk JSON");
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), expected.len());
    for ((v, u), entry) in expected.iter().zip(results) {
        assert_eq!(entry.get("node").unwrap().as_usize(), Some(*v));
        let matches = entry.get("matches").unwrap().as_arr().unwrap();
        assert_eq!(
            matches[0].get("target").unwrap().as_usize(),
            Some(*u),
            "served top-1 for node {v} disagrees with top1_anchors()"
        );
    }
    handle.shutdown().expect("clean shutdown");

    // 4. A corrupted artifact must be rejected at load time.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    let err = Artifact::from_bytes(&bytes).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
