//! Integration: one full pipeline run must emit well-formed JSONL
//! telemetry containing the expected stage spans, per-epoch training
//! gauges and kernel counters.
//!
//! Kept as the only test in this file: the telemetry sink is global per
//! process, and a dedicated integration-test binary gives it a process of
//! its own.

use galign::embedding::EmbeddingConfig;
use galign::refine::RefineConfig;
use galign::{GAlign, GAlignConfig};
use galign_graph::{generators, AttributedGraph};
use galign_matrix::rng::SeededRng;
use std::collections::BTreeSet;

#[test]
fn pipeline_emits_wellformed_jsonl() {
    let path = std::env::temp_dir().join("galign-telemetry-pipeline-test.jsonl");
    let _ = std::fs::remove_file(&path);
    galign_telemetry::attach_jsonl_path(&path).expect("attach jsonl sink");

    let mut rng = SeededRng::new(1);
    let edges = generators::barabasi_albert(&mut rng, 25, 3);
    let attrs = generators::binary_attributes(&mut rng, 25, 8, 2);
    let g = AttributedGraph::from_edges(25, &edges, attrs);
    let perm = rng.permutation(25);
    let t = g.permute(&perm);

    let cfg = GAlignConfig {
        embedding: EmbeddingConfig {
            layer_dims: vec![8, 8],
            epochs: 5,
            num_augments: 1,
            ..EmbeddingConfig::default()
        },
        refine: RefineConfig {
            iterations: 2,
            ..RefineConfig::default()
        },
        ..GAlignConfig::default()
    };
    let result = GAlign::new(cfg).align(&g, &t, 7).unwrap();
    assert!(result.timings.total_secs > 0.0);
    // Touch the blocked matching driver so the simblock counters below
    // reflect a real fused reduction, not just the refinement sweep.
    assert_eq!(result.top1_anchors().len(), 25);
    galign_telemetry::shutdown();

    let text = std::fs::read_to_string(&path).expect("read jsonl");
    assert!(!text.trim().is_empty(), "no telemetry written");

    let mut span_names = BTreeSet::new();
    let mut gauge_names = BTreeSet::new();
    let mut snapshot: Option<serde_json::Value> = None;
    let mut last_seq = -1i64;
    for (i, line) in text.lines().enumerate() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e}): {line}"));
        let obj = v
            .as_object()
            .unwrap_or_else(|| panic!("line {i} not an object"));
        let seq = obj["seq"].as_i64().expect("numeric seq");
        assert!(seq > last_seq, "seq not increasing at line {i}");
        last_seq = seq;
        assert!(obj["ms"].is_number(), "line {i} missing ms");
        match obj["type"].as_str().expect("record type") {
            "span" => {
                let name = obj["name"].as_str().expect("span name").to_string();
                assert!(obj["secs"].as_f64().expect("span secs") >= 0.0);
                assert!(obj["path"].as_str().expect("span path").contains(&name));
                span_names.insert(name);
            }
            "gauge" => {
                gauge_names.insert(obj["name"].as_str().expect("gauge name").to_string());
                assert!(obj["value"].is_number() || obj["value"].is_null());
            }
            "snapshot" => snapshot = Some(obj["metrics"].clone()),
            "event" => {
                assert!(obj["message"].is_string());
            }
            "tspan" => {
                // Request-scoped stage spans (serving path). The batch
                // pipeline emits none unless a trace context is active,
                // but any that appear must be well-formed.
                let trace = obj["trace"].as_str().expect("tspan trace id");
                assert!(galign_telemetry::TraceId::parse_hex(trace).is_some());
                assert!(obj["span"].is_number(), "line {i} missing span id");
                assert!(obj["name"].is_string(), "line {i} missing stage name");
                assert!(obj["us"].as_u64().is_some(), "line {i} missing duration");
            }
            other => panic!("line {i}: unexpected record type '{other}'"),
        }
    }

    for expected in ["pipeline", "embedding", "augment", "refine", "match"] {
        assert!(
            span_names.contains(expected),
            "missing span '{expected}' in {span_names:?}"
        );
    }
    for expected in ["train.loss", "train.lr", "train.grad_norm", "adam.lr"] {
        assert!(
            gauge_names.contains(expected),
            "missing gauge '{expected}' in {gauge_names:?}"
        );
    }

    let snapshot = snapshot.expect("flush wrote a snapshot record");
    let counters = snapshot["counters"].as_object().expect("counters object");
    for expected in [
        "matrix.gemm.calls",
        "matrix.spmm.calls",
        "matrix.alloc.elems",
        "adam.steps",
        "simblock.blocks",
        "simblock.flops",
        "simblock.alloc.elems",
    ] {
        let v = counters
            .get(expected)
            .unwrap_or_else(|| panic!("missing counter '{expected}'"))
            .as_u64()
            .expect("counter is u64");
        assert!(v > 0, "counter '{expected}' never incremented");
    }
    let histograms = snapshot["histograms"]
        .as_object()
        .expect("histograms object");
    assert!(
        histograms.contains_key("span.pipeline.secs"),
        "span durations not recorded as histograms: {histograms:?}"
    );
    assert!(histograms.contains_key("train.epoch_secs"));

    let _ = std::fs::remove_file(&path);
}
