//! Train-once, align-many: persist a trained GAlign model and reuse it to
//! align later snapshots of the same networks without retraining.
//!
//! This is the deployment pattern the weight-sharing design enables: the
//! GCN weights are network-agnostic (they act on the shared attribute
//! space), so a model trained on one snapshot pair embeds future snapshots
//! into the same space.
//!
//! Run with `cargo run --release --example model_reuse`.

use galign_suite::galign::alignment::{AlignmentMatrix, LayerSelection};
use galign_suite::galign::persist::{load_model, save_model};
use galign_suite::galign::{GAlign, GAlignConfig};
use galign_suite::graph::noise;
use galign_suite::matrix::rng::SeededRng;
use galign_suite::metrics::evaluate;

fn main() {
    // Snapshot 1 of a social network and its counterpart platform.
    let mut rng = SeededRng::new(3);
    let n = 100;
    let edges = galign_suite::graph::generators::barabasi_albert(&mut rng, n, 3);
    let attrs = galign_suite::graph::generators::binary_attributes(&mut rng, n, 12, 3);
    let snapshot1 = galign_suite::graph::AttributedGraph::from_edges(n, &edges, attrs);
    let task1 =
        galign_suite::datasets::synth::noisy_pair("snap1", &snapshot1, 0.05, 0.05, &mut rng);

    // Train + align snapshot 1, then persist the model.
    let result = GAlign::new(GAlignConfig::fast())
        .align(&task1.source, &task1.target, 1)
        .expect("align snapshot 1");
    let dir = std::env::temp_dir().join("galign-model-reuse");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let model_path = dir.join("model.json");
    save_model(&result.model, &model_path).expect("save model");
    let r1 = evaluate(&result.alignment, task1.truth.pairs(), &[1]);
    println!(
        "snapshot 1: trained, aligned (Success@1 = {:.3}), model saved to {}",
        r1.success(1).unwrap(),
        model_path.display()
    );

    // Time passes: both platforms evolve (new friendships, profile edits).
    let mut drift_rng = SeededRng::new(9);
    let source2 = noise::augment(&mut drift_rng, &task1.source, 0.05, 0.03);
    let target2 = noise::augment(&mut drift_rng, &task1.target, 0.05, 0.03);

    // Reload the model and align snapshot 2 with forward passes only —
    // no training loop.
    let model = load_model(&model_path).expect("load model");
    let start = std::time::Instant::now();
    let emb_s = model.forward(&source2);
    let emb_t = model.forward(&target2);
    let alignment = AlignmentMatrix::new(
        &emb_s,
        &emb_t,
        LayerSelection::uniform(model.num_layers() + 1),
    )
    .expect("forward passes share layer counts");
    let secs = start.elapsed().as_secs_f64();
    let r2 = evaluate(&alignment, task1.truth.pairs(), &[1, 10]);
    println!(
        "snapshot 2: aligned with the saved model in {:.2}s (no retraining): \
         Success@1 = {:.3}, Success@10 = {:.3}",
        secs,
        r2.success(1).unwrap(),
        r2.success(10).unwrap()
    );
    println!(
        "(training took {:.2}s — reuse amortises it across snapshots)",
        result.timings.embedding_secs
    );
}
