//! Noise-robustness study (a miniature of the paper's Figs. 3–4):
//! how GAlign's Success@1 degrades as structural and attribute noise grow,
//! and how much the adaptivity loss (data augmentation) helps.
//!
//! Run with `cargo run --release --example noise_robustness`.

use galign_suite::datasets::catalog::{email, noisy_task};
use galign_suite::galign::{AblationVariant, GAlign, GAlignConfig};
use galign_suite::metrics::evaluate;

fn run(variant: AblationVariant, p_s: f64, p_a: f64) -> f64 {
    let base = email(0.1, 77); // ~113-node email network
    let task = noisy_task(&base, "email", p_s, p_a, 13);
    let config = GAlignConfig::builder()
        .fast()
        .variant(variant)
        .build()
        .expect("preset is valid");
    let result = GAlign::new(config)
        .align(&task.source, &task.target, 5)
        .expect("align");
    evaluate(&result.alignment, task.truth.pairs(), &[1])
        .success(1)
        .unwrap_or(0.0)
}

fn main() {
    println!("structural noise sweep (email stand-in, Success@1):");
    println!("noise   GAlign   GAlign-1 (no augmentation)");
    for p_s in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let full = run(AblationVariant::Full, p_s, 0.0);
        let no_aug = run(AblationVariant::NoAugmentation, p_s, 0.0);
        println!("{p_s:.1}     {full:.4}   {no_aug:.4}");
    }

    println!("\nattribute noise sweep (email stand-in, Success@1):");
    println!("noise   GAlign");
    for p_a in [0.1, 0.3, 0.5] {
        let full = run(AblationVariant::Full, 0.0, p_a);
        println!("{p_a:.1}     {full:.4}");
    }

    println!(
        "\nExpected shape (paper, Figs. 3-4): Success@1 decays with noise; \
         the full model stays above the ablated one."
    );
}
