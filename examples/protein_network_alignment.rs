//! Cross-species protein-network alignment — the paper's bioinformatics
//! motivation (§I): align two protein-interaction networks to transfer
//! functional annotations between species.
//!
//! Two "species" are simulated as diverged copies of an ancestral
//! interaction network (interactions gained/lost since divergence, plus
//! annotation drift). GAlign is compared against IsoRank — the classic
//! tool for exactly this task (Singh et al., PNAS 2008).
//!
//! Run with `cargo run --release --example protein_network_alignment`.

use galign_suite::baselines::{AlignInput, Aligner, IsoRank};
use galign_suite::galign::{GAlign, GAlignConfig};
use galign_suite::graph::{generators, noise, AttributedGraph};
use galign_suite::matrix::rng::SeededRng;
use galign_suite::metrics::evaluate;

fn main() {
    // Ancestral proteome: small-world interaction structure, 16 binary
    // "functional annotation" attributes (GO-term-like).
    let mut rng = SeededRng::new(11);
    let n = 120;
    let edges = generators::watts_strogatz(&mut rng, n, 4, 0.15);
    let attrs = generators::binary_attributes(&mut rng, n, 16, 3);
    let ancestor = AttributedGraph::from_edges(n, &edges, attrs);

    // Species A and B diverge independently: 8 % interaction turnover and
    // 5 % annotation drift each.
    let mut div_rng = SeededRng::new(23);
    let species_a = noise::augment(&mut div_rng, &ancestor, 0.08, 0.05);
    let task =
        galign_suite::datasets::synth::noisy_pair("proteome", &species_a, 0.08, 0.05, &mut div_rng);
    println!("{}\n", task.summary());

    let galign_result = GAlign::new(GAlignConfig::fast())
        .align(&task.source, &task.target, 3)
        .expect("align proteomes");
    let galign_report = evaluate(&galign_result.alignment, task.truth.pairs(), &[1, 10]);

    // IsoRank with a 10 % ortholog seed prior (its usual setting).
    let mut split_rng = SeededRng::new(5);
    let order = split_rng.permutation(task.truth.len());
    let (train, _) = task.truth.split(0.1, &order);
    let input = AlignInput {
        source: &task.source,
        target: &task.target,
        seeds: train.pairs(),
        seed: 3,
    };
    let isorank_report = evaluate(
        &IsoRank::default().align_scores(&input),
        task.truth.pairs(),
        &[1, 10],
    );

    println!("method   Success@1  Success@10  MAP");
    println!(
        "GAlign   {:.4}     {:.4}      {:.4}",
        galign_report.success(1).unwrap(),
        galign_report.success(10).unwrap(),
        galign_report.map
    );
    println!(
        "IsoRank  {:.4}     {:.4}      {:.4}",
        isorank_report.success(1).unwrap(),
        isorank_report.success(10).unwrap(),
        isorank_report.map
    );

    // Annotation-transfer demo: for the most confident alignment, transfer
    // the source protein's annotations to its target counterpart.
    let anchors = galign_result.top1_anchors();
    let (p, q) = anchors[0];
    let annotations: Vec<usize> = task
        .source
        .attributes()
        .row(p)
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0.0)
        .map(|(i, _)| i)
        .collect();
    println!(
        "\nannotation transfer: protein A#{p} -> protein B#{q}, GO-like terms {annotations:?}"
    );
}
