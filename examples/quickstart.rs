//! Quickstart: align a small social network with a permuted, lightly
//! noised copy of itself and inspect the recovered anchors.
//!
//! Run with `cargo run --release --example quickstart`.

use galign_suite::galign::{GAlign, GAlignConfig};
use galign_suite::graph::{generators, AttributedGraph};
use galign_suite::matrix::rng::SeededRng;
use galign_suite::metrics::evaluate;

fn main() {
    // 1. Build an attributed network: 80 users, preferential-attachment
    //    friendships, 12 binary profile attributes.
    let mut rng = SeededRng::new(42);
    let n = 80;
    let edges = generators::barabasi_albert(&mut rng, n, 3);
    let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
    let source = AttributedGraph::from_edges(n, &edges, attrs);

    // 2. The "other platform": same users under unknown ids, with a few
    //    friendships missing and a few profiles edited.
    let mut noise_rng = SeededRng::new(7);
    let task = galign_suite::datasets::synth::noisy_pair(
        "quickstart",
        &source,
        0.05, // 5 % structural noise
        0.05, // 5 % attribute noise
        &mut noise_rng,
    );
    println!("{}", task.summary());

    // 3. Align, fully unsupervised.
    let config = GAlignConfig::builder()
        .fast()
        .build()
        .expect("valid preset");
    let result = GAlign::new(config)
        .align(&task.source, &task.target, 1)
        .expect("align");
    println!(
        "training loss: {:.3} -> {:.3} over {} epochs",
        result
            .train_report
            .loss_history
            .first()
            .unwrap_or(&f64::NAN),
        result.train_report.final_loss(),
        result.train_report.loss_history.len()
    );

    // 4. Evaluate against the known ground truth.
    let report = evaluate(&result.alignment, task.truth.pairs(), &[1, 5, 10]);
    println!(
        "Success@1 = {:.3}, Success@5 = {:.3}, Success@10 = {:.3}, MAP = {:.3}, AUC = {:.3}",
        report.success(1).unwrap(),
        report.success(5).unwrap(),
        report.success(10).unwrap(),
        report.map,
        report.auc
    );

    // 5. Show a few recovered anchors.
    let truth = task.truth.source_to_target();
    println!("\nfirst 10 predicted anchors (source -> target, * = correct):");
    for &(v, u) in result.top1_anchors().iter().take(10) {
        let mark = if truth.get(&v) == Some(&u) { "*" } else { " " };
        println!("  {v:>3} -> {u:>3} {mark}");
    }
}
