//! Social identity linkage — the paper's motivating application (§I):
//! find which accounts on two social platforms belong to the same person.
//!
//! Uses the Douban Online/Offline stand-in (a full social network vs a
//! small "offline activity" subset of its users — heavy size imbalance)
//! and compares unsupervised GAlign against FINAL, the strongest baseline,
//! which additionally receives a 10 % supervision prior.
//!
//! Run with `cargo run --release --example social_identity_linkage`.

use galign_suite::baselines::{AlignInput, Aligner, Final};
use galign_suite::datasets::douban;
use galign_suite::galign::{GAlign, GAlignConfig};
use galign_suite::matrix::rng::SeededRng;
use galign_suite::metrics::evaluate;

fn main() {
    let scale = 0.12; // ~470 online users, ~134 offline
    let task = douban(scale, 2020);
    println!("{}\n", task.summary());

    // GAlign: fully unsupervised.
    let galign_result = GAlign::new(GAlignConfig::fast())
        .align(&task.source, &task.target, 1)
        .expect("align identities");
    let galign_report = evaluate(&galign_result.alignment, task.truth.pairs(), &[1, 10]);

    // FINAL: gets a 10 % anchor prior, per the paper's protocol.
    let mut rng = SeededRng::new(99);
    let order = rng.permutation(task.truth.len());
    let (train, _) = task.truth.split(0.1, &order);
    let input = AlignInput {
        source: &task.source,
        target: &task.target,
        seeds: train.pairs(),
        seed: 1,
    };
    let final_scores = Final::default().align_scores(&input);
    let final_report = evaluate(&final_scores, task.truth.pairs(), &[1, 10]);

    println!("method   supervision  Success@1  Success@10  MAP");
    println!(
        "GAlign   none         {:.4}     {:.4}      {:.4}",
        galign_report.success(1).unwrap(),
        galign_report.success(10).unwrap(),
        galign_report.map
    );
    println!(
        "FINAL    10% anchors  {:.4}     {:.4}      {:.4}",
        final_report.success(1).unwrap(),
        final_report.success(10).unwrap(),
        final_report.map
    );

    // A concrete linkage decision, as a downstream application would make
    // it — for an online user known to have an offline counterpart.
    let truth_map = task.truth.source_to_target();
    let (v, u) = galign_result
        .top1_anchors()
        .into_iter()
        .find(|(v, _)| truth_map.contains_key(v))
        .expect("some anchored user exists");
    let correct = truth_map.get(&v) == Some(&u);
    println!(
        "\nexample decision: online user #{v} is offline user #{u} ({})",
        if correct { "correct" } else { "incorrect" }
    );
}
