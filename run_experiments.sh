#!/bin/sh
# Regenerates every table and figure of the paper's evaluation section.
# Usage: ./run_experiments.sh [--scale F] [--runs N]
set -e
ARGS="$@"
for exp in table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8; do
  echo "=== running exp_$exp $ARGS ==="
  cargo run --release -q -p galign-bench --bin "exp_$exp" -- $ARGS
done
