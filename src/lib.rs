//! Umbrella crate for the GAlign reproduction suite.
//!
//! Re-exports the individual crates so examples and integration tests can use
//! a single dependency. See the workspace README for the architecture map.
pub use galign;
pub use galign_autograd as autograd;
pub use galign_baselines as baselines;
pub use galign_datasets as datasets;
pub use galign_gcn as gcn;
pub use galign_graph as graph;
pub use galign_matrix as matrix;
pub use galign_metrics as metrics;
pub use galign_router as router;
pub use galign_serve as serve;
pub use galign_viz as viz;
