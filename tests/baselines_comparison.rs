//! Integration tests of the baseline aligners under the paper's protocol:
//! every method beats random guessing on an easy problem, and the relative
//! behaviours the paper reports (attribute-noise sensitivity of FINAL,
//! REGAL's structural focus) hold qualitatively.

use galign_suite::baselines::skipgram::SkipGramConfig;
use galign_suite::baselines::{
    AlignInput, Aligner, Cenalp, CenalpConfig, Final, IsoRank, Pale, Regal,
};
use galign_suite::datasets::synth::noisy_pair;
use galign_suite::datasets::AlignmentTask;
use galign_suite::graph::{generators, AttributedGraph};
use galign_suite::matrix::rng::SeededRng;
use galign_suite::metrics::evaluate;

fn make_task(seed: u64, n: usize, p_s: f64, p_a: f64) -> AlignmentTask {
    let mut rng = SeededRng::new(seed);
    let edges = generators::barabasi_albert(&mut rng, n, 3);
    let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
    let g = AttributedGraph::from_edges(n, &edges, attrs);
    noisy_pair("t", &g, p_s, p_a, &mut rng)
}

fn ten_percent(task: &AlignmentTask, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = SeededRng::new(seed);
    let order = rng.permutation(task.truth.len());
    let (train, _) = task.truth.split(0.1, &order);
    train.pairs().to_vec()
}

fn success10(aligner: &dyn Aligner, task: &AlignmentTask, seeds: &[(usize, usize)]) -> f64 {
    let input = AlignInput {
        source: &task.source,
        target: &task.target,
        seeds,
        seed: 17,
    };
    let scores = aligner.align_scores(&input);
    evaluate(&scores, task.truth.pairs(), &[10])
        .success(10)
        .unwrap()
}

#[test]
fn all_baselines_beat_random_on_easy_task() {
    let n = 40;
    let task = make_task(1, n, 0.02, 0.02);
    let seeds = ten_percent(&task, 2);
    let random_s10 = 10.0 / n as f64;
    let cenalp = Cenalp::new(CenalpConfig {
        rounds: 3,
        walks_per_node: 6,
        embedding: SkipGramConfig {
            dim: 48,
            epochs: 4,
            ..SkipGramConfig::default()
        },
        ..CenalpConfig::default()
    });
    let methods: Vec<(&str, Box<dyn Aligner>)> = vec![
        ("REGAL", Box::new(Regal::default())),
        ("IsoRank", Box::new(IsoRank::default())),
        ("FINAL", Box::new(Final::default())),
        ("CENALP", Box::new(cenalp)),
    ];
    for (name, aligner) in &methods {
        let s10 = success10(aligner.as_ref(), &task, &seeds);
        assert!(
            s10 > 1.5 * random_s10,
            "{name}: Success@10 {s10} vs random {random_s10}"
        );
    }
    // PALE's linear mapping is under-determined at 10 % of a 40-node truth
    // (4 anchors for a 64-dim map); with a 25 % split it must beat random —
    // mirroring the seed-hunger the paper reports for embedding+mapping
    // methods.
    let mut rng = SeededRng::new(9);
    let order = rng.permutation(task.truth.len());
    let (train, _) = task.truth.split(0.25, &order);
    let s10 = success10(&Pale::default(), &task, train.pairs());
    assert!(
        s10 > 1.5 * random_s10,
        "PALE: Success@10 {s10} vs random {random_s10}"
    );
}

/// Fig. 4's qualitative claim: REGAL (structure-first) degrades less under
/// attribute noise than FINAL (attribute-coupled).
#[test]
fn regal_more_robust_to_attribute_noise_than_final() {
    let drop = |aligner: &dyn Aligner| {
        let clean = make_task(3, 40, 0.0, 0.0);
        let noisy = make_task(3, 40, 0.0, 0.9);
        let seeds_c = ten_percent(&clean, 4);
        let seeds_n = ten_percent(&noisy, 4);
        success10(aligner, &clean, &seeds_c) - success10(aligner, &noisy, &seeds_n)
    };
    let regal_drop = drop(&Regal::default());
    let final_drop = drop(&Final::default());
    assert!(
        regal_drop <= final_drop + 0.15,
        "REGAL drop {regal_drop} should not exceed FINAL drop {final_drop} by much"
    );
}

/// Structural noise must hurt the structure-only methods (Fig. 3's trend).
#[test]
fn structural_noise_degrades_isorank() {
    let clean = make_task(5, 40, 0.0, 0.0);
    let noisy = make_task(5, 40, 0.5, 0.0);
    let s_clean = success10(&IsoRank::default(), &clean, &ten_percent(&clean, 6));
    let s_noisy = success10(&IsoRank::default(), &noisy, &ten_percent(&noisy, 6));
    assert!(
        s_clean >= s_noisy,
        "clean {s_clean} should be at least noisy {s_noisy}"
    );
}

/// The efficiency ordering the paper reports: REGAL is the fastest
/// baseline, CENALP by far the slowest.
#[test]
fn runtime_ordering_regal_fastest_cenalp_slowest() {
    let task = make_task(7, 60, 0.05, 0.05);
    let seeds = ten_percent(&task, 8);
    let time_of = |aligner: &dyn Aligner| {
        let input = AlignInput {
            source: &task.source,
            target: &task.target,
            seeds: &seeds,
            seed: 1,
        };
        let start = std::time::Instant::now();
        let _ = aligner.align(&input);
        start.elapsed().as_secs_f64()
    };
    let regal = time_of(&Regal::default());
    let cenalp = time_of(&Cenalp::default());
    assert!(
        cenalp > regal,
        "CENALP ({cenalp}s) should be slower than REGAL ({regal}s)"
    );
}
