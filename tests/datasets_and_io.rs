//! Integration tests of the dataset catalog and graph IO: every stand-in
//! builds at several scales, matches its Table II regime, and survives a
//! serialisation round trip.

use galign_suite::datasets::catalog::{bn, econ, email, TABLE2};
use galign_suite::datasets::{allmovie_imdb, douban, flickr_myspace};
use galign_suite::graph::io::{
    read_anchors_json, read_graph_json, write_anchors_json, write_graph_json,
};

#[test]
fn all_alignment_tasks_build_at_multiple_scales() {
    for &scale in &[0.05, 0.15] {
        for (name, task) in [
            ("douban", douban(scale, 1)),
            ("flickr-myspace", flickr_myspace(scale, 2)),
            ("allmovie-imdb", allmovie_imdb(scale, 3)),
        ] {
            assert!(task.source.node_count() > 0, "{name} empty source");
            assert!(task.target.node_count() > 0, "{name} empty target");
            assert!(!task.truth.is_empty(), "{name} has no anchors");
            assert_eq!(
                task.source.attr_dim(),
                task.target.attr_dim(),
                "{name} attribute spaces differ"
            );
            // Every anchor must reference valid nodes.
            for &(s, t) in task.truth.pairs() {
                assert!(s < task.source.node_count(), "{name} anchor src {s}");
                assert!(t < task.target.node_count(), "{name} anchor tgt {t}");
            }
        }
    }
}

#[test]
fn node_counts_scale_proportionally() {
    let small = douban(0.05, 7);
    let large = douban(0.15, 7);
    let ratio = large.source.node_count() as f64 / small.source.node_count() as f64;
    assert!((ratio - 3.0).abs() < 0.3, "scaling ratio {ratio}");
}

#[test]
fn single_networks_have_table2_attribute_dims() {
    assert_eq!(bn(0.1, 1).attr_dim(), 20);
    assert_eq!(econ(0.1, 2).attr_dim(), 20);
    assert_eq!(email(0.1, 3).attr_dim(), 20);
    // Table II constants exposed for documentation/tests.
    assert_eq!(TABLE2.iter().filter(|d| d.attrs == 20).count(), 3);
}

#[test]
fn graph_and_anchor_io_roundtrip_through_files() {
    let task = flickr_myspace(0.05, 9);
    let dir = std::env::temp_dir().join("galign-integration-io");
    std::fs::create_dir_all(&dir).unwrap();

    let gpath = dir.join("source.json");
    write_graph_json(&task.source, &gpath).unwrap();
    let g2 = read_graph_json(&gpath).unwrap();
    assert_eq!(g2.node_count(), task.source.node_count());
    assert_eq!(g2.edge_count(), task.source.edge_count());

    let apath = dir.join("anchors.json");
    write_anchors_json(&task.truth, &apath).unwrap();
    assert_eq!(read_anchors_json(&apath).unwrap(), task.truth);
}

#[test]
fn toy_movies_align_perfectly_under_galign() {
    use galign_suite::galign::{GAlign, GAlignConfig};
    use galign_suite::metrics::evaluate;
    let task = galign_suite::datasets::toy::toy_movies();
    let cfg = GAlignConfig::builder()
        .fast()
        .layer_dims(vec![16, 16])
        .epochs(40)
        .build()
        .unwrap();
    let result = GAlign::new(cfg)
        .align(&task.source, &task.target, 1)
        .unwrap();
    let report = evaluate(&result.alignment, task.truth.pairs(), &[1]);
    assert!(
        report.success(1).unwrap() >= 0.8,
        "toy Success@1 = {:?}",
        report.success(1)
    );
}
