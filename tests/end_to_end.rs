//! Cross-crate integration tests: the full GAlign pipeline against
//! synthesised alignment problems, evaluated with the metrics crate.

use galign_suite::datasets::synth::noisy_pair;
use galign_suite::galign::{AblationVariant, GAlign, GAlignConfig};
use galign_suite::graph::{generators, AttributedGraph};
use galign_suite::matrix::rng::SeededRng;
use galign_suite::metrics::evaluate;

fn base_graph(seed: u64, n: usize) -> AttributedGraph {
    let mut rng = SeededRng::new(seed);
    let edges = generators::barabasi_albert(&mut rng, n, 3);
    let attrs = generators::binary_attributes(&mut rng, n, 12, 3);
    AttributedGraph::from_edges(n, &edges, attrs)
}

fn fast_config() -> GAlignConfig {
    GAlignConfig::fast()
}

/// The paper's idealised setting (§IV-B): the target is a pure permutation
/// of the source. GAlign must recover it almost perfectly.
#[test]
fn recovers_pure_permutation() {
    let g = base_graph(1, 60);
    let mut rng = SeededRng::new(2);
    let task = noisy_pair("perm", &g, 0.0, 0.0, &mut rng);
    let result = GAlign::new(fast_config())
        .align(&task.source, &task.target, 3)
        .unwrap();
    let report = evaluate(&result.alignment, task.truth.pairs(), &[1]);
    assert!(
        report.success(1).unwrap() > 0.95,
        "Success@1 = {:?}",
        report.success(1)
    );
    assert!(report.map > 0.95);
    assert!(report.auc > 0.99);
}

/// Mild noise must not destroy alignment (R2 of §III-A).
#[test]
fn tolerates_mild_noise() {
    let g = base_graph(4, 60);
    let mut rng = SeededRng::new(5);
    let task = noisy_pair("noisy", &g, 0.1, 0.1, &mut rng);
    let result = GAlign::new(fast_config())
        .align(&task.source, &task.target, 6)
        .unwrap();
    let report = evaluate(&result.alignment, task.truth.pairs(), &[1, 10]);
    assert!(
        report.success(10).unwrap() > 0.7,
        "Success@10 = {:?}",
        report.success(10)
    );
}

/// Table IV's headline: the full model beats the single-order ablation
/// (GAlign-3) clearly on a noisy problem.
#[test]
fn multi_order_beats_last_layer_only() {
    let g = base_graph(7, 50);
    let mut rng = SeededRng::new(8);
    let task = noisy_pair("abl", &g, 0.1, 0.1, &mut rng);
    let s1 = |variant: AblationVariant| {
        let cfg = GAlignConfig::builder()
            .fast()
            .variant(variant)
            .build()
            .unwrap();
        let result = GAlign::new(cfg)
            .align(&task.source, &task.target, 9)
            .unwrap();
        evaluate(&result.alignment, task.truth.pairs(), &[1])
            .success(1)
            .unwrap()
    };
    let full = s1(AblationVariant::Full);
    let last_only = s1(AblationVariant::LastLayerOnly);
    assert!(
        full >= last_only,
        "full {full} should be at least last-layer-only {last_only}"
    );
}

/// Size-imbalanced alignment (Douban-style subset target) must still rank
/// the right counterpart highly for most anchored nodes.
#[test]
fn handles_size_imbalance() {
    let task = galign_suite::datasets::douban(0.08, 11);
    let result = GAlign::new(fast_config())
        .align(&task.source, &task.target, 12)
        .unwrap();
    let report = evaluate(&result.alignment, task.truth.pairs(), &[1, 10]);
    assert!(
        report.success(10).unwrap() > 0.6,
        "Success@10 = {:?}",
        report.success(10)
    );
}

/// The whole pipeline is deterministic given seeds — a requirement for
/// every experiment in the harness.
#[test]
fn pipeline_is_deterministic() {
    let g = base_graph(13, 40);
    let mut rng = SeededRng::new(14);
    let task = noisy_pair("det", &g, 0.05, 0.05, &mut rng);
    let r1 = GAlign::new(fast_config())
        .align(&task.source, &task.target, 15)
        .unwrap();
    let r2 = GAlign::new(fast_config())
        .align(&task.source, &task.target, 15)
        .unwrap();
    assert_eq!(r1.top1_anchors(), r2.top1_anchors());
    assert_eq!(r1.train_report.loss_history, r2.train_report.loss_history);
}
