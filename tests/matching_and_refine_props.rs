//! Property tests of the alignment-instantiation policies and the
//! refinement stage's invariants, run through the public API.

use galign_suite::galign::alignment::{AlignmentMatrix, LayerSelection};
use galign_suite::galign::matching;
use galign_suite::galign::refine::{refine, RefineConfig};
use galign_suite::gcn::{train_multi_order, GcnModel, TrainConfig};
use galign_suite::graph::{generators, AttributedGraph};
use galign_suite::matrix::rng::SeededRng;
use galign_suite::matrix::Dense;
use galign_suite::metrics::DenseScores;
use proptest::prelude::*;

fn random_scores(seed: u64, n1: usize, n2: usize) -> DenseScores {
    let mut rng = SeededRng::new(seed);
    DenseScores::new(rng.uniform_matrix(n1, n2, -1.0, 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// Greedy injective matching never reuses a node on either side and
    /// matches exactly min(n1, n2) pairs.
    #[test]
    fn greedy_matching_is_injective(seed in 0u64..500, n1 in 1usize..15, n2 in 1usize..15) {
        let s = random_scores(seed, n1, n2);
        let m = matching::greedy_injective(&s);
        prop_assert_eq!(m.len(), n1.min(n2));
        let mut src: Vec<usize> = m.iter().map(|&(v, _)| v).collect();
        let mut tgt: Vec<usize> = m.iter().map(|&(_, u)| u).collect();
        src.sort_unstable();
        src.dedup();
        tgt.sort_unstable();
        tgt.dedup();
        prop_assert_eq!(src.len(), m.len());
        prop_assert_eq!(tgt.len(), m.len());
    }

    /// Mutual-best pairs are a subset of top-1 pairs, and pairwise
    /// injective by construction.
    #[test]
    fn mutual_best_subset_of_top1(seed in 0u64..500, n in 2usize..12) {
        let s = random_scores(seed, n, n);
        let top1: std::collections::HashSet<(usize, usize)> =
            matching::top1(&s).into_iter().collect();
        let mutual = matching::mutual_best(&s);
        for p in &mutual {
            prop_assert!(top1.contains(p));
        }
        let mut tgts: Vec<usize> = mutual.iter().map(|&(_, u)| u).collect();
        tgts.sort_unstable();
        tgts.dedup();
        prop_assert_eq!(tgts.len(), mutual.len());
    }

    /// One-to-many with zero margin returns exactly the argmax set (all
    /// ties included), and a larger margin never shrinks any match set.
    #[test]
    fn one_to_many_monotone_in_margin(seed in 0u64..300, n in 2usize..10) {
        let s = random_scores(seed, n, n);
        let tight = matching::one_to_many(&s, 0.0, f64::NEG_INFINITY);
        let loose = matching::one_to_many(&s, 0.5, f64::NEG_INFINITY);
        for ((v1, m1), (v2, m2)) in tight.iter().zip(&loose) {
            prop_assert_eq!(v1, v2);
            prop_assert!(m1.len() <= m2.len());
            for u in m1 {
                prop_assert!(m2.contains(u));
            }
        }
    }

    /// Normalised alignment scores are cosine similarities: |S(v,u)| ≤ Σθ.
    #[test]
    fn alignment_scores_are_bounded(seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let layers_s = vec![
            rng.uniform_matrix(6, 3, -2.0, 2.0),
            rng.uniform_matrix(6, 4, -2.0, 2.0),
        ];
        let layers_t = vec![
            rng.uniform_matrix(5, 3, -2.0, 2.0),
            rng.uniform_matrix(5, 4, -2.0, 2.0),
        ];
        let s = galign_suite::gcn::MultiOrderEmbedding::from_layers(layers_s);
        let t = galign_suite::gcn::MultiOrderEmbedding::from_layers(layers_t);
        let am = AlignmentMatrix::new(&s, &t, LayerSelection::uniform(2)).unwrap();
        for v in 0..6 {
            for sc in galign_suite::metrics::ScoreProvider::score_row(&am, v) {
                prop_assert!(sc.abs() <= 1.0 + 1e-9);
            }
        }
    }
}

/// With λ above the cosine ceiling no node is ever stable, so α stays 1,
/// the operator stays `C`, and every refinement iterate equals the initial
/// embeddings.
#[test]
fn refinement_with_impossible_lambda_is_identity() {
    let mut rng = SeededRng::new(1);
    let edges = generators::barabasi_albert(&mut rng, 25, 3);
    let attrs = generators::binary_attributes(&mut rng, 25, 6, 2);
    let g = AttributedGraph::from_edges(25, &edges, attrs);
    let cfg = TrainConfig {
        layer_dims: vec![5, 5],
        epochs: 5,
        num_augments: 0,
        gamma: 1.0,
        ..TrainConfig::default()
    };
    let trained = train_multi_order(&g, &g, &cfg, &mut rng);
    let refine_cfg = RefineConfig {
        iterations: 3,
        lambda: 2.0, // cosine scores can never exceed 1
        ..RefineConfig::default()
    };
    let outcome = refine(
        &trained.model,
        &g,
        &g,
        &trained.source,
        &trained.target,
        &LayerSelection::uniform(3),
        &refine_cfg,
    );
    for (s_count, t_count) in &outcome.stable_history {
        assert_eq!((*s_count, *t_count), (0, 0));
    }
    for l in 0..=2 {
        assert!(outcome
            .source
            .layer(l)
            .approx_eq(trained.source.layer(l), 1e-12));
    }
}

/// Aligning a graph with itself using an untrained (random-weight) model
/// still scores the identity pair maximally at every layer — a direct
/// consequence of Prop. 2 exercised through the alignment stage.
#[test]
fn self_alignment_diagonal_dominates_with_random_weights() {
    let mut rng = SeededRng::new(2);
    let edges = generators::erdos_renyi_gnm(&mut rng, 20, 50);
    let attrs = generators::binary_attributes(&mut rng, 20, 8, 2);
    let g = AttributedGraph::from_edges(20, &edges, attrs);
    let model = GcnModel::new(&mut rng, 8, &[6, 6]);
    let emb = model.forward(&g);
    let am = AlignmentMatrix::new(&emb, &emb, LayerSelection::uniform(3)).unwrap();
    #[allow(deprecated)]
    let m: Dense = am.materialize();
    for v in 0..20 {
        let (arg, _) = m.row_argmax(v).unwrap();
        assert_eq!(arg, v, "node {v} should match itself");
    }
}
