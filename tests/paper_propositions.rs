//! Property-based verification of the paper's theoretical claims
//! (Propositions 1 and 2 of §IV) on the real model implementation.

use galign_suite::gcn::GcnModel;
use galign_suite::graph::{generators, AttributedGraph};
use galign_suite::matrix::rng::SeededRng;
use galign_suite::matrix::Dense;
use proptest::prelude::*;

fn random_graph(seed: u64, n: usize) -> AttributedGraph {
    let mut rng = SeededRng::new(seed);
    let edges = generators::erdos_renyi_gnm(&mut rng, n, 2 * n);
    let attrs = generators::binary_attributes(&mut rng, n, 6, 2);
    AttributedGraph::from_edges(n, &edges, attrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Proposition 1: with shared weights, `H_t⁽ˡ⁾ = P H_s⁽ˡ⁾` whenever
    /// `A_t = P A_s Pᵀ` — GCN embeddings are permutation-equivariant.
    #[test]
    fn proposition_1_permutation_equivariance(seed in 0u64..200, n in 5usize..30) {
        let g = random_graph(seed, n);
        let mut rng = SeededRng::new(seed + 1);
        let perm = rng.permutation(n);
        let permuted = g.permute(&perm);
        let model = GcnModel::new(&mut rng, 6, &[7, 5]);
        let e_src = model.forward(&g);
        let e_tgt = model.forward(&permuted);
        for l in 0..=2 {
            for v in 0..n {
                let a = e_src.layer(l).row(v);
                let b = e_tgt.layer(l).row(perm[v]);
                for (x, y) in a.iter().zip(b) {
                    prop_assert!((x - y).abs() < 1e-9);
                }
            }
        }
    }

    /// Proposition 2 (special case exercised end-to-end): two nodes of the
    /// same graph whose closed neighbourhoods match exactly in degree and
    /// layer-l embedding receive identical layer-(l+1) embeddings.
    #[test]
    fn proposition_2_matched_neighbourhoods(seed in 0u64..200) {
        // Construct twins explicitly: nodes 0 and 1 both connect to
        // exactly {2, 3} and share attributes.
        let mut attrs = Dense::zeros(5, 3);
        for v in 0..5 {
            attrs.set(v, v % 3, 1.0);
        }
        attrs.row_mut(1).copy_from_slice(&[1.0, 0.0, 0.0]);
        attrs.row_mut(0).copy_from_slice(&[1.0, 0.0, 0.0]);
        let g = AttributedGraph::from_edges(
            5,
            &[(0, 2), (0, 3), (1, 2), (1, 3), (2, 4), (3, 4)],
            attrs,
        );
        let mut rng = SeededRng::new(seed);
        let model = GcnModel::new(&mut rng, 3, &[6, 4]);
        let emb = model.forward(&g);
        // Nodes 0 and 1: deg 2 each, same neighbours, same attributes ⇒
        // identical embeddings at every layer.
        for l in 0..=2 {
            let a = emb.layer(l).row(0);
            let b = emb.layer(l).row(1);
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-12, "layer {}", l);
            }
        }
    }

    /// tanh keeps every hidden feature in (-1, 1) — the bounded range the
    /// alignment-score normalisation relies on.
    #[test]
    fn embeddings_are_tanh_bounded(seed in 0u64..100, n in 5usize..25) {
        let g = random_graph(seed, n);
        let mut rng = SeededRng::new(seed);
        let model = GcnModel::new(&mut rng, 6, &[8, 8]);
        let emb = model.forward(&g);
        for l in 1..=2 {
            prop_assert!(emb.layer(l).as_slice().iter().all(|v| v.abs() < 1.0));
        }
    }
}
