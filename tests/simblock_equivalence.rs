//! Equivalence properties of the blocked streaming similarity engine: the
//! fused top-1/top-k reductions must be bit-identical to materialising the
//! full similarity matrix and scanning it — including under heavy ties and
//! k > n — and a server answering `/v1/align/topk` from the shared kernel
//! must agree with an independent Eq. 11–12 reference evaluation.

use galign_suite::matrix::rng::SeededRng;
use galign_suite::matrix::simblock::{self, select_topk_bruteforce, SimPanel};
use galign_suite::matrix::Dense;
use proptest::prelude::*;

/// Tie-heavy random layer: entries drawn from a 5-value grid so equal
/// scores are common, then row-normalised like the pipeline does.
fn quantized_layers(seed: u64, n: usize, dims: &[usize]) -> Vec<Dense> {
    let mut rng = SeededRng::new(seed);
    dims.iter()
        .map(|&d| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..d)
                        .map(|_| ((rng.uniform(0.0, 5.0)).floor() - 2.0) / 2.0)
                        .collect()
                })
                .collect();
            Dense::from_rows(&rows).unwrap().normalize_rows()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked top-k equals materialise-then-argsort, bit for bit, for
    /// every row, every block size, and k beyond the target count.
    #[test]
    fn blocked_topk_is_bit_identical_to_materialized(
        seed in 0u64..1000,
        n1 in 1usize..14,
        n2 in 1usize..18,
        block in 1usize..20,
        k in 1usize..24,
    ) {
        let dims = [3usize, 2];
        let source = quantized_layers(seed, n1, &dims);
        let target = quantized_layers(seed ^ 0xBEEF, n2, &dims);
        let theta = vec![0.4, 0.6];
        let panel = SimPanel::new(&source, &target, &theta)
            .unwrap()
            .with_block_rows(block);

        let dense = simblock::materialize(&panel);
        let blocked = simblock::topk(&panel, k);
        prop_assert_eq!(blocked.len(), n1);
        for v in 0..n1 {
            let row = &dense.as_slice()[v * n2..(v + 1) * n2];
            let reference = select_topk_bruteforce(row, k);
            prop_assert_eq!(blocked[v].len(), reference.len());
            for (b, r) in blocked[v].iter().zip(&reference) {
                prop_assert_eq!(b.target, r.target, "row {}", v);
                prop_assert_eq!(b.score.to_bits(), r.score.to_bits(), "row {}", v);
            }
        }

        let top1 = simblock::top1(&panel);
        prop_assert_eq!(top1.len(), n1);
        for &(v, u) in &top1 {
            prop_assert_eq!(u, select_topk_bruteforce(
                &dense.as_slice()[v * n2..(v + 1) * n2], 1)[0].target);
        }
    }
}

/// End-to-end kernel-swap proof: a served `/v1/align/topk` response must
/// match a from-scratch Eq. 11–12 evaluation (normalise rows, θ-weighted
/// layer dot products, argsort) computed without any serve or simblock
/// scoring code in the loop.
#[test]
fn served_topk_matches_independent_reference() {
    use galign_suite::serve::artifact::{Artifact, Mat};
    use galign_suite::serve::json;
    use galign_suite::serve::server::{ServeConfig, Server};
    use galign_suite::serve::topk::TopkIndex;
    use std::io::{Read, Write};

    let (n_s, n_t, dims) = (12usize, 15usize, [4usize, 3]);
    let theta = vec![0.3, 0.7];
    let mut rng = SeededRng::new(99);
    let mut raw = |n: usize| -> Vec<Dense> {
        dims.iter()
            .map(|&d| rng.uniform_matrix(n, d, -1.0, 1.0))
            .collect::<Vec<_>>()
    };
    let (source, target) = (raw(n_s), raw(n_t));

    // Reference: hand-rolled scoring on independently normalised copies.
    let norm = |ls: &[Dense]| ls.iter().map(Dense::normalize_rows).collect::<Vec<_>>();
    let (ns, nt) = (norm(&source), norm(&target));
    let score = |v: usize, u: usize| -> f64 {
        let mut s = 0.0;
        for (l, &w) in theta.iter().enumerate() {
            let (a, b) = (ns[l].row(v), nt[l].row(u));
            s += w * a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        }
        s
    };

    // Serve the raw (unnormalised) layers: the server normalises at load.
    let to_mats = |ls: &[Dense]| {
        ls.iter()
            .map(|d| Mat::new(d.rows(), d.cols(), d.as_slice().to_vec()).unwrap())
            .collect::<Vec<_>>()
    };
    let artifact = Artifact::new(theta.clone(), to_mats(&source), to_mats(&target), false).unwrap();
    let handle = Server::bind(
        "127.0.0.1:0",
        TopkIndex::from_artifact(artifact),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn();

    let k = 4;
    let nodes: Vec<String> = (0..n_s).map(|v| v.to_string()).collect();
    let body = format!("{{\"nodes\":[{}],\"k\":{k}}}", nodes.join(","));
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST /v1/align/topk HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let payload = response.split_once("\r\n\r\n").expect("http body").1;
    let doc = json::parse(payload).expect("topk JSON");
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), n_s);

    for (v, entry) in results.iter().enumerate() {
        let row: Vec<f64> = (0..n_t).map(|u| score(v, u)).collect();
        let expected = select_topk_bruteforce(&row, k);
        let matches = entry.get("matches").unwrap().as_arr().unwrap();
        assert_eq!(matches.len(), expected.len());
        for (got, want) in matches.iter().zip(&expected) {
            assert_eq!(got.get("target").unwrap().as_usize(), Some(want.target));
            let s = got.get("score").unwrap().as_f64().unwrap();
            assert!(
                (s - want.score).abs() < 1e-9,
                "node {v}: served {s} vs reference {}",
                want.score
            );
        }
    }
    handle.shutdown().expect("clean shutdown");
}
